//! Deterministic fault injection for the system simulation.
//!
//! The paper's prototype assumes cooperative applications; the
//! robustness layer in `rda-core` exists precisely because real ones
//! are not. This module generates the misbehaviour: a [`FaultConfig`]
//! gives per-event probabilities, and [`FaultPlan::generate`] expands
//! them — **ahead of the run, from a dedicated RNG stream** — into a
//! concrete per-process, per-phase schedule of
//!
//! * **leaked ends** — the phase completes but never calls `pp_end`;
//!   the period stays in the registry until process exit reclaims it;
//! * **double ends** — the phase calls `pp_end` twice; the second call
//!   must come back as a typed [`rda_core::RdaError::DoubleEnd`];
//! * **kills** — the process dies at the end of a phase (holding its
//!   open period) or while waitlisted entering one;
//! * **demand lies** — the declared demand is inflated or deflated by a
//!   factor while the actual cache footprint is unchanged.
//!
//! Pre-expanding the plan keeps the simulation's *jitter* stream
//! untouched by fault decisions: the plan is a pure function of
//! `(jitter_seed, workload shape, FaultConfig)`, so a faulty sweep is
//! exactly as reproducible — and as thread-count-independent — as a
//! clean one.
//!
//! Note that faulty workloads should enable waitlist aging
//! ([`crate::SimConfig::with_waitlist_timeout_ms`]): a process that
//! leaks a period and then waitlists itself behind it can otherwise
//! deadlock the admission books until it exits.

use rda_simcore::SplitMix64;
use rda_workloads::WorkloadSpec;

/// Stream salt separating the fault-plan RNG from the timeslice-jitter
/// RNG derived from the same per-cell seed.
pub const FAULT_PLAN_STREAM: u64 = 0xFA17_0000_0000_0001;

/// Per-event fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a tracked phase never calls `pp_end`.
    pub leak_end_rate: f64,
    /// Probability a tracked phase calls `pp_end` twice.
    pub double_end_rate: f64,
    /// Probability a process is killed at (or entering) a given phase.
    pub kill_rate: f64,
    /// Probability a tracked phase lies about its demand.
    pub lie_rate: f64,
    /// Multiplier range `[lo, hi)` applied to a lying declaration.
    pub lie_factor_range: (f64, f64),
}

impl FaultConfig {
    /// All fault classes at the same rate, with lies spanning a 0.25–4×
    /// misdeclaration.
    pub fn uniform(rate: f64) -> Self {
        FaultConfig {
            leak_end_rate: rate,
            double_end_rate: rate,
            kill_rate: rate,
            lie_rate: rate,
            lie_factor_range: (0.25, 4.0),
        }
    }

    /// No faults at all (the plan this expands to injects nothing).
    pub fn none() -> Self {
        FaultConfig {
            leak_end_rate: 0.0,
            double_end_rate: 0.0,
            kill_rate: 0.0,
            lie_rate: 0.0,
            lie_factor_range: (1.0, 1.0),
        }
    }
}

/// Faults injected into one phase of one process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseFault {
    /// Skip the phase's `pp_end` (leaked period).
    pub leak_end: bool,
    /// Call the phase's `pp_end` twice.
    pub double_end: bool,
    /// Multiplier on the declared demand (1.0 = honest).
    pub demand_factor: f64,
}

impl PhaseFault {
    /// An honest, fault-free phase.
    pub const HONEST: PhaseFault = PhaseFault {
        leak_end: false,
        double_end: false,
        demand_factor: 1.0,
    };
}

/// Fault schedule of one process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessFaults {
    /// Kill the process at this phase index (at completion if it ran,
    /// immediately if it waitlisted entering it).
    pub kill_at_phase: Option<usize>,
    /// Per-phase injections.
    pub phases: Vec<PhaseFault>,
}

/// A fully expanded, deterministic fault schedule for a workload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    procs: Vec<ProcessFaults>,
}

impl FaultPlan {
    /// The empty plan: nothing is ever injected.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Expand `cfg` into a concrete schedule for `spec`, deterministic
    /// in `(seed, spec shape, cfg)`. The RNG is consumed in a fixed
    /// process-major, phase-minor order, so the same inputs always
    /// yield the same plan regardless of threading or call order.
    pub fn generate(spec: &WorkloadSpec, cfg: &FaultConfig, seed: u64) -> Self {
        let mut rng = SplitMix64::new(SplitMix64::derive_stream(seed, FAULT_PLAN_STREAM));
        let (lo, hi) = cfg.lie_factor_range;
        let procs = spec
            .processes
            .iter()
            .map(|program| {
                let mut kill_at_phase = None;
                let phases = (0..program.phases.len())
                    .map(|k| {
                        // Draw every variate unconditionally so the
                        // stream position is a pure function of the
                        // workload shape, not of earlier outcomes.
                        let kill = rng.next_f64() < cfg.kill_rate;
                        let leak = rng.next_f64() < cfg.leak_end_rate;
                        let double = rng.next_f64() < cfg.double_end_rate;
                        let lie = rng.next_f64() < cfg.lie_rate;
                        let factor_draw = lo + (hi - lo) * rng.next_f64();
                        if kill && kill_at_phase.is_none() {
                            kill_at_phase = Some(k);
                        }
                        PhaseFault {
                            leak_end: leak && !double,
                            double_end: double,
                            demand_factor: if lie { factor_draw } else { 1.0 },
                        }
                    })
                    .collect();
                ProcessFaults {
                    kill_at_phase,
                    phases,
                }
            })
            .collect();
        FaultPlan { procs }
    }

    /// The injections for phase `k` of process `p` (honest when the
    /// plan is empty or out of range).
    pub fn phase(&self, p: usize, k: usize) -> PhaseFault {
        self.procs
            .get(p)
            .and_then(|pf| pf.phases.get(k))
            .copied()
            .unwrap_or(PhaseFault::HONEST)
    }

    /// The phase at which process `p` is killed, if any.
    pub fn kill_at(&self, p: usize) -> Option<usize> {
        self.procs.get(p).and_then(|pf| pf.kill_at_phase)
    }

    /// Total number of injections scheduled (kills + leaks + double
    /// ends + lies), for reporting.
    pub fn injection_count(&self) -> usize {
        self.procs
            .iter()
            .map(|pf| {
                pf.kill_at_phase.is_some() as usize
                    + pf
                        .phases
                        .iter()
                        .map(|ph| {
                            ph.leak_end as usize
                                + ph.double_end as usize
                                + (ph.demand_factor != 1.0) as usize
                        })
                        .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::{mb, SiteId};
    use rda_machine::ReuseLevel;
    use rda_workloads::{Phase, ProcessProgram};

    fn spec(procs: usize, phases: usize) -> WorkloadSpec {
        WorkloadSpec {
            name: "faulty".into(),
            processes: (0..procs)
                .map(|_| ProcessProgram {
                    threads: 1,
                    phases: (0..phases)
                        .map(|k| {
                            Phase::tracked(
                                "w",
                                1_000_000,
                                mb(2.0),
                                ReuseLevel::High,
                                SiteId(k as u32),
                            )
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let plan = FaultPlan::generate(&spec(8, 6), &FaultConfig::none(), 42);
        assert_eq!(plan.injection_count(), 0);
        for p in 0..8 {
            assert_eq!(plan.kill_at(p), None);
            for k in 0..6 {
                assert_eq!(plan.phase(p, k), PhaseFault::HONEST);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let s = spec(16, 8);
        let cfg = FaultConfig::uniform(0.3);
        let a = FaultPlan::generate(&s, &cfg, 7);
        let b = FaultPlan::generate(&s, &cfg, 7);
        assert_eq!(a, b);
        let c = FaultPlan::generate(&s, &cfg, 8);
        assert_ne!(a, c, "distinct seeds must yield distinct plans");
    }

    #[test]
    fn full_rates_inject_everywhere() {
        let plan = FaultPlan::generate(&spec(4, 3), &FaultConfig::uniform(1.0), 1);
        for p in 0..4 {
            assert_eq!(plan.kill_at(p), Some(0), "kill at the first phase");
            for k in 0..3 {
                let f = plan.phase(p, k);
                // double_end wins over leak_end (mutually exclusive).
                assert!(f.double_end && !f.leak_end);
                assert!(f.demand_factor != 1.0);
            }
        }
    }

    #[test]
    fn lie_factors_stay_in_range() {
        let cfg = FaultConfig::uniform(1.0);
        let plan = FaultPlan::generate(&spec(32, 4), &cfg, 99);
        let (lo, hi) = cfg.lie_factor_range;
        for p in 0..32 {
            for k in 0..4 {
                let f = plan.phase(p, k).demand_factor;
                assert!((lo..hi).contains(&f), "factor {f} out of [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn empty_plan_is_honest_everywhere() {
        let plan = FaultPlan::none();
        assert_eq!(plan.phase(3, 5), PhaseFault::HONEST);
        assert_eq!(plan.kill_at(0), None);
        assert_eq!(plan.injection_count(), 0);
    }

    #[test]
    fn moderate_rates_hit_a_plausible_fraction() {
        // 0.2 per event over 64 proc-phases: expect some but not all.
        let plan = FaultPlan::generate(&spec(16, 4), &FaultConfig::uniform(0.2), 5);
        let n = plan.injection_count();
        assert!(n > 5, "suspiciously few injections: {n}");
        assert!(n < 64 * 3, "suspiciously many injections: {n}");
    }
}
