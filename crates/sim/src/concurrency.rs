//! The Figure 13 interference study.
//!
//! The paper takes the largest progress period of water_nsquared and
//! runs 1, 6, or 12 concurrent instances at four input sizes (512,
//! 3375, 8000, 32768 molecules), measuring aggregate GFLOPS:
//!
//! * small inputs scale almost linearly to 12 instances;
//! * 8000 molecules scales to 6 (working sets just fit together) and
//!   then *drops* at 12 (LLC thrash);
//! * 32768 molecules is memory-bound by 6 instances and stays flat.
//!
//! Working sets follow the measured per-molecule state size
//! (36 doubles = 288 B — see `rda_workloads::splash::water`), and the
//! instruction count scales with the O(N²) force phase.

use crate::config::SimConfig;
use crate::system::SystemSim;
use rda_core::{PolicyKind, SiteId};
use rda_machine::ReuseLevel;
use rda_metrics::FigureData;
use rda_workloads::splash::water::DOUBLES_PER_MOL;
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};

/// The paper's input sizes (molecules).
pub const INPUTS: [usize; 4] = [512, 3375, 8000, 32768];
/// The paper's concurrency levels.
pub const INSTANCES: [usize; 3] = [1, 6, 12];

/// Working set of the largest water_nsquared progress period at a
/// given molecule count: the full per-molecule state.
pub fn working_set_bytes(molecules: usize) -> u64 {
    (molecules * DOUBLES_PER_MOL * 8) as u64
}

/// Instructions of one interf progress period: the O(N²) pair scan,
/// normalised so the 8000-molecule input does ~400 M instructions.
pub fn interf_instructions(molecules: usize) -> u64 {
    let pairs = molecules as f64 * molecules as f64 / 2.0;
    let scale = 400e6 / (8000.0 * 8000.0 / 2.0);
    (pairs * scale).max(1e6) as u64
}

fn spec(molecules: usize, instances: usize) -> WorkloadSpec {
    let ws = working_set_bytes(molecules);
    // Very large inputs stop being cache-resident: the pair scan's
    // reuse distance (one full pass over all molecules) exceeds any
    // achievable LLC share, so the phase behaves as a stream.
    let reuse = if ws > 8 * 1024 * 1024 {
        ReuseLevel::Low
    } else {
        ReuseLevel::High
    };
    WorkloadSpec {
        name: format!("wnsq-{molecules}x{instances}"),
        processes: (0..instances)
            .map(|_| ProcessProgram {
                threads: 1,
                phases: vec![Phase::tracked(
                    "interf",
                    interf_instructions(molecules),
                    ws,
                    reuse,
                    SiteId(0),
                )],
            })
            .collect(),
    }
}

/// One cell of the Figure 13 matrix.
#[derive(Debug, Clone)]
pub struct InterferencePoint {
    /// Molecule count.
    pub molecules: usize,
    /// Concurrent instances.
    pub instances: usize,
    /// Aggregate achieved GFLOPS.
    pub gflops: f64,
}

/// Run the interference matrix under the default (ungated) policy —
/// the paper studies raw co-run interference here, not the RDA fix.
pub fn interference_study() -> Vec<InterferencePoint> {
    interference_study_for(&INPUTS, &INSTANCES)
}

/// Parameterised variant for tests and sweeps.
pub fn interference_study_for(
    inputs: &[usize],
    instances: &[usize],
) -> Vec<InterferencePoint> {
    let mut out = Vec::new();
    for &m in inputs {
        for &k in instances {
            let w = spec(m, k);
            let r = SystemSim::new(SimConfig::paper_default(PolicyKind::DefaultOnly), &w)
                .run()
                .expect("interference run must complete");
            out.push(InterferencePoint {
                molecules: m,
                instances: k,
                gflops: r.measurement.gflops(),
            });
        }
    }
    out
}

/// Figure 13 data: one series per instance count, categories = input
/// size.
pub fn figure13(points: &[InterferencePoint]) -> FigureData {
    let mut fig = FigureData::new(
        "Figure 13",
        "water_nsquared largest period: aggregate GFLOPS vs input size and concurrency",
        "GFLOPS",
    );
    for p in points {
        fig.add(
            &format!("{} instance(s)", p.instances),
            &p.molecules.to_string(),
            p.gflops,
        );
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gflops(points: &[InterferencePoint], m: usize, k: usize) -> f64 {
        points
            .iter()
            .find(|p| p.molecules == m && p.instances == k)
            .unwrap()
            .gflops
    }

    #[test]
    fn working_sets_match_molecule_state() {
        // 8000 molecules × 288 B ≈ 2.2 MB: six instances fit the 15 MB
        // LLC together, twelve do not — the Figure 13 knee.
        let ws = working_set_bytes(8000);
        assert_eq!(ws, 8000 * 288);
        assert!(6 * ws < 15_360 * 1024);
        assert!(12 * ws > 15_360 * 1024);
    }

    #[test]
    fn small_input_scales_to_twelve() {
        let pts = interference_study_for(&[512], &[1, 6, 12]);
        let g1 = gflops(&pts, 512, 1);
        let g12 = gflops(&pts, 512, 12);
        assert!(g12 > 8.0 * g1, "512 molecules must scale: {g1} → {g12}");
    }

    #[test]
    fn eight_thousand_drops_from_six_to_twelve() {
        let pts = interference_study_for(&[8000], &[6, 12]);
        let g6 = gflops(&pts, 8000, 6);
        let g12 = gflops(&pts, 8000, 12);
        assert!(
            g12 < g6,
            "the paper's knee: 12 instances thrash the LLC ({g6} → {g12})"
        );
    }

    #[test]
    fn largest_input_is_memory_bound_by_six() {
        let pts = interference_study_for(&[32768], &[6, 12]);
        let g6 = gflops(&pts, 32768, 6);
        let g12 = gflops(&pts, 32768, 12);
        assert!(
            g12 < g6 * 1.25,
            "32768 molecules must plateau: {g6} → {g12}"
        );
    }
}
