//! # rda-sim
//!
//! The full-system simulator: the piece that stands in for "a 12-core
//! Xeon E5-2420 running CentOS with a modified Linux 4.6 kernel".
//!
//! [`system::SystemSim`] executes a [`rda_workloads::WorkloadSpec`]
//! under one scheduling policy:
//!
//! * thread scheduling by the CFS substrate (`rda-sched`),
//! * progress-period gating by the RDA extension (`rda-core`),
//! * instruction rates from the analytical machine model
//!   (`rda-machine`), re-solved whenever the co-running set changes —
//!   including LLC capacity sharing and DRAM queueing,
//! * RAPL-style energy integration per simulated interval.
//!
//! [`experiment`] wraps it into the paper's measurement loops
//! (Figures 7–10), [`overhead`] reproduces the Figure 11 granularity
//! study, [`concurrency`] the Figure 13 interference study, and
//! [`runner`] shards whole configuration grids across a deterministic
//! work-stealing thread pool.

#![warn(missing_docs)]

pub mod concurrency;
pub mod config;
pub mod experiment;
pub mod faults;
pub mod overhead;
pub mod runner;
pub mod system;
pub mod topo_traffic;
pub mod traffic;

pub use config::SimConfig;
pub use faults::{FaultConfig, FaultPlan, PhaseFault};
pub use experiment::{run_workload, PolicyRun};
pub use runner::{
    run_sweep, run_sweep_configured, RunConfig, RunError, RunRecord, RunnerOptions, Shard,
    SweepGrid, SweepResult,
};
pub use system::SystemSim;
pub use topo_traffic::{
    run_topo_cells, topo_sweep_digest, TopoCall, TopoCell, TopoCellRecord, TopoClass,
    TopoTrafficConfig, TopoTrafficResult, TopoTrafficSim,
};
pub use traffic::{
    ArrivalPattern, TrafficConfig, TrafficPlan, TrafficResult, TrafficSim, TRAFFIC_STREAM,
};
