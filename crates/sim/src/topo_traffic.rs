//! Open-system traffic over a NUMA topology with layered policies.
//!
//! The topology analogue of [`crate::traffic`]: the same deterministic
//! arrival machinery ([`TrafficPlan`] — gap/thin/class/service variates
//! plus pre-drawn backoff jitter, so the schedule is a pure function of
//! `(config, seed)`), but each demand class carries a full
//! [`Demand`] *vector* and a [`LayerId`], and the requests drive a
//! [`TopoExtension`] instead of the scalar engine. Requests therefore
//! exercise everything the tentpole added: multi-component audits,
//! deterministic least-loaded placement, per-node waitlists and
//! breakers, and cross-layer capacity guarantees — under overload and
//! composed fault injection.
//!
//! With [`TopoTrafficConfig::record_calls`] set, the exact
//! [`TopoCall`] sequence is retained so `rda-check` can replay the
//! whole run through its topology reference model; with
//! [`TopoTrafficConfig::sample_occupancy`] set, the run installs a
//! [`rda_trace::TraceSink`] and samples **per-node** occupancy counter
//! tracks on every control tick.
//!
//! [`run_topo_cells`] shards a grid of such runs across scoped threads
//! with per-cell derived seeds and grid-order aggregation, so sweep
//! digests are bit-identical at any thread count — the property the
//! integration suite pins serial vs 8 threads.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use crate::faults::{FaultConfig, FaultPlan};
use crate::traffic::{ArrivalPattern, TrafficConfig, TrafficPlan};
use rda_core::{
    BeginOutcome, Demand, LayerId, NodeId, PpId, RdaStats, ResourceKind, TopoConfig, TopoError,
    TopoExtension,
};
use rda_sched::ProcessId;
use rda_simcore::{Fnv1a64, SimTime, SplitMix64};
use rda_trace::{Log2Hist, OccupancySample, TraceConfig, TraceReport, TraceSink};

/// One demand class of the topology arrival mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopoClass {
    /// The full demand vector a request of this class declares.
    pub demand: Demand,
    /// Relative weight in the class-pick distribution.
    pub weight: f64,
    /// The layer processes of this class are assigned to.
    pub layer: LayerId,
}

/// Everything the topology traffic engine needs besides the
/// [`TopoConfig`].
#[derive(Debug, Clone)]
pub struct TopoTrafficConfig {
    /// The arrival process.
    pub pattern: ArrivalPattern,
    /// Length of the arrival window, simulated seconds.
    pub duration_secs: f64,
    /// Simulated clock frequency (cycles per second).
    pub cycles_per_sec: f64,
    /// Demand classes; the class index doubles as the static call site.
    pub classes: Vec<TopoClass>,
    /// Mean of the exponential service-time distribution, cycles.
    pub mean_service_cycles: f64,
    /// Total tries per request before a shed request fails permanently.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff, cycles.
    pub backoff_base_cycles: u64,
    /// Period of the aging/deadline/breaker tick (`0` disables ticks).
    pub age_tick_cycles: u64,
    /// Retain the exact [`TopoCall`] sequence for differential replay.
    pub record_calls: bool,
    /// Install a trace sink and sample per-node occupancy every tick.
    pub sample_occupancy: bool,
}

impl TopoTrafficConfig {
    /// A two-tenant default: a best-effort batch class on layer 0 and a
    /// smaller latency class on layer 1, both multi-resource.
    pub fn two_tenant(rate_per_sec: f64, duration_secs: f64) -> Self {
        TopoTrafficConfig {
            pattern: ArrivalPattern::Poisson { rate_per_sec },
            duration_secs,
            cycles_per_sec: 1.9e9,
            classes: vec![
                TopoClass {
                    demand: Demand::new(2 << 20, 400, 64 << 20),
                    weight: 0.6,
                    layer: LayerId(0),
                },
                TopoClass {
                    demand: Demand::new(512 << 10, 900, 16 << 20),
                    weight: 0.4,
                    layer: LayerId(1),
                },
            ],
            mean_service_cycles: 3.8e6,
            max_attempts: 3,
            backoff_base_cycles: 1_900_000,
            age_tick_cycles: 950_000,
            record_calls: false,
            sample_occupancy: false,
        }
    }

    /// The scalar configuration the shared plan generator runs on —
    /// same pattern, same class weights, same variate count per
    /// candidate, so the schedule is identical to what a scalar engine
    /// with these weights would see.
    fn scalar(&self) -> TrafficConfig {
        TrafficConfig {
            pattern: self.pattern,
            duration_secs: self.duration_secs,
            cycles_per_sec: self.cycles_per_sec,
            demand_classes: self
                .classes
                .iter()
                .map(|c| (primary_of(c.demand).1, c.weight))
                .collect(),
            mean_service_cycles: self.mean_service_cycles,
            max_attempts: self.max_attempts,
            backoff_base_cycles: self.backoff_base_cycles,
            age_tick_cycles: self.age_tick_cycles,
            record_calls: false,
        }
    }
}

/// The first touched component of a demand vector (LLC when the vector
/// is empty) — what retry notes and plan amounts are keyed on.
fn primary_of(d: Demand) -> (ResourceKind, u64) {
    for k in ResourceKind::ALL {
        if d.get(k) > 0 {
            return (k, d.get(k));
        }
    }
    (ResourceKind::Llc, 0)
}

/// One call into the topology extension, in execution order — the
/// replayable record `rda-check` turns into a `TopoDoc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoCall {
    /// A `pp_begin` with a full demand vector.
    Begin {
        /// Call time.
        now: SimTime,
        /// Calling process.
        process: ProcessId,
        /// Static call site.
        site: rda_core::SiteId,
        /// Declared (possibly fault-inflated) demand vector.
        demand: Demand,
    },
    /// A `pp_end`.
    End {
        /// Call time.
        now: SimTime,
        /// The period being completed.
        pp: PpId,
    },
    /// A `process_exit`.
    Exit {
        /// Call time.
        now: SimTime,
        /// The dying process.
        process: ProcessId,
    },
    /// An `age_waitlist` control tick.
    Age {
        /// Call time.
        now: SimTime,
    },
    /// A client-side retry note.
    Retry {
        /// Call time.
        now: SimTime,
        /// Retrying process.
        process: ProcessId,
        /// Static call site.
        site: rda_core::SiteId,
        /// Resource kind the retry is attributed to.
        kind: ResourceKind,
    },
}

/// Outcome of one topology traffic run.
#[derive(Debug, Clone)]
pub struct TopoTrafficResult {
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests that finished their service.
    pub completed: u64,
    /// Requests shed past their retry budget.
    pub failed: u64,
    /// Requests expired past their deadline while waitlisted.
    pub expired: u64,
    /// Requests whose process was fault-killed holding a period.
    pub killed: u64,
    /// Stuck waiters deterministically reclaimed via `process_exit`.
    pub stranded: u64,
    /// Client-side retries issued.
    pub retries: u64,
    /// Final extension counters.
    pub rda: RdaStats,
    /// End-to-end sojourn of every completed request, cycles.
    pub sojourn: Log2Hist,
    /// Completed requests per simulated second of the arrival window.
    pub goodput_per_sec: f64,
    /// Whether the extension drained to the idle state (all books
    /// exactly zero on every node) after the last terminal event.
    pub drained_idle: bool,
    /// Digest of the drained final snapshot.
    pub final_snapshot_digest: u64,
    /// Exact call sequence (`Some` iff
    /// [`TopoTrafficConfig::record_calls`]).
    pub calls: Option<Vec<TopoCall>>,
    /// Per-node trace report (`Some` iff
    /// [`TopoTrafficConfig::sample_occupancy`]).
    pub trace: Option<TraceReport>,
}

impl TopoTrafficResult {
    /// Order-independent FNV digest of everything the run decided.
    /// Equal for the same `(config, seed)` on any machine and any
    /// sweep thread count.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        for v in [
            self.arrivals,
            self.completed,
            self.failed,
            self.expired,
            self.killed,
            self.stranded,
            self.retries,
            self.final_snapshot_digest,
            self.drained_idle as u64,
        ] {
            h.write_u64(v);
        }
        for v in [
            self.rda.begins,
            self.rda.ends,
            self.rda.admitted,
            self.rda.paused,
            self.rda.resumed,
            self.rda.max_waitlist,
            self.rda.oversized_admits,
            self.rda.reclaimed,
            self.rda.clamped,
            self.rda.aged_admissions,
            self.rda.rejected_ends,
            self.rda.shed,
            self.rda.expired,
            self.rda.retried,
            self.rda.breaker_trips,
        ] {
            h.write_u64(v);
        }
        for (upper, n) in self.sojourn.nonzero_buckets() {
            h.write_u64(upper);
            h.write_u64(n);
        }
        h.write_u64(self.sojourn.max());
        h.finish()
    }
}

/// The open-system topology traffic simulation.
#[derive(Debug, Clone)]
pub struct TopoTrafficSim {
    traffic: TopoTrafficConfig,
    topo: TopoConfig,
    faults: Option<FaultConfig>,
}

#[derive(Debug)]
struct QEntry {
    t: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

#[derive(Debug)]
enum Ev {
    Arrival { req: usize },
    Retry { req: usize },
    Complete { req: usize, pp: Option<PpId> },
    Tick,
}

struct Engine<'a> {
    cfg: &'a TopoTrafficConfig,
    plan: &'a TrafficPlan,
    faults: FaultPlan,
    ext: TopoExtension,
    heap: BinaryHeap<QEntry>,
    waiting: BTreeMap<u64, usize>,
    attempts: Vec<u32>,
    pending: usize,
    seq: u64,
    now: SimTime,
    completed: u64,
    failed: u64,
    expired: u64,
    killed: u64,
    stranded: u64,
    retries: u64,
    sojourn: Log2Hist,
    calls: Option<Vec<TopoCall>>,
}

impl TopoTrafficSim {
    /// A topology traffic run. Per-class layers are applied to the
    /// config's [`rda_core::LayerSet`] per request at run time.
    pub fn new(traffic: TopoTrafficConfig, topo: TopoConfig) -> Self {
        TopoTrafficSim {
            traffic,
            topo,
            faults: None,
        }
    }

    /// Inject faults (expanded over the synthetic per-request workload,
    /// exactly like the scalar engine).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Execute the run for `seed`. Deterministic in `(config, seed)`.
    pub fn run(&self, seed: u64) -> TopoTrafficResult {
        let plan = TrafficPlan::generate(&self.traffic.scalar(), seed);
        let fault_plan = match &self.faults {
            Some(fc) => FaultPlan::generate(&plan.fault_spec(), fc, seed),
            None => FaultPlan::none(),
        };
        // Materialise per-class layer membership: request i is process
        // i, so class layers become explicit LayerSet assignments
        // (ascending process ids keep the insert O(1) amortised).
        let mut topo = self.topo.clone();
        for (i, r) in plan.requests.iter().enumerate() {
            let layer = self.traffic.classes[r.site as usize].layer;
            if layer != LayerId(0) {
                topo.layers.assign(i as u32, layer);
            }
        }
        let mut ext = TopoExtension::new(topo);
        if self.traffic.sample_occupancy {
            ext.install_trace(TraceSink::new(TraceConfig::default()));
        }
        let mut eng = Engine {
            cfg: &self.traffic,
            plan: &plan,
            faults: fault_plan,
            ext,
            heap: BinaryHeap::with_capacity(plan.len() * 2 + 4),
            waiting: BTreeMap::new(),
            attempts: vec![0; plan.len()],
            pending: 0,
            seq: 0,
            now: SimTime::ZERO,
            completed: 0,
            failed: 0,
            expired: 0,
            killed: 0,
            stranded: 0,
            retries: 0,
            sojourn: Log2Hist::new(),
            calls: if self.traffic.record_calls {
                Some(Vec::new())
            } else {
                None
            },
        };
        for (i, r) in plan.requests.iter().enumerate() {
            eng.push(r.arrival, Ev::Arrival { req: i });
        }
        if self.traffic.age_tick_cycles > 0 {
            eng.push_tick(self.traffic.age_tick_cycles);
        }
        eng.drive();
        eng.ext
            .check_invariants()
            .expect("topology traffic run left the extension inconsistent");
        let rda = eng.ext.stats();
        let snapshot = eng.ext.snapshot();
        let arrivals = plan.len() as u64;
        debug_assert_eq!(
            eng.completed + eng.failed + eng.expired + eng.killed + eng.stranded,
            arrivals,
            "every request must reach exactly one terminal state"
        );
        TopoTrafficResult {
            arrivals,
            completed: eng.completed,
            failed: eng.failed,
            expired: eng.expired,
            killed: eng.killed,
            stranded: eng.stranded,
            retries: eng.retries,
            rda,
            sojourn: eng.sojourn,
            goodput_per_sec: eng.completed as f64 / self.traffic.duration_secs,
            drained_idle: snapshot.is_idle(),
            final_snapshot_digest: snapshot.digest(),
            calls: eng.calls,
            trace: eng.ext.take_trace().map(TraceSink::into_report),
        }
    }
}

impl Engine<'_> {
    fn push(&mut self, t: u64, ev: Ev) {
        if !matches!(ev, Ev::Tick) {
            self.pending += 1;
        }
        self.heap.push(QEntry {
            t,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    fn push_tick(&mut self, t: u64) {
        self.heap.push(QEntry {
            t,
            seq: self.seq,
            ev: Ev::Tick,
        });
        self.seq += 1;
    }

    fn record(&mut self, call: TopoCall) {
        if let Some(calls) = &mut self.calls {
            calls.push(call);
        }
    }

    fn pid(req: usize) -> ProcessId {
        ProcessId(req as u32)
    }

    fn declared_demand(&self, req: usize) -> Demand {
        let r = &self.plan.requests[req];
        let base = self.cfg.classes[r.site as usize].demand;
        let factor = self.faults.phase(req, 0).demand_factor;
        if factor == 1.0 {
            return base;
        }
        let mut d = Demand::default();
        for k in ResourceKind::ALL {
            let a = base.get(k);
            if a > 0 {
                d = d.with(k, (a as f64 * factor) as u64);
            }
        }
        d
    }

    fn sample_occupancy(&mut self) {
        if self.ext.trace().is_none() {
            return;
        }
        let in_flight = self.pending as u32;
        let samples: Vec<OccupancySample> = (0..self.ext.node_count())
            .map(|n| {
                let node = NodeId(n as u32);
                OccupancySample {
                    t_cycles: self.now.cycles(),
                    node: n as u32,
                    usage: self.ext.usage(node, ResourceKind::Llc),
                    overflow: self.ext.overflow_usage(node, ResourceKind::Llc),
                    waitlisted: self.ext.waitlist_len(node) as u32,
                    busy_cores: in_flight,
                }
            })
            .collect();
        if let Some(sink) = self.ext.trace_mut() {
            for s in samples {
                sink.record_occupancy(s);
            }
        }
    }

    fn drive(&mut self) {
        let can_unstick = self.ext.config().waitlist_timeout_cycles.is_some()
            || self
                .ext
                .config()
                .overload
                .as_ref()
                .is_some_and(|o| o.deadline_cycles.is_some());
        let overload_on = self.ext.config().overload.is_some();
        loop {
            while let Some(e) = self.heap.pop() {
                self.now = SimTime::from_cycles(e.t);
                match e.ev {
                    Ev::Arrival { req } => {
                        self.pending -= 1;
                        self.attempt(req);
                    }
                    Ev::Retry { req } => {
                        self.pending -= 1;
                        let r = &self.plan.requests[req];
                        let site = rda_core::SiteId(r.site);
                        let (kind, _) = primary_of(self.cfg.classes[r.site as usize].demand);
                        self.ext.note_retry(Self::pid(req), site, kind, self.now);
                        self.record(TopoCall::Retry {
                            now: self.now,
                            process: Self::pid(req),
                            site,
                            kind,
                        });
                        self.retries += 1;
                        self.attempt(req);
                    }
                    Ev::Complete { req, pp } => {
                        self.pending -= 1;
                        self.complete(req, pp);
                    }
                    Ev::Tick => {
                        let now = self.now;
                        self.sample_occupancy();
                        let out = self.ext.age_waitlist(now);
                        if overload_on || !out.resumed.is_empty() {
                            self.record(TopoCall::Age { now });
                        }
                        for (pp, _) in out.resumed {
                            self.wake(pp);
                        }
                        for (pp, _) in out.expired {
                            let req = self
                                .waiting
                                .remove(&pp.0)
                                .expect("expired period not waitlisted");
                            debug_assert!(self.attempts[req] < u32::MAX);
                            self.expired += 1;
                        }
                        if self.pending > 0 || (!self.waiting.is_empty() && can_unstick) {
                            self.push_tick(e.t + self.cfg.age_tick_cycles);
                        }
                    }
                }
            }
            if self.waiting.is_empty() {
                break;
            }
            let stuck: Vec<(u64, usize)> = self.waiting.iter().map(|(&k, &v)| (k, v)).collect();
            for (ppid, req) in stuck {
                if self.waiting.remove(&ppid).is_none() {
                    continue;
                }
                self.record(TopoCall::Exit {
                    now: self.now,
                    process: Self::pid(req),
                });
                let resumed = self.ext.process_exit(Self::pid(req), self.now);
                self.stranded += 1;
                for (pp, _) in resumed {
                    self.wake(pp);
                }
            }
        }
    }

    fn attempt(&mut self, req: usize) {
        let r = &self.plan.requests[req];
        let demand = self.declared_demand(req);
        let (service, site) = (r.service, rda_core::SiteId(r.site));
        self.record(TopoCall::Begin {
            now: self.now,
            process: Self::pid(req),
            site,
            demand,
        });
        match self.ext.pp_begin(Self::pid(req), site, demand, self.now) {
            Ok(BeginOutcome::Run { pp, .. }) => {
                let t = self.now.cycles().saturating_add(service);
                self.push(t, Ev::Complete { req, pp: Some(pp) });
            }
            Ok(BeginOutcome::Bypass) => {
                let t = self.now.cycles().saturating_add(service);
                self.push(t, Ev::Complete { req, pp: None });
            }
            Ok(BeginOutcome::Pause { pp, shed }) => {
                if let Some(victim) = shed {
                    let vreq = self
                        .waiting
                        .remove(&victim.0)
                        .expect("shed victim not waitlisted");
                    self.retry_or_fail(vreq);
                }
                if self.faults.kill_at(req) == Some(0) {
                    self.record(TopoCall::Exit {
                        now: self.now,
                        process: Self::pid(req),
                    });
                    let resumed = self.ext.process_exit(Self::pid(req), self.now);
                    self.killed += 1;
                    for (woken, _) in resumed {
                        self.wake(woken);
                    }
                } else {
                    self.waiting.insert(pp.0, req);
                }
            }
            Err(TopoError::WaitlistFull { .. }) | Err(TopoError::BreakerOpen { .. }) => {
                self.retry_or_fail(req);
            }
            Err(_) => {
                // Auditor refusal: the caller falls back to untracked
                // scheduling, so the request still completes.
                let t = self.now.cycles().saturating_add(service);
                self.push(t, Ev::Complete { req, pp: None });
            }
        }
    }

    fn wake(&mut self, pp: PpId) {
        let req = self
            .waiting
            .remove(&pp.0)
            .expect("resumed period not waitlisted");
        let t = self
            .now
            .cycles()
            .saturating_add(self.plan.requests[req].service);
        self.push(t, Ev::Complete { req, pp: Some(pp) });
    }

    fn retry_or_fail(&mut self, req: usize) {
        let a = self.attempts[req];
        if a + 1 < self.cfg.max_attempts {
            self.attempts[req] = a + 1;
            let backoff = self
                .cfg
                .backoff_base_cycles
                .saturating_mul(1u64.checked_shl(a).unwrap_or(u64::MAX));
            let jitter = self.plan.requests[req].jitter[a as usize];
            let t = self
                .now
                .cycles()
                .saturating_add(backoff)
                .saturating_add(jitter);
            self.push(t, Ev::Retry { req });
        } else {
            self.failed += 1;
        }
    }

    fn complete(&mut self, req: usize, pp: Option<PpId>) {
        let sojourn = self
            .now
            .cycles()
            .saturating_sub(self.plan.requests[req].arrival);
        let Some(pp) = pp else {
            self.completed += 1;
            self.sojourn.record(sojourn);
            return;
        };
        let fault = self.faults.phase(req, 0);
        if self.faults.kill_at(req) == Some(0) {
            self.record(TopoCall::Exit {
                now: self.now,
                process: Self::pid(req),
            });
            let resumed = self.ext.process_exit(Self::pid(req), self.now);
            self.killed += 1;
            for (woken, _) in resumed {
                self.wake(woken);
            }
            return;
        }
        if fault.leak_end {
            self.record(TopoCall::Exit {
                now: self.now,
                process: Self::pid(req),
            });
            let resumed = self.ext.process_exit(Self::pid(req), self.now);
            for (woken, _) in resumed {
                self.wake(woken);
            }
        } else {
            self.record(TopoCall::End { now: self.now, pp });
            let out = self
                .ext
                .pp_end(pp, self.now)
                .expect("first pp_end of a running period cannot fail");
            for (woken, _) in out.resumed {
                self.wake(woken);
            }
            if fault.double_end {
                self.record(TopoCall::End { now: self.now, pp });
                let second = self.ext.pp_end(pp, self.now);
                debug_assert!(
                    matches!(second, Err(TopoError::DoubleEnd(_))),
                    "second pp_end must be rejected as a double end"
                );
            }
        }
        self.completed += 1;
        self.sojourn.record(sojourn);
    }
}

/// One cell of a topology sweep grid.
#[derive(Debug, Clone)]
pub struct TopoCell {
    /// Cell label (figure category).
    pub label: String,
    /// The arrival configuration.
    pub traffic: TopoTrafficConfig,
    /// The machine topology and layer set.
    pub topo: TopoConfig,
    /// Optional fault injection.
    pub faults: Option<FaultConfig>,
}

/// One executed topology sweep cell, in grid order.
#[derive(Debug, Clone)]
pub struct TopoCellRecord {
    /// Grid index (stable across thread counts).
    pub index: usize,
    /// Cell label.
    pub label: String,
    /// The derived seed this cell ran with.
    pub seed: u64,
    /// The run outcome (`Err` holds a panic message).
    pub result: Result<TopoTrafficResult, String>,
}

/// Execute a grid of topology traffic cells across `threads` scoped
/// workers (`0` = all cores). Each cell's seed is derived from
/// `root_seed` and its grid index; records come back in grid order, so
/// the fold below — and [`topo_sweep_digest`] — is a pure function of
/// `(cells, root_seed)` regardless of thread count.
pub fn run_topo_cells(cells: &[TopoCell], threads: usize, root_seed: u64) -> Vec<TopoCellRecord> {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = (if threads == 0 { auto } else { threads }).clamp(1, cells.len().max(1));
    let slots: Vec<Mutex<Option<TopoCellRecord>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            scope.spawn(move || {
                for (i, cell) in cells.iter().enumerate() {
                    if i % workers != w {
                        continue;
                    }
                    let seed = SplitMix64::derive_stream(root_seed, i as u64);
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let mut sim = TopoTrafficSim::new(cell.traffic.clone(), cell.topo.clone());
                        if let Some(fc) = cell.faults {
                            sim = sim.with_faults(fc);
                        }
                        sim.run(seed)
                    }))
                    .map_err(|p| {
                        p.downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| p.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "panic".to_string())
                    });
                    *slots[i].lock().unwrap() = Some(TopoCellRecord {
                        index: i,
                        label: cell.label.clone(),
                        seed,
                        result: outcome,
                    });
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every cell has a record"))
        .collect()
}

/// Fold a topology sweep into one digest (grid order, so equal digests
/// ⇔ behaviourally identical sweeps on any thread count).
pub fn topo_sweep_digest(records: &[TopoCellRecord]) -> u64 {
    let mut h = Fnv1a64::new();
    for r in records {
        h.write_usize(r.index);
        match &r.result {
            Ok(res) => h.write_u64(res.digest()),
            Err(msg) => h.write_str(msg),
        };
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::{
        BreakerConfig, LayerSet, LayerSpec, OverloadConfig, PolicyKind, ShedPolicy, TopoSpec,
    };

    fn two_node_cfg() -> TopoConfig {
        let layers = LayerSet::new(vec![
            LayerSpec::new("batch", PolicyKind::Strict),
            LayerSpec::new("latency", PolicyKind::Strict)
                .with_guarantee(Demand::new(4 << 20, 1000, 64 << 20)),
        ]);
        TopoConfig::new(
            TopoSpec::uniform(2, 15_360 << 10, 6_000, 1 << 30),
            layers,
        )
        .with_waitlist_timeout_cycles(40_000_000)
    }

    fn overload() -> OverloadConfig {
        OverloadConfig {
            waitlist_cap: 16,
            shed_policy: ShedPolicy::RejectNewest,
            deadline_cycles: Some(40_000_000),
            breaker: Some(BreakerConfig {
                high_water: 14 << 20,
                low_water: 8 << 20,
                trip_after: 4,
                recover_after: 4,
                shed_min_demand: 1 << 20,
            }),
        }
    }

    #[test]
    fn underload_completes_and_drains_to_zero() {
        let sim = TopoTrafficSim::new(
            TopoTrafficConfig::two_tenant(300.0, 0.5),
            two_node_cfg().with_overload(overload()),
        );
        let r = sim.run(11);
        assert!(r.arrivals > 0);
        assert_eq!(r.completed, r.arrivals, "underload must not shed: {r:?}");
        assert!(r.drained_idle, "books must return to zero after drain");
    }

    #[test]
    fn overload_with_faults_is_deterministic_and_sheds() {
        let mut traffic = TopoTrafficConfig::two_tenant(20_000.0, 0.05);
        traffic.record_calls = true;
        let sim = TopoTrafficSim::new(traffic, two_node_cfg().with_overload(overload()))
            .with_faults(FaultConfig::uniform(0.1));
        let a = sim.run(5);
        let b = sim.run(5);
        assert_eq!(a.digest(), b.digest());
        assert!(a.rda.shed > 0, "overload must shed: {a:?}");
        assert!(a.drained_idle, "books must drain even under faults");
        assert!(a.calls.as_ref().is_some_and(|c| !c.is_empty()));
    }

    #[test]
    fn occupancy_sampling_emits_per_node_tracks() {
        let mut traffic = TopoTrafficConfig::two_tenant(2_000.0, 0.1);
        traffic.sample_occupancy = true;
        let r = TopoTrafficSim::new(traffic, two_node_cfg().with_overload(overload())).run(3);
        let trace = r.trace.expect("sampling installs a sink");
        let nodes: std::collections::BTreeSet<u32> =
            trace.occupancy.iter().map(|s| s.node).collect();
        assert_eq!(nodes.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn sweep_digest_is_thread_invariant() {
        let cells: Vec<TopoCell> = (0..6)
            .map(|i| TopoCell {
                label: format!("cell{i}"),
                traffic: TopoTrafficConfig::two_tenant(4_000.0 + 1_000.0 * i as f64, 0.05),
                topo: two_node_cfg().with_overload(overload()),
                faults: (i % 2 == 0).then(|| FaultConfig::uniform(0.05)),
            })
            .collect();
        let serial = topo_sweep_digest(&run_topo_cells(&cells, 1, 7));
        let parallel = topo_sweep_digest(&run_topo_cells(&cells, 8, 7));
        assert_eq!(serial, parallel, "sweep must be a pure function of (cells, seed)");
    }
}
