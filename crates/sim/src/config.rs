//! Simulation configuration.

use rda_core::PolicyKind;
use rda_machine::{EnergyModel, MachineConfig};
use rda_machine::perf::PerfParams;
use rda_simcore::SimDuration;

/// Everything a [`crate::SystemSim`] needs besides the workload.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The simulated machine (Table 1 by default).
    pub machine: MachineConfig,
    /// Analytical performance-model coefficients.
    pub perf_params: PerfParams,
    /// RAPL-style energy model coefficients.
    pub energy: EnergyModel,
    /// Scheduling policy under test.
    pub policy: PolicyKind,
    /// Load-balancer period.
    pub rebalance_every: SimDuration,
    /// Safety cutoff: simulations that exceed this much simulated time
    /// abort (indicates a deadlock or runaway configuration).
    pub max_sim_seconds: f64,
    /// When set, record a [`crate::system::TimelineSample`] every this
    /// many cycles (core utilisation, LLC pressure, waitlist depth).
    pub sample_every: Option<SimDuration>,
    /// Seed of the deterministic timeslice-jitter stream. The sweep
    /// runner derives one per run from its root seed
    /// (`SplitMix64::derive_stream`) so replicated runs observe
    /// independent jitter while staying exactly reproducible.
    pub jitter_seed: u64,
}

/// Historical default jitter seed; kept so single-run behaviour (and
/// every checked-in expectation) is unchanged from before the sweep
/// runner existed.
pub const DEFAULT_JITTER_SEED: u64 = 0x0005_c4ed_1234;

impl SimConfig {
    /// Paper-default configuration for a given policy.
    pub fn paper_default(policy: PolicyKind) -> Self {
        let machine = MachineConfig::xeon_e5_2420();
        let rebalance_every = SimDuration::from_micros(50_000.0, machine.freq_hz); // 50 ms
        SimConfig {
            machine,
            perf_params: PerfParams::default(),
            energy: EnergyModel::default(),
            policy,
            rebalance_every,
            max_sim_seconds: 1000.0,
            sample_every: None,
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }

    /// Enable timeline sampling at the given period in milliseconds.
    pub fn with_sampling_ms(mut self, ms: f64) -> Self {
        self.sample_every = Some(SimDuration::from_micros(ms * 1e3, self.machine.freq_hz));
        self
    }

    /// Use the given timeslice-jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = SimConfig::paper_default(PolicyKind::Strict);
        assert!(c.machine.validate().is_ok());
        assert!(c.rebalance_every.cycles() > 0);
        assert_eq!(c.policy, PolicyKind::Strict);
    }
}
