//! Simulation configuration.

use crate::faults::FaultConfig;
use rda_core::{DemandAudit, PolicyKind};
use rda_machine::{EnergyModel, MachineConfig};
use rda_machine::perf::PerfParams;
use rda_simcore::SimDuration;

/// Everything a [`crate::SystemSim`] needs besides the workload.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The simulated machine (Table 1 by default).
    pub machine: MachineConfig,
    /// Analytical performance-model coefficients.
    pub perf_params: PerfParams,
    /// RAPL-style energy model coefficients.
    pub energy: EnergyModel,
    /// Scheduling policy under test.
    pub policy: PolicyKind,
    /// Load-balancer period.
    pub rebalance_every: SimDuration,
    /// Safety cutoff: simulations that exceed this much simulated time
    /// abort (indicates a deadlock or runaway configuration).
    pub max_sim_seconds: f64,
    /// When set, record a [`crate::system::TimelineSample`] every this
    /// many cycles (core utilisation, LLC pressure, waitlist depth).
    pub sample_every: Option<SimDuration>,
    /// Seed of the deterministic timeslice-jitter stream. The sweep
    /// runner derives one per run from its root seed
    /// (`SplitMix64::derive_stream`) so replicated runs observe
    /// independent jitter while staying exactly reproducible.
    pub jitter_seed: u64,
    /// Check the RDA extension's internal invariants after every
    /// simulation step (not just at the end); a violation aborts the
    /// run with a typed diagnostic. On by default — the checks are
    /// read-only and O(live periods).
    pub paranoid: bool,
    /// Demand-audit mode forwarded to the RDA extension (`Trust` is the
    /// paper's behaviour).
    pub demand_audit: DemandAudit,
    /// Waitlist-aging timeout forwarded to the RDA extension (`None`
    /// disables aging, the paper's behaviour).
    pub waitlist_timeout: Option<SimDuration>,
    /// Fault injection: when set, a deterministic [`crate::faults::FaultPlan`]
    /// is expanded from `jitter_seed` and applied to the workload.
    pub faults: Option<FaultConfig>,
    /// Number of shards the per-interval thread-advance computation is
    /// split into (`1` = fully serial, the default). The advance step
    /// of each running thread is a pure function of the pre-interval
    /// state, so shards compute independently and the results are
    /// applied serially in running order — the simulation is therefore
    /// **bit-identical for every shard count** (a property the test
    /// suite enforces). Sharding only pays off for very wide machines;
    /// small cells should stay at `1`.
    pub interior_shards: usize,
    /// Record every call the simulator makes into the RDA extension as
    /// a [`crate::system::RdaCall`], retrievable from
    /// [`crate::SystemSim::rda_calls`] after the run. Off by default
    /// (sweeps do not pay for a log they never read); `rda-check`
    /// converts the log into a replayable `.trace` document for
    /// differential checking against the reference model.
    pub record_rda_calls: bool,
    /// Observability: when set, a [`rda_trace::TraceSink`] with these
    /// capacities is installed in the RDA extension, the run samples
    /// LLC occupancy every simulated tick, and
    /// [`crate::system::RunResult::trace`] carries the frozen
    /// [`rda_trace::TraceReport`]. Off by default; tracing is
    /// digest-neutral (it never feeds back into scheduling).
    pub trace: Option<rda_trace::TraceConfig>,
}

/// Historical default jitter seed; kept so single-run behaviour (and
/// every checked-in expectation) is unchanged from before the sweep
/// runner existed.
pub const DEFAULT_JITTER_SEED: u64 = 0x0005_c4ed_1234;

impl SimConfig {
    /// Paper-default configuration for a given policy.
    pub fn paper_default(policy: PolicyKind) -> Self {
        let machine = MachineConfig::xeon_e5_2420();
        let rebalance_every = SimDuration::from_micros(50_000.0, machine.freq_hz); // 50 ms
        SimConfig {
            machine,
            perf_params: PerfParams::default(),
            energy: EnergyModel::default(),
            policy,
            rebalance_every,
            max_sim_seconds: 1000.0,
            sample_every: None,
            jitter_seed: DEFAULT_JITTER_SEED,
            paranoid: true,
            demand_audit: DemandAudit::Trust,
            waitlist_timeout: None,
            faults: None,
            interior_shards: 1,
            record_rda_calls: false,
            trace: None,
        }
    }

    /// Split the per-interval advance computation into `n` shards
    /// (clamped to at least 1). Digest-neutral by construction; see
    /// [`SimConfig::interior_shards`].
    pub fn with_interior_shards(mut self, n: usize) -> Self {
        self.interior_shards = n.max(1);
        self
    }

    /// Enable timeline sampling at the given period in milliseconds.
    pub fn with_sampling_ms(mut self, ms: f64) -> Self {
        self.sample_every = Some(SimDuration::from_micros(ms * 1e3, self.machine.freq_hz));
        self
    }

    /// Use the given timeslice-jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Enable or disable per-step invariant checking.
    pub fn with_paranoid(mut self, on: bool) -> Self {
        self.paranoid = on;
        self
    }

    /// Use the given demand-audit mode.
    pub fn with_demand_audit(mut self, audit: DemandAudit) -> Self {
        self.demand_audit = audit;
        self
    }

    /// Enable waitlist aging with the given timeout in milliseconds.
    pub fn with_waitlist_timeout_ms(mut self, ms: f64) -> Self {
        self.waitlist_timeout = Some(SimDuration::from_micros(ms * 1e3, self.machine.freq_hz));
        self
    }

    /// Inject faults per the given configuration (see [`crate::faults`];
    /// consider enabling waitlist aging alongside).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Record the RDA call log for later differential replay.
    pub fn with_rda_trace(mut self) -> Self {
        self.record_rda_calls = true;
        self
    }

    /// Enable observability tracing with default buffer capacities (see
    /// [`rda_trace::TraceConfig`]).
    pub fn with_trace(self) -> Self {
        self.with_trace_config(rda_trace::TraceConfig::default())
    }

    /// Enable observability tracing with explicit buffer capacities.
    pub fn with_trace_config(mut self, trace: rda_trace::TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = SimConfig::paper_default(PolicyKind::Strict);
        assert!(c.machine.validate().is_ok());
        assert!(c.rebalance_every.cycles() > 0);
        assert_eq!(c.policy, PolicyKind::Strict);
        // Robustness defaults: paranoid checking on (read-only, cannot
        // change behaviour), everything else the paper's behaviour.
        assert!(c.paranoid);
        assert_eq!(c.demand_audit, DemandAudit::Trust);
        assert_eq!(c.waitlist_timeout, None);
        assert_eq!(c.faults, None);
        assert!(c.trace.is_none(), "tracing is strictly opt-in");
    }

    #[test]
    fn trace_builders_set_capacities() {
        let c = SimConfig::paper_default(PolicyKind::Strict).with_trace();
        assert_eq!(c.trace, Some(rda_trace::TraceConfig::default()));
        let custom = rda_trace::TraceConfig {
            event_capacity: 64,
            occupancy_capacity: 16,
        };
        let c = SimConfig::paper_default(PolicyKind::Strict).with_trace_config(custom);
        assert_eq!(c.trace, Some(custom));
    }

    #[test]
    fn robustness_builders_compose() {
        let c = SimConfig::paper_default(PolicyKind::Strict)
            .with_demand_audit(DemandAudit::Clamp)
            .with_waitlist_timeout_ms(5.0)
            .with_faults(FaultConfig::uniform(0.1))
            .with_paranoid(false);
        assert_eq!(c.demand_audit, DemandAudit::Clamp);
        let timeout = c.waitlist_timeout.expect("timeout set");
        // 5 ms at 1.9 GHz.
        assert_eq!(timeout.cycles(), (5e-3 * c.machine.freq_hz) as u64);
        assert!(c.faults.is_some());
        assert!(!c.paranoid);
    }
}
