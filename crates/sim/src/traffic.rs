//! Deterministic open-system traffic engine.
//!
//! The paper's experiments are *closed*: a fixed set of processes runs
//! to completion. Real services are *open*: requests arrive on their
//! own clock, each one a short-lived process that begins a progress
//! period, does its work, and exits — and when arrivals outpace
//! capacity the scheduler must shed load rather than queue without
//! bound. This module generates that arrival stream and drives the RDA
//! extension's overload controls (`rda_core::OverloadConfig`) with it:
//!
//! * [`TrafficPlan::generate`] pre-expands a Poisson or diurnal
//!   [`ArrivalPattern`] into a concrete request schedule from a
//!   dedicated, salted RNG stream ([`TRAFFIC_STREAM`]). Every candidate
//!   arrival consumes a **fixed number of variates** (arrival gap,
//!   thinning accept, demand class, service time, and one backoff
//!   jitter per allowed attempt), so the stream position is a pure
//!   function of the configuration — the plan, and therefore the whole
//!   run, is bit-identical regardless of threading or call order,
//!   exactly like [`crate::faults::FaultPlan`].
//! * [`TrafficSim::run`] replays the plan through a discrete-event
//!   loop: admitted requests complete after their service time, paused
//!   ones wait (bounded by the overload gate), shed or breaker-rejected
//!   ones retry with exponential backoff and pre-drawn jitter, expired
//!   ones fail their deadline permanently. Fault injection composes:
//!   a [`crate::faults::FaultConfig`] is expanded over a synthetic
//!   one-phase-per-request workload, so requests can lie about demand,
//!   leak or double their `pp_end`, or die holding periods — chaos
//!   *under* overload, which is where control planes actually break.
//! * [`TrafficResult`] carries goodput, a log-2 sojourn histogram
//!   (p50/p95/p99 end-to-end latency including queueing and retries),
//!   every [`rda_core::RdaStats`] counter, and an FNV digest for
//!   cross-thread-count equality checks. With
//!   [`TrafficConfig::record_calls`] set, the exact call sequence is
//!   retained for differential replay against the `rda-check`
//!   reference model.
//!
//! The engine cannot hang: with deadlines or aging configured every
//! waiter eventually expires or is force-admitted, and without them
//! any waiter that can never be unstuck (capacity held by leaked
//! periods, no completions outstanding) is deterministically stranded
//! via `process_exit` once the event heap drains.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use crate::faults::{FaultConfig, FaultPlan};
use crate::system::RdaCall;
use rda_core::{
    mb, BeginOutcome, BeginRequest, PpDemand, RdaConfig, RdaError, RdaExtension, RdaStats, SiteId,
};
use rda_machine::ReuseLevel;
use rda_sched::ProcessId;
use rda_simcore::{Fnv1a64, SimTime, SplitMix64};
use rda_trace::Log2Hist;
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};

/// Stream salt separating the traffic RNG from the timeslice-jitter
/// and fault-plan streams derived from the same root seed.
pub const TRAFFIC_STREAM: u64 = 0x7AF1_C000_0000_0001;

/// Shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean arrivals per simulated second.
        rate_per_sec: f64,
    },
    /// A day/night load curve: the rate swings sinusoidally between
    /// `base` and `peak` with the given period, realised by thinning a
    /// Poisson process at the peak rate (each candidate keeps its
    /// accept variate, so the stream stays position-stable).
    Diurnal {
        /// Trough arrival rate, per simulated second.
        base_per_sec: f64,
        /// Peak arrival rate, per simulated second.
        peak_per_sec: f64,
        /// Full period of the swing, simulated seconds.
        period_secs: f64,
    },
}

impl ArrivalPattern {
    /// The envelope rate candidates are drawn at.
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalPattern::Diurnal { peak_per_sec, .. } => peak_per_sec,
        }
    }

    /// Instantaneous rate at `t_secs`.
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        match *self {
            ArrivalPattern::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalPattern::Diurnal {
                base_per_sec,
                peak_per_sec,
                period_secs,
            } => {
                let phase = (std::f64::consts::TAU * t_secs / period_secs).cos();
                base_per_sec + (peak_per_sec - base_per_sec) * 0.5 * (1.0 - phase)
            }
        }
    }
}

/// Everything the traffic engine needs besides the scheduler
/// configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// The arrival process.
    pub pattern: ArrivalPattern,
    /// Length of the arrival window, simulated seconds (requests still
    /// in flight at the end are drained to completion).
    pub duration_secs: f64,
    /// Simulated clock frequency (cycles per second).
    pub cycles_per_sec: f64,
    /// Demand classes as `(working-set bytes, relative weight)`; the
    /// class index doubles as the request's static call site.
    pub demand_classes: Vec<(u64, f64)>,
    /// Mean of the exponential service-time distribution, cycles.
    pub mean_service_cycles: f64,
    /// Total tries per request (first attempt plus retries) before a
    /// shed request fails permanently.
    pub max_attempts: u32,
    /// Base of the exponential backoff: retry `k` waits
    /// `base · 2^k` plus a pre-drawn jitter below `base`.
    pub backoff_base_cycles: u64,
    /// Period of the aging/deadline/breaker tick (`0` disables ticks;
    /// only sensible when no overload control is configured).
    pub age_tick_cycles: u64,
    /// Retain the exact [`RdaCall`] sequence for differential replay.
    pub record_calls: bool,
}

impl TrafficConfig {
    /// A web-service-shaped default: mostly small requests with a
    /// heavy tail, ~2 ms mean service time at 1.9 GHz, three attempts
    /// with ~1 ms backoff, and a 0.5 ms control tick.
    pub fn web_default(rate_per_sec: f64, duration_secs: f64) -> Self {
        TrafficConfig {
            pattern: ArrivalPattern::Poisson { rate_per_sec },
            duration_secs,
            cycles_per_sec: 1.9e9,
            demand_classes: vec![(mb(0.25), 0.70), (mb(2.0), 0.25), (mb(8.0), 0.05)],
            mean_service_cycles: 3.8e6,
            max_attempts: 3,
            backoff_base_cycles: 1_900_000,
            age_tick_cycles: 950_000,
            record_calls: false,
        }
    }
}

/// One pre-drawn request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Arrival time, cycles from run start.
    pub arrival: u64,
    /// Demand-class index, doubling as the static call site.
    pub site: u32,
    /// Honest working-set demand, bytes.
    pub demand: u64,
    /// Service time once admitted, cycles.
    pub service: u64,
    /// Pre-drawn backoff jitter per attempt (length
    /// [`TrafficConfig::max_attempts`]).
    pub jitter: Vec<u64>,
}

/// A fully expanded, deterministic arrival schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrafficPlan {
    /// Requests in arrival order.
    pub requests: Vec<Request>,
}

impl TrafficPlan {
    /// Expand `cfg` into a concrete schedule, deterministic in
    /// `(seed, cfg)`. Candidates are drawn at the pattern's peak rate
    /// and thinned to the instantaneous rate; every candidate —
    /// accepted or not — consumes the same number of variates.
    pub fn generate(cfg: &TrafficConfig, seed: u64) -> Self {
        let mut rng = SplitMix64::new(SplitMix64::derive_stream(seed, TRAFFIC_STREAM));
        let peak = cfg.pattern.peak_rate();
        assert!(peak > 0.0 && peak.is_finite(), "arrival rate must be positive");
        assert!(!cfg.demand_classes.is_empty(), "need at least one demand class");
        let total_weight: f64 = cfg.demand_classes.iter().map(|&(_, w)| w).sum();
        let jitter_bound = cfg.backoff_base_cycles.max(1);
        let mut requests = Vec::new();
        let mut t_secs = 0.0_f64;
        loop {
            // Fixed draw count per candidate: gap, accept, class,
            // service, then one jitter per allowed attempt.
            let gap_u = rng.next_f64();
            let accept_u = rng.next_f64();
            let class_u = rng.next_f64();
            let service_u = rng.next_f64();
            let jitter: Vec<u64> = (0..cfg.max_attempts)
                .map(|_| rng.next_below(jitter_bound))
                .collect();
            t_secs += -(1.0 - gap_u).ln() / peak;
            if t_secs >= cfg.duration_secs {
                break;
            }
            if accept_u * peak > cfg.pattern.rate_at(t_secs) {
                continue; // thinned out of the diurnal trough
            }
            let mut pick = class_u * total_weight;
            let mut site = cfg.demand_classes.len() - 1;
            for (i, &(_, w)) in cfg.demand_classes.iter().enumerate() {
                if pick < w {
                    site = i;
                    break;
                }
                pick -= w;
            }
            let service = (-(1.0 - service_u).ln() * cfg.mean_service_cycles).ceil() as u64;
            requests.push(Request {
                arrival: (t_secs * cfg.cycles_per_sec) as u64,
                site: site as u32,
                demand: cfg.demand_classes[site].0,
                service: service.max(1),
                jitter,
            });
        }
        TrafficPlan { requests }
    }

    /// Number of scheduled requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The synthetic one-phase-per-request workload faults are drawn
    /// over, so [`FaultPlan::generate`] composes with open traffic the
    /// same way it does with closed workloads.
    pub fn fault_spec(&self) -> WorkloadSpec {
        WorkloadSpec {
            name: "traffic".into(),
            processes: self
                .requests
                .iter()
                .map(|r| ProcessProgram {
                    threads: 1,
                    phases: vec![Phase::tracked(
                        "req",
                        r.service,
                        r.demand,
                        ReuseLevel::High,
                        SiteId(r.site),
                    )],
                })
                .collect(),
        }
    }
}

/// Outcome of one traffic run.
#[derive(Debug, Clone)]
pub struct TrafficResult {
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests that finished their service (goodput numerator);
    /// includes degraded-overflow admissions and leaked-end work.
    pub completed: u64,
    /// Requests shed past their retry budget or refused by the demand
    /// auditor.
    pub failed: u64,
    /// Requests expired past their deadline while waitlisted.
    pub expired: u64,
    /// Requests whose process was fault-killed holding a period.
    pub killed: u64,
    /// Waiters that could never be unstuck (capacity leaked away with
    /// no deadline or aging configured) and were deterministically
    /// reclaimed via `process_exit`.
    pub stranded: u64,
    /// Client-side retries issued.
    pub retries: u64,
    /// Final extension counters.
    pub rda: RdaStats,
    /// End-to-end sojourn (arrival to completion, cycles) of every
    /// completed request — queueing, backoff, and service included.
    pub sojourn: Log2Hist,
    /// Completed requests per simulated second of the arrival window.
    pub goodput_per_sec: f64,
    /// Exact call sequence (`Some` iff [`TrafficConfig::record_calls`]).
    pub calls: Option<Vec<RdaCall>>,
}

impl TrafficResult {
    /// Median sojourn, cycles.
    pub fn p50(&self) -> u64 {
        self.sojourn.quantile(0.50)
    }

    /// 95th-percentile sojourn, cycles.
    pub fn p95(&self) -> u64 {
        self.sojourn.quantile(0.95)
    }

    /// 99th-percentile sojourn, cycles.
    pub fn p99(&self) -> u64 {
        self.sojourn.quantile(0.99)
    }

    /// Order-independent FNV digest of everything the run decided:
    /// request accounting, every extension counter, and the full
    /// sojourn distribution. Two runs of the same configuration must
    /// produce the same digest on any thread count.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        for v in [
            self.arrivals,
            self.completed,
            self.failed,
            self.expired,
            self.killed,
            self.stranded,
            self.retries,
        ] {
            h.write_u64(v);
        }
        for v in [
            self.rda.begins,
            self.rda.ends,
            self.rda.admitted,
            self.rda.paused,
            self.rda.resumed,
            self.rda.max_waitlist,
            self.rda.oversized_admits,
            self.rda.reclaimed,
            self.rda.clamped,
            self.rda.aged_admissions,
            self.rda.rejected_ends,
            self.rda.shed,
            self.rda.expired,
            self.rda.retried,
            self.rda.breaker_trips,
        ] {
            h.write_u64(v);
        }
        for (upper, n) in self.sojourn.nonzero_buckets() {
            h.write_u64(upper);
            h.write_u64(n);
        }
        h.write_u64(self.sojourn.max());
        h.finish()
    }
}

/// The open-system traffic simulation: an arrival plan driven through
/// one [`RdaExtension`].
#[derive(Debug, Clone)]
pub struct TrafficSim {
    traffic: TrafficConfig,
    rda: RdaConfig,
    faults: Option<FaultConfig>,
}

/// Heap entry: strict `(time, sequence)` order makes pops — and
/// therefore the whole run — deterministic even among simultaneous
/// events.
#[derive(Debug)]
struct QEntry {
    t: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

#[derive(Debug)]
enum Ev {
    /// First attempt of a request.
    Arrival { req: usize },
    /// A backed-off re-attempt.
    Retry { req: usize },
    /// An admitted request finishing its service (`pp` is `None` for
    /// untracked fallbacks, e.g. auditor-refused demands).
    Complete { req: usize, pp: Option<rda_core::PpId> },
    /// The aging/deadline/breaker control tick.
    Tick,
}

struct Engine<'a> {
    cfg: &'a TrafficConfig,
    plan: &'a TrafficPlan,
    faults: FaultPlan,
    ext: RdaExtension,
    heap: BinaryHeap<QEntry>,
    /// Waitlisted requests by period id; a `BTreeMap` so stranding
    /// order is deterministic.
    waiting: BTreeMap<u64, usize>,
    /// Current attempt index per request.
    attempts: Vec<u32>,
    /// Non-tick events still in the heap (ticks self-cancel when this
    /// hits zero and nothing waits).
    pending: usize,
    seq: u64,
    now: SimTime,
    completed: u64,
    failed: u64,
    expired: u64,
    killed: u64,
    stranded: u64,
    retries: u64,
    sojourn: Log2Hist,
    calls: Option<Vec<RdaCall>>,
}

impl TrafficSim {
    /// A traffic run over the given arrival shape and scheduler
    /// configuration (put overload control in
    /// [`RdaConfig::with_overload`]).
    pub fn new(traffic: TrafficConfig, rda: RdaConfig) -> Self {
        TrafficSim {
            traffic,
            rda,
            faults: None,
        }
    }

    /// Inject faults per the given configuration (expanded over the
    /// synthetic per-request workload; see [`TrafficPlan::fault_spec`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Execute the run for `seed`. Deterministic: the same
    /// `(config, seed)` produces the same [`TrafficResult::digest`] on
    /// any machine and any sweep thread count.
    pub fn run(&self, seed: u64) -> TrafficResult {
        let plan = TrafficPlan::generate(&self.traffic, seed);
        let fault_plan = match &self.faults {
            Some(fc) => FaultPlan::generate(&plan.fault_spec(), fc, seed),
            None => FaultPlan::none(),
        };
        let mut eng = Engine {
            cfg: &self.traffic,
            plan: &plan,
            faults: fault_plan,
            ext: RdaExtension::new(self.rda.clone()),
            heap: BinaryHeap::with_capacity(plan.len() * 2 + 4),
            waiting: BTreeMap::new(),
            attempts: vec![0; plan.len()],
            pending: 0,
            seq: 0,
            now: SimTime::ZERO,
            completed: 0,
            failed: 0,
            expired: 0,
            killed: 0,
            stranded: 0,
            retries: 0,
            sojourn: Log2Hist::new(),
            calls: if self.traffic.record_calls {
                Some(Vec::new())
            } else {
                None
            },
        };
        for (i, r) in plan.requests.iter().enumerate() {
            eng.push(r.arrival, Ev::Arrival { req: i });
        }
        if self.traffic.age_tick_cycles > 0 {
            eng.push_tick(self.traffic.age_tick_cycles);
        }
        eng.drive(&self.rda);
        let rda = eng.ext.stats();
        eng.ext
            .check_invariants()
            .expect("traffic run left the extension inconsistent");
        let arrivals = plan.len() as u64;
        debug_assert_eq!(
            eng.completed + eng.failed + eng.expired + eng.killed + eng.stranded,
            arrivals,
            "every request must reach exactly one terminal state"
        );
        TrafficResult {
            arrivals,
            completed: eng.completed,
            failed: eng.failed,
            expired: eng.expired,
            killed: eng.killed,
            stranded: eng.stranded,
            retries: eng.retries,
            rda,
            sojourn: eng.sojourn,
            goodput_per_sec: eng.completed as f64 / self.traffic.duration_secs,
            calls: eng.calls,
        }
    }
}

impl Engine<'_> {
    fn push(&mut self, t: u64, ev: Ev) {
        if !matches!(ev, Ev::Tick) {
            self.pending += 1;
        }
        self.heap.push(QEntry {
            t,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    fn push_tick(&mut self, t: u64) {
        self.heap.push(QEntry {
            t,
            seq: self.seq,
            ev: Ev::Tick,
        });
        self.seq += 1;
    }

    fn record(&mut self, call: RdaCall) {
        if let Some(calls) = &mut self.calls {
            calls.push(call);
        }
    }

    fn pid(req: usize) -> ProcessId {
        ProcessId(req as u32)
    }

    fn drive(&mut self, rda: &RdaConfig) {
        // A tick can only unstick a waiter when something ages it out
        // (force-admit) or expires it (deadline); without either, a
        // waitlist with no completions in flight is permanently stuck.
        let can_unstick = rda.waitlist_timeout_cycles.is_some()
            || rda.overload.as_ref().is_some_and(|o| o.deadline_cycles.is_some());
        let overload_on = rda.overload.is_some();
        loop {
            while let Some(e) = self.heap.pop() {
                self.now = SimTime::from_cycles(e.t);
                match e.ev {
                    Ev::Arrival { req } => {
                        self.pending -= 1;
                        // Kill-at-waitlist faults exit the process in
                        // the middle of outcome handling, so they form
                        // batch barriers; everything else in a maximal
                        // same-tick arrival run admits in one batch.
                        if self.faults.kill_at(req) == Some(0) {
                            self.attempt(req);
                        } else {
                            let mut batch = vec![req];
                            while let Some(top) = self.heap.peek() {
                                let Ev::Arrival { req: r2 } = top.ev else {
                                    break;
                                };
                                if top.t != e.t || self.faults.kill_at(r2) == Some(0) {
                                    break;
                                }
                                self.heap.pop();
                                self.pending -= 1;
                                batch.push(r2);
                            }
                            if batch.len() == 1 {
                                self.attempt(req);
                            } else {
                                self.attempt_batch(&batch);
                            }
                        }
                    }
                    Ev::Retry { req } => {
                        self.pending -= 1;
                        let r = &self.plan.requests[req];
                        let (site, resource) = (SiteId(r.site), rda_core::Resource::Llc);
                        self.ext
                            .note_retry(Self::pid(req), site, resource, self.now);
                        self.record(RdaCall::Retry {
                            now: self.now,
                            process: Self::pid(req),
                            site,
                            resource,
                        });
                        self.retries += 1;
                        self.attempt(req);
                    }
                    Ev::Complete { req, pp } => {
                        self.pending -= 1;
                        self.complete(req, pp);
                    }
                    Ev::Tick => {
                        let now = self.now;
                        let out = self.ext.age_waitlist(now);
                        // Under overload control every tick advances
                        // breaker hysteresis, so every tick must be in
                        // the replayable call log; otherwise only ticks
                        // that admitted something are observable.
                        if overload_on || !out.resumed.is_empty() {
                            self.record(RdaCall::Age { now });
                        }
                        for (pp, _) in out.resumed {
                            self.wake(pp);
                        }
                        for (pp, _) in out.expired {
                            let req = self
                                .waiting
                                .remove(&pp.0)
                                .expect("expired period not waitlisted");
                            debug_assert!(self.attempts[req] < u32::MAX);
                            // A missed deadline is an end-to-end SLO
                            // failure: no retry.
                            self.expired += 1;
                        }
                        if self.pending > 0 || (!self.waiting.is_empty() && can_unstick) {
                            self.push_tick(e.t + self.cfg.age_tick_cycles);
                        }
                    }
                }
            }
            if self.waiting.is_empty() {
                break;
            }
            // Heap drained with waiters left: nothing can ever unstick
            // them. Reclaim deterministically (ascending period id).
            let stuck: Vec<(u64, usize)> = self.waiting.iter().map(|(&k, &v)| (k, v)).collect();
            for (ppid, req) in stuck {
                if self.waiting.remove(&ppid).is_none() {
                    continue; // resumed by an earlier reclaim this round
                }
                self.record(RdaCall::Exit {
                    now: self.now,
                    process: Self::pid(req),
                });
                let resumed = self.ext.process_exit(Self::pid(req), self.now);
                self.stranded += 1;
                for (pp, _) in resumed {
                    self.wake(pp);
                }
            }
        }
    }

    /// The fault-adjusted demand, site, and service time of a
    /// request's next admission try.
    fn begin_args(&self, req: usize) -> (PpDemand, SiteId, u64) {
        let r = &self.plan.requests[req];
        let fault = self.faults.phase(req, 0);
        let declared = if fault.demand_factor != 1.0 {
            (r.demand as f64 * fault.demand_factor) as u64
        } else {
            r.demand
        };
        (PpDemand::llc(declared, ReuseLevel::High), SiteId(r.site), r.service)
    }

    /// One admission try (first arrival or a retry).
    fn attempt(&mut self, req: usize) {
        let (demand, site, service) = self.begin_args(req);
        self.record(RdaCall::Begin {
            now: self.now,
            process: Self::pid(req),
            site,
            demand,
        });
        let out = self.ext.pp_begin(Self::pid(req), site, demand, self.now);
        self.finish_attempt(req, service, out);
    }

    /// Admit a maximal same-tick run of arrivals through
    /// [`RdaExtension::pp_begin_batch`]: one load-table read decides
    /// the whole run, with outcomes equal to serial order by the
    /// batch API's contract (enforced bit-for-bit by the rda-check
    /// batch oracle). Callers must exclude requests whose outcome
    /// handling mutates the extension mid-run (kill-at-waitlist
    /// faults), so handling can be replayed after the batch.
    fn attempt_batch(&mut self, reqs: &[usize]) {
        let mut batch = Vec::with_capacity(reqs.len());
        for &req in reqs {
            let (demand, site, _) = self.begin_args(req);
            self.record(RdaCall::Begin {
                now: self.now,
                process: Self::pid(req),
                site,
                demand,
            });
            batch.push(BeginRequest {
                process: Self::pid(req),
                site,
                demand,
            });
        }
        let outs = self.ext.pp_begin_batch(&batch, self.now);
        for (&req, out) in reqs.iter().zip(outs) {
            let (_, _, service) = self.begin_args(req);
            self.finish_attempt(req, service, out);
        }
    }

    /// Apply the outcome of one admission try.
    fn finish_attempt(
        &mut self,
        req: usize,
        service: u64,
        out: Result<BeginOutcome, RdaError>,
    ) {
        match out {
            Ok(BeginOutcome::Run { pp, .. }) => {
                let t = self.now.cycles().saturating_add(service);
                self.push(t, Ev::Complete { req, pp: Some(pp) });
            }
            Ok(BeginOutcome::Bypass) => {
                let t = self.now.cycles().saturating_add(service);
                self.push(t, Ev::Complete { req, pp: None });
            }
            Ok(BeginOutcome::Pause { pp, shed }) => {
                if let Some(victim) = shed {
                    // RejectOldest evicted the longest waiter to make
                    // room; its period is already completed.
                    let vreq = self
                        .waiting
                        .remove(&victim.0)
                        .expect("shed victim not waitlisted");
                    self.retry_or_fail(vreq);
                }
                if self.faults.kill_at(req) == Some(0) {
                    // Fault-killed while waitlisted: the process dies
                    // holding its queued period; exit reclaims it.
                    self.record(RdaCall::Exit {
                        now: self.now,
                        process: Self::pid(req),
                    });
                    let resumed = self.ext.process_exit(Self::pid(req), self.now);
                    self.killed += 1;
                    for (woken, _) in resumed {
                        self.wake(woken);
                    }
                } else {
                    self.waiting.insert(pp.0, req);
                }
            }
            Err(RdaError::WaitlistFull { .. }) | Err(RdaError::BreakerOpen { .. }) => {
                self.retry_or_fail(req);
            }
            Err(_) => {
                // Auditor refusal (demand overflow): per the API
                // contract the caller falls back to untracked
                // scheduling, so the request still completes.
                let t = self.now.cycles().saturating_add(service);
                self.push(t, Ev::Complete { req, pp: None });
            }
        }
    }

    /// Schedule the service completion of a just-admitted waiter.
    fn wake(&mut self, pp: rda_core::PpId) {
        let req = self
            .waiting
            .remove(&pp.0)
            .expect("resumed period not waitlisted");
        let t = self
            .now
            .cycles()
            .saturating_add(self.plan.requests[req].service);
        self.push(t, Ev::Complete { req, pp: Some(pp) });
    }

    /// Retry a shed request with exponential backoff, or fail it once
    /// its attempt budget is spent.
    fn retry_or_fail(&mut self, req: usize) {
        let a = self.attempts[req];
        if a + 1 < self.cfg.max_attempts {
            self.attempts[req] = a + 1;
            let backoff = self
                .cfg
                .backoff_base_cycles
                .saturating_mul(1u64.checked_shl(a).unwrap_or(u64::MAX));
            let jitter = self.plan.requests[req].jitter[a as usize];
            let t = self
                .now
                .cycles()
                .saturating_add(backoff)
                .saturating_add(jitter);
            self.push(t, Ev::Retry { req });
        } else {
            self.failed += 1;
        }
    }

    /// A request finished its service.
    fn complete(&mut self, req: usize, pp: Option<rda_core::PpId>) {
        let sojourn = self
            .now
            .cycles()
            .saturating_sub(self.plan.requests[req].arrival);
        let Some(pp) = pp else {
            self.completed += 1;
            self.sojourn.record(sojourn);
            return;
        };
        let fault = self.faults.phase(req, 0);
        if self.faults.kill_at(req) == Some(0) {
            // Died at phase completion holding the open period.
            self.record(RdaCall::Exit {
                now: self.now,
                process: Self::pid(req),
            });
            let resumed = self.ext.process_exit(Self::pid(req), self.now);
            self.killed += 1;
            for (woken, _) in resumed {
                self.wake(woken);
            }
            return;
        }
        if fault.leak_end {
            // The work finished but `pp_end` never came; process exit
            // reclaims the leaked period.
            self.record(RdaCall::Exit {
                now: self.now,
                process: Self::pid(req),
            });
            let resumed = self.ext.process_exit(Self::pid(req), self.now);
            for (woken, _) in resumed {
                self.wake(woken);
            }
        } else {
            self.record(RdaCall::End { now: self.now, pp });
            let out = self
                .ext
                .pp_end(pp, self.now)
                .expect("first pp_end of a running period cannot fail");
            for (woken, _) in out.resumed {
                self.wake(woken);
            }
            if fault.double_end {
                self.record(RdaCall::End { now: self.now, pp });
                let second = self.ext.pp_end(pp, self.now);
                debug_assert!(
                    matches!(second, Err(RdaError::DoubleEnd(_))),
                    "second pp_end must be rejected as a double end"
                );
            }
        }
        self.completed += 1;
        self.sojourn.record(sojourn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::{BreakerConfig, OverloadConfig, PolicyKind, ShedPolicy};
    use rda_machine::MachineConfig;

    fn rda_cfg() -> RdaConfig {
        RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), PolicyKind::Strict)
    }

    fn overload_cfg() -> OverloadConfig {
        OverloadConfig {
            waitlist_cap: 16,
            shed_policy: ShedPolicy::RejectNewest,
            deadline_cycles: Some(40_000_000), // ~21 ms at 1.9 GHz
            breaker: Some(BreakerConfig {
                high_water: mb(14.0),
                low_water: mb(8.0),
                trip_after: 4,
                recover_after: 4,
                shed_min_demand: mb(1.0),
            }),
        }
    }

    #[test]
    fn plan_generation_is_deterministic() {
        let cfg = TrafficConfig::web_default(800.0, 0.5);
        let a = TrafficPlan::generate(&cfg, 7);
        let b = TrafficPlan::generate(&cfg, 7);
        assert_eq!(a, b);
        assert_ne!(a, TrafficPlan::generate(&cfg, 8));
        assert!(!a.is_empty());
        // Arrivals are ordered and inside the window.
        let horizon = (cfg.duration_secs * cfg.cycles_per_sec) as u64;
        let mut prev = 0;
        for r in &a.requests {
            assert!(r.arrival >= prev && r.arrival < horizon);
            assert_eq!(r.jitter.len(), cfg.max_attempts as usize);
            assert!(r.service >= 1);
            prev = r.arrival;
        }
    }

    #[test]
    fn plan_sustains_service_scale() {
        // The engine's design point: ~1e5 request lifecycles per
        // simulated hour at a modest 30 req/s.
        let cfg = TrafficConfig::web_default(30.0, 3600.0);
        let plan = TrafficPlan::generate(&cfg, 1);
        assert!(
            plan.len() > 100_000,
            "expected >1e5 requests/hour, got {}",
            plan.len()
        );
    }

    #[test]
    fn diurnal_thins_against_the_peak() {
        let mut cfg = TrafficConfig::web_default(0.0, 2.0);
        cfg.pattern = ArrivalPattern::Diurnal {
            base_per_sec: 100.0,
            peak_per_sec: 1000.0,
            period_secs: 1.0,
        };
        let diurnal = TrafficPlan::generate(&cfg, 3).len();
        cfg.pattern = ArrivalPattern::Poisson {
            rate_per_sec: 1000.0,
        };
        let flat = TrafficPlan::generate(&cfg, 3).len();
        // Mean diurnal rate is (base+peak)/2 = 55% of peak.
        assert!(diurnal < flat * 3 / 4, "diurnal {diurnal} vs flat {flat}");
        assert!(diurnal > flat / 3, "diurnal {diurnal} vs flat {flat}");
    }

    #[test]
    fn underload_completes_every_request() {
        let sim = TrafficSim::new(
            TrafficConfig::web_default(300.0, 0.5),
            rda_cfg().with_overload(overload_cfg()),
        );
        let r = sim.run(11);
        assert!(r.arrivals > 0);
        assert_eq!(r.completed, r.arrivals, "underload must not shed: {r:?}");
        assert_eq!(r.failed + r.expired + r.killed + r.stranded, 0);
        assert!(r.p50() > 0 && r.p99() >= r.p50());
        assert!(r.goodput_per_sec > 0.0);
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let sim = TrafficSim::new(
            TrafficConfig::web_default(4_000.0, 0.25),
            rda_cfg().with_overload(overload_cfg()),
        )
        .with_faults(FaultConfig::uniform(0.05));
        assert_eq!(sim.run(42).digest(), sim.run(42).digest());
        assert_ne!(sim.run(42).digest(), sim.run(43).digest());
    }

    #[test]
    fn sustained_overload_with_faults_never_panics_and_sheds() {
        // ~10× the capacity the service-time/demand mix can carry,
        // with every fault class active: the engine must terminate,
        // keep the extension consistent (checked inside run), and
        // account for every request.
        let mut traffic = TrafficConfig::web_default(20_000.0, 0.1);
        traffic.record_calls = true;
        let sim = TrafficSim::new(traffic, rda_cfg().with_overload(overload_cfg()))
            .with_faults(FaultConfig::uniform(0.1));
        let r = sim.run(5);
        assert!(r.arrivals > 1_000, "arrivals {}", r.arrivals);
        assert!(r.rda.shed > 0, "10x overload must shed: {r:?}");
        assert!(r.retries > 0, "sheds must drive retries");
        assert!(r.completed > 0, "overload control must preserve goodput");
        assert!(r.calls.as_ref().is_some_and(|c| !c.is_empty()));
    }

    #[test]
    fn overload_without_control_still_terminates() {
        // No overload config, no aging, faults leaking periods: the
        // stranding path must reclaim stuck waiters deterministically.
        let sim = TrafficSim::new(TrafficConfig::web_default(8_000.0, 0.05), rda_cfg())
            .with_faults(FaultConfig::uniform(0.3));
        let a = sim.run(9);
        let b = sim.run(9);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(
            a.completed + a.failed + a.expired + a.killed + a.stranded,
            a.arrivals
        );
    }

    #[test]
    fn shed_policies_change_who_loses() {
        let mut base = overload_cfg();
        base.waitlist_cap = 4;
        base.breaker = None;
        let traffic = TrafficConfig::web_default(12_000.0, 0.05);
        let mut digests = Vec::new();
        for policy in [
            ShedPolicy::RejectNewest,
            ShedPolicy::RejectOldest,
            ShedPolicy::DegradeToOverflow,
        ] {
            let mut o = base;
            o.shed_policy = policy;
            let r = TrafficSim::new(traffic.clone(), rda_cfg().with_overload(o)).run(2);
            assert!(r.rda.shed > 0, "{policy:?} never shed");
            digests.push(r.digest());
        }
        digests.dedup();
        assert_eq!(digests.len(), 3, "policies must be observably different");
    }
}
