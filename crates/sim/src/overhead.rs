//! The Figure 11 granularity study: progress-tracking overhead.
//!
//! The paper decomposes a 512³ dgemm into progress periods at three
//! granularities — the outermost loop (1 period), the middle loop
//! (512 periods), the innermost loop (512² = 262 144 periods) — and
//! runs a single instance solo under RDA:Strict. Measured overheads:
//! none / ≈19 % / ≈59 %.
//!
//! [`granularity_study`] builds exactly those programs (same total
//! work, split into 1 / n / n² tracked phases) and measures achieved
//! GFLOPS per granularity against the untracked baseline.

use crate::config::SimConfig;
use crate::system::SystemSim;
use rda_core::{mb, PolicyKind, SiteId};
use rda_machine::ReuseLevel;
use rda_metrics::FigureData;
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};

/// Total instructions of the dgemm kernel (512³ MACs ≈ 2×512³ flops at
/// 45 % FLOP density ≈ 600 M instructions).
pub const DGEMM_INSTR: u64 = 600_000_000;
/// dgemm working set at n = 512 with blocking: ~2.4 MB.
pub const DGEMM_WS_MB: f64 = 2.4;
/// The paper's loop trip count.
pub const N: u64 = 512;

/// One measured granularity.
#[derive(Debug, Clone)]
pub struct GranularityPoint {
    /// Label ("no pp", "outer", "middle", "inner").
    pub label: String,
    /// Number of progress periods the run was split into.
    pub periods: u64,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// Overhead vs the untracked baseline (0.19 = 19 % slower).
    pub overhead: f64,
    /// Fast-path share of all API calls.
    pub fastpath_share: f64,
}

fn dgemm_program(periods: u64) -> WorkloadSpec {
    assert!((1..=DGEMM_INSTR).contains(&periods));
    let instr_per_phase = DGEMM_INSTR / periods;
    let phases = (0..periods)
        .map(|_| {
            Phase::tracked(
                "dgemm-pp",
                instr_per_phase,
                mb(DGEMM_WS_MB),
                ReuseLevel::High,
                SiteId(0),
            )
        })
        .collect();
    WorkloadSpec {
        name: format!("dgemm/{periods}"),
        processes: vec![ProcessProgram { threads: 1, phases }],
    }
}

fn untracked_program() -> WorkloadSpec {
    WorkloadSpec {
        name: "dgemm/untracked".into(),
        processes: vec![ProcessProgram {
            threads: 1,
            phases: vec![Phase::untracked(
                "dgemm",
                DGEMM_INSTR,
                mb(DGEMM_WS_MB),
                ReuseLevel::High,
            )],
        }],
    }
}

fn measure(spec: &WorkloadSpec) -> (f64, f64) {
    let mut sim = SystemSim::new(SimConfig::paper_default(PolicyKind::Strict), spec);
    let r = sim.run().expect("solo dgemm must complete");
    let calls = r.rda.begins + r.rda.ends;
    let fast = r.rda.fast_begins + r.rda.fast_ends;
    let share = if calls == 0 {
        0.0
    } else {
        fast as f64 / calls as f64
    };
    (r.measurement.gflops(), share)
}

/// Run the full granularity study. `n` defaults to the paper's 512.
pub fn granularity_study(n: u64) -> Vec<GranularityPoint> {
    let (base_gflops, _) = measure(&untracked_program());
    let mut out = vec![GranularityPoint {
        label: "no progress periods".into(),
        periods: 0,
        gflops: base_gflops,
        overhead: 0.0,
        fastpath_share: 0.0,
    }];
    for (label, periods) in [("outer", 1), ("middle", n), ("inner", n * n)] {
        let (gflops, fastpath_share) = measure(&dgemm_program(periods));
        out.push(GranularityPoint {
            label: label.into(),
            periods,
            gflops,
            overhead: (base_gflops - gflops) / base_gflops,
            fastpath_share,
        });
    }
    out
}

/// Figure 11 data from a study.
pub fn figure11(points: &[GranularityPoint]) -> FigureData {
    let mut fig = FigureData::new(
        "Figure 11",
        "dgemm throughput vs progress-period granularity (solo, RDA:Strict)",
        "GFLOPS",
    );
    for p in points {
        fig.add("dgemm", &p.label, p.gflops);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outer_granularity_is_nearly_free() {
        let pts = granularity_study(64);
        assert_eq!(pts.len(), 4);
        let outer = &pts[1];
        assert!(outer.overhead < 0.01, "outer overhead {}", outer.overhead);
    }

    #[test]
    fn paper_granularities_reproduce_figure11_shape() {
        // The paper's exact setup: n = 512 → 1 / 512 / 262 144 periods,
        // measured overheads 0 % / ~19 % / ~59 %.
        let pts = granularity_study(N);
        let (outer, middle, inner) = (&pts[1], &pts[2], &pts[3]);
        assert!(outer.overhead < 0.01, "outer {}", outer.overhead);
        assert!(
            (0.05..0.40).contains(&middle.overhead),
            "middle {}",
            middle.overhead
        );
        assert!(
            (0.30..0.80).contains(&inner.overhead),
            "inner {}",
            inner.overhead
        );
        assert!(inner.overhead > middle.overhead);
        // 512× more periods cost far less than 512× more overhead: the
        // decision fast path serves almost every inner-loop call.
        let per_period_mid = middle.overhead / middle.periods as f64;
        let per_period_inner = inner.overhead / inner.periods as f64;
        assert!(
            per_period_inner < per_period_mid / 10.0,
            "per-period cost must collapse: {per_period_inner} vs {per_period_mid}"
        );
        assert!(inner.fastpath_share > 0.9, "share {}", inner.fastpath_share);
        assert!(middle.fastpath_share < 0.1, "share {}", middle.fastpath_share);
    }

    #[test]
    fn figure11_has_four_bars() {
        let pts = granularity_study(16);
        let fig = figure11(&pts);
        assert_eq!(fig.categories().len(), 4);
    }
}
