//! The Figure 11 granularity study: progress-tracking overhead.
//!
//! The paper decomposes a 512³ dgemm into progress periods at three
//! granularities — the outermost loop (1 period), the middle loop
//! (512 periods), the innermost loop (512² = 262 144 periods) — and
//! runs a single instance solo under RDA:Strict. Measured overheads:
//! none / ≈19 % / ≈59 %.
//!
//! [`granularity_study`] builds exactly those programs (same total
//! work, split into 1 / n / n² tracked phases) and measures achieved
//! GFLOPS per granularity against the untracked baseline.

use crate::config::SimConfig;
use crate::system::SystemSim;
use rda_core::{mb, PolicyKind, SiteId};
use rda_machine::ReuseLevel;
use rda_metrics::FigureData;
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};

/// Total instructions of the dgemm kernel (512³ MACs ≈ 2×512³ flops at
/// 45 % FLOP density ≈ 600 M instructions).
pub const DGEMM_INSTR: u64 = 600_000_000;
/// dgemm working set at n = 512 with blocking: ~2.4 MB.
pub const DGEMM_WS_MB: f64 = 2.4;
/// The paper's loop trip count.
pub const N: u64 = 512;

/// One measured granularity.
#[derive(Debug, Clone)]
pub struct GranularityPoint {
    /// Label ("no pp", "outer", "middle", "inner").
    pub label: String,
    /// Number of progress periods the run was split into.
    pub periods: u64,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// Overhead vs the untracked baseline (0.19 = 19 % slower).
    pub overhead: f64,
    /// Fast-path share of all API calls.
    pub fastpath_share: f64,
}

fn dgemm_program(periods: u64) -> WorkloadSpec {
    assert!((1..=DGEMM_INSTR).contains(&periods));
    let instr_per_phase = DGEMM_INSTR / periods;
    let phases = (0..periods)
        .map(|_| {
            Phase::tracked(
                "dgemm-pp",
                instr_per_phase,
                mb(DGEMM_WS_MB),
                ReuseLevel::High,
                SiteId(0),
            )
        })
        .collect();
    WorkloadSpec {
        name: format!("dgemm/{periods}"),
        processes: vec![ProcessProgram { threads: 1, phases }],
    }
}

fn untracked_program() -> WorkloadSpec {
    WorkloadSpec {
        name: "dgemm/untracked".into(),
        processes: vec![ProcessProgram {
            threads: 1,
            phases: vec![Phase::untracked(
                "dgemm",
                DGEMM_INSTR,
                mb(DGEMM_WS_MB),
                ReuseLevel::High,
            )],
        }],
    }
}

fn measure(spec: &WorkloadSpec) -> (f64, f64) {
    let mut sim = SystemSim::new(SimConfig::paper_default(PolicyKind::Strict), spec);
    let r = sim.run().expect("solo dgemm must complete");
    let calls = r.rda.begins + r.rda.ends;
    let fast = r.rda.fast_begins + r.rda.fast_ends;
    let share = if calls == 0 {
        0.0
    } else {
        fast as f64 / calls as f64
    };
    (r.measurement.gflops(), share)
}

/// Run the full granularity study. `n` defaults to the paper's 512.
pub fn granularity_study(n: u64) -> Vec<GranularityPoint> {
    let (base_gflops, _) = measure(&untracked_program());
    let mut out = vec![GranularityPoint {
        label: "no progress periods".into(),
        periods: 0,
        gflops: base_gflops,
        overhead: 0.0,
        fastpath_share: 0.0,
    }];
    for (label, periods) in [("outer", 1), ("middle", n), ("inner", n * n)] {
        let (gflops, fastpath_share) = measure(&dgemm_program(periods));
        out.push(GranularityPoint {
            label: label.into(),
            periods,
            gflops,
            overhead: (base_gflops - gflops) / base_gflops,
            fastpath_share,
        });
    }
    out
}

/// Host-measured cost of the observability layer ([`SimConfig::with_trace`]).
///
/// The simulation is deterministic, so tracing cannot change *simulated*
/// time by construction (that is what [`digest_neutral`] certifies); the
/// cost that matters is host wall-clock spent recording events. The
/// study runs a contended multi-process workload twice — tracing off and
/// on — taking the minimum over `reps` repetitions to reject scheduler
/// noise.
///
/// [`digest_neutral`]: TraceOverhead::digest_neutral
#[derive(Debug, Clone)]
pub struct TraceOverhead {
    /// Best host seconds with tracing off.
    pub base_secs: f64,
    /// Best host seconds with tracing on.
    pub traced_secs: f64,
    /// Relative host-time overhead of tracing (0.05 = 5 % slower).
    pub overhead: f64,
    /// Whether the traced and untraced runs produced identical
    /// [`crate::system::RunResult::digest`]s (they always must).
    pub digest_neutral: bool,
    /// Events recorded by the traced run (retained + dropped).
    pub events: u64,
}

/// Measure tracing overhead on a contended workload (see
/// [`TraceOverhead`]). `reps` ≥ 1; the `exp_fig11_overhead` binary uses
/// this to enforce the <5 % tracing budget in CI.
pub fn trace_overhead_study(reps: u32) -> TraceOverhead {
    use rda_workloads::WorkloadSpec;
    let reps = reps.max(1);
    // The workload must be big enough that one run takes tens of host
    // milliseconds — far above `Instant` jitter — or the budget check
    // compares timer noise instead of tracing cost: 8 contended
    // processes cycling through 768 tracked periods each.
    let spec = WorkloadSpec {
        name: "trace-overhead".into(),
        processes: (0..8)
            .map(|_| ProcessProgram {
                threads: 2,
                phases: (0..768)
                    .map(|_| {
                        Phase::tracked(
                            "work",
                            30_000_000,
                            mb(6.0),
                            ReuseLevel::High,
                            SiteId(0),
                        )
                    })
                    .collect(),
            })
            .collect(),
    };
    let cfg = || SimConfig::paper_default(PolicyKind::Strict);
    let timed = |cfg: SimConfig, spec: &WorkloadSpec| {
        let start = std::time::Instant::now();
        let r = SystemSim::new(cfg, spec)
            .run()
            .expect("overhead workload must complete");
        (start.elapsed().as_secs_f64(), r)
    };
    let mut base_secs = f64::INFINITY;
    let mut traced_secs = f64::INFINITY;
    let mut base_digest = 0u64;
    let mut traced_digest = 0u64;
    let mut events = 0u64;
    for _ in 0..reps {
        let (secs, r) = timed(cfg(), &spec);
        base_secs = base_secs.min(secs);
        base_digest = r.digest();
        let (secs, r) = timed(cfg().with_trace(), &spec);
        traced_secs = traced_secs.min(secs);
        traced_digest = r.digest();
        let report = r.trace.expect("tracing was enabled");
        events = report.events.len() as u64 + report.dropped_events;
    }
    TraceOverhead {
        base_secs,
        traced_secs,
        overhead: (traced_secs - base_secs) / base_secs,
        digest_neutral: base_digest == traced_digest,
        events,
    }
}

/// Figure 11 data from a study.
pub fn figure11(points: &[GranularityPoint]) -> FigureData {
    let mut fig = FigureData::new(
        "Figure 11",
        "dgemm throughput vs progress-period granularity (solo, RDA:Strict)",
        "GFLOPS",
    );
    for p in points {
        fig.add("dgemm", &p.label, p.gflops);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outer_granularity_is_nearly_free() {
        let pts = granularity_study(64);
        assert_eq!(pts.len(), 4);
        let outer = &pts[1];
        assert!(outer.overhead < 0.01, "outer overhead {}", outer.overhead);
    }

    #[test]
    fn paper_granularities_reproduce_figure11_shape() {
        // The paper's exact setup: n = 512 → 1 / 512 / 262 144 periods,
        // measured overheads 0 % / ~19 % / ~59 %.
        let pts = granularity_study(N);
        let (outer, middle, inner) = (&pts[1], &pts[2], &pts[3]);
        assert!(outer.overhead < 0.01, "outer {}", outer.overhead);
        assert!(
            (0.05..0.40).contains(&middle.overhead),
            "middle {}",
            middle.overhead
        );
        assert!(
            (0.30..0.80).contains(&inner.overhead),
            "inner {}",
            inner.overhead
        );
        assert!(inner.overhead > middle.overhead);
        // 512× more periods cost far less than 512× more overhead: the
        // decision fast path serves almost every inner-loop call.
        let per_period_mid = middle.overhead / middle.periods as f64;
        let per_period_inner = inner.overhead / inner.periods as f64;
        assert!(
            per_period_inner < per_period_mid / 10.0,
            "per-period cost must collapse: {per_period_inner} vs {per_period_mid}"
        );
        assert!(inner.fastpath_share > 0.9, "share {}", inner.fastpath_share);
        assert!(middle.fastpath_share < 0.1, "share {}", middle.fastpath_share);
    }

    #[test]
    fn trace_overhead_is_digest_neutral_and_finite() {
        // The hard <5 % budget is enforced by `exp_fig11_overhead` in
        // CI with more repetitions; here we only pin the invariants
        // that cannot flake: digest neutrality and a sane measurement.
        let o = trace_overhead_study(1);
        assert!(o.digest_neutral, "tracing changed the run digest");
        assert!(o.base_secs > 0.0 && o.traced_secs > 0.0);
        assert!(o.overhead.is_finite());
        assert!(o.events > 0, "contended run must record events");
    }

    #[test]
    fn figure11_has_four_bars() {
        let pts = granularity_study(16);
        let fig = figure11(&pts);
        assert_eq!(fig.categories().len(), 4);
    }
}
