//! Measurement loops for the headline experiments (Figures 7–10).
//!
//! The paper runs every workload under three policies — Linux default,
//! RDA:Strict, RDA:Compromise(×2) — and reports system energy, DRAM
//! energy, GFLOPS, and GFLOPS/W. [`run_workload`] produces one
//! [`PolicyRun`] per policy; [`headline_figures`] turns a set of runs
//! into the four figures' data.

use crate::config::SimConfig;
use crate::system::{RunResult, SystemSim};
use rda_core::PolicyKind;
use rda_metrics::FigureData;
use rda_workloads::WorkloadSpec;

/// The three policies of the evaluation, in legend order.
pub fn paper_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::DefaultOnly,
        PolicyKind::Strict,
        PolicyKind::compromise_default(),
    ]
}

/// One workload × one policy observation.
#[derive(Debug, Clone)]
pub struct PolicyRun {
    /// Workload name (figure category).
    pub workload: String,
    /// Policy (figure series).
    pub policy: PolicyKind,
    /// The simulation outcome.
    pub result: RunResult,
}

/// Run one workload under one policy.
pub fn run_policy(spec: &WorkloadSpec, policy: PolicyKind) -> PolicyRun {
    let cfg = SimConfig::paper_default(policy);
    let result = SystemSim::new(cfg, spec)
        .run()
        .unwrap_or_else(|e| panic!("{} under {policy}: {e}", spec.name));
    PolicyRun {
        workload: spec.name.clone(),
        policy,
        result,
    }
}

/// Run one workload under all three paper policies.
pub fn run_workload(spec: &WorkloadSpec) -> Vec<PolicyRun> {
    paper_policies()
        .into_iter()
        .map(|p| run_policy(spec, p))
        .collect()
}

/// Assemble Figures 7, 8, 9 and 10 from a set of policy runs.
pub fn headline_figures(runs: &[PolicyRun]) -> [FigureData; 4] {
    let mut fig7 = FigureData::new(
        "Figure 7",
        "System (CPU + cache + DRAM) energy by workload and policy",
        "J",
    );
    let mut fig8 = FigureData::new("Figure 8", "DRAM energy by workload and policy", "J");
    let mut fig9 = FigureData::new("Figure 9", "Performance by workload and policy", "GFLOPS");
    let mut fig10 = FigureData::new(
        "Figure 10",
        "System energy efficiency by workload and policy",
        "GFLOPS/W",
    );
    for run in runs {
        let series = run.policy.to_string();
        let m = &run.result.measurement;
        fig7.add(&series, &run.workload, m.system_joules());
        fig8.add(&series, &run.workload, m.dram_joules());
        fig9.add(&series, &run.workload, m.gflops());
        fig10.add(&series, &run.workload, m.gflops_per_watt());
    }
    [fig7, fig8, fig9, fig10]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::mb;
    use rda_machine::ReuseLevel;
    use rda_workloads::{Phase, ProcessProgram};

    fn quick_spec(name: &str, procs: usize, ws_mb: f64, reuse: ReuseLevel) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            processes: (0..procs)
                .map(|_| ProcessProgram {
                    threads: 1,
                    phases: vec![Phase::tracked(
                        "k",
                        20_000_000,
                        mb(ws_mb),
                        reuse,
                        rda_core::SiteId(0),
                    )],
                })
                .collect(),
        }
    }

    #[test]
    fn three_policies_per_workload() {
        let spec = quick_spec("w", 4, 2.0, ReuseLevel::High);
        let runs = run_workload(&spec);
        assert_eq!(runs.len(), 3);
        let names: Vec<String> = runs.iter().map(|r| r.policy.to_string()).collect();
        assert!(names[0].contains("Default"));
        assert!(names[1].contains("Strict"));
        assert!(names[2].contains("Compromise"));
    }

    #[test]
    fn figures_are_fully_populated() {
        let mut all = Vec::new();
        for spec in [
            quick_spec("alpha", 3, 1.0, ReuseLevel::Low),
            quick_spec("beta", 3, 5.0, ReuseLevel::High),
        ] {
            all.extend(run_workload(&spec));
        }
        let figs = headline_figures(&all);
        for fig in &figs {
            assert_eq!(fig.series.len(), 3, "{}", fig.id);
            assert_eq!(fig.categories(), vec!["alpha".to_string(), "beta".to_string()]);
            for s in &fig.series {
                assert_eq!(s.points.len(), 2);
                assert!(s.points.iter().all(|&(_, v)| v > 0.0), "{}", fig.id);
            }
        }
    }

    #[test]
    fn efficiency_figure_is_consistent_with_energy_and_perf() {
        let spec = quick_spec("w", 2, 1.0, ReuseLevel::Medium);
        let runs = run_workload(&spec);
        let figs = headline_figures(&runs);
        for run in &runs {
            let series = run.policy.to_string();
            let gflops = figs[2].get(&series, "w").unwrap();
            let joules = figs[0].get(&series, "w").unwrap();
            let eff = figs[3].get(&series, "w").unwrap();
            let flops = run.result.measurement.counters.flops as f64;
            assert!((eff - flops / joules / 1e9).abs() < 1e-9);
            assert!(gflops > 0.0);
        }
    }
}
