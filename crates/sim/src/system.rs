//! The full-system discrete-event simulation.
//!
//! [`SystemSim`] advances a workload through piecewise-constant-rate
//! intervals: whenever the set of co-running threads changes (a phase
//! completes, a timeslice expires, a process is paused or resumed), the
//! machine model re-solves every running thread's instruction rate —
//! LLC shares from the *distinct processes currently on-CPU*, DRAM
//! queueing from their aggregate miss traffic — and the simulation
//! jumps to the next event. Energy is integrated per interval with the
//! RAPL-style model.
//!
//! Progress-period begin/end costs and context-switch cache-refill
//! penalties are charged to threads as pending *overhead cycles*,
//! executed before their phase work — this is where Figure 11's
//! tracking overhead and Figure 1's reload effect live.

use crate::config::SimConfig;
use crate::faults::FaultPlan;
use rda_core::{BeginOutcome, PpDemand, RdaConfig, RdaExtension, RdaStats};
use rda_machine::PerfModel;
use rda_metrics::{EnergyBreakdown, Measurement, PerfCounters};
use rda_sched::{CfsScheduler, ProcessId, SchedConfig, SchedStats, TaskId};
use rda_simcore::{SimDuration, SimTime, SplitMix64};
use rda_workloads::{ProcessProgram, WorkloadSpec};

/// Result of one simulated workload execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Counters, energy, and wall-clock of the run.
    pub measurement: Measurement,
    /// RDA extension activity.
    pub rda: RdaStats,
    /// Scheduler activity.
    pub sched: SchedStats,
    /// Per-process completion times (seconds).
    pub finish_secs: Vec<f64>,
    /// Periodic samples (empty unless `SimConfig::sample_every` set).
    pub timeline: Vec<TimelineSample>,
    /// Frozen observability trace (`None` unless [`SimConfig::trace`]
    /// was set). Deliberately **excluded from [`Self::digest`]**: the
    /// digest certifies scheduling behaviour, and tracing must be able
    /// to turn on without moving any golden digest.
    pub trace: Option<rda_trace::TraceReport>,
}

/// One call the simulator made into the RDA extension, recorded (when
/// [`SimConfig::record_rda_calls`] is set) in exact call order so the
/// whole run can be replayed event-by-event against the reference
/// model in `rda-check`. `Begin` carries the demand *as declared to
/// the extension* — after any fault-injected lie, before auditing —
/// and `Age` is recorded only when the aging pass actually admitted
/// something (no-op ticks leave no observable state behind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdaCall {
    /// A `pp_begin` call.
    Begin {
        /// Call time.
        now: SimTime,
        /// Calling process.
        process: ProcessId,
        /// Static call site.
        site: rda_core::SiteId,
        /// The declared (post-lie, pre-audit) demand.
        demand: PpDemand,
    },
    /// A `pp_end` call (including rejected ones, e.g. double ends).
    End {
        /// Call time.
        now: SimTime,
        /// The period being ended.
        pp: rda_core::PpId,
    },
    /// A `process_exit` call.
    Exit {
        /// Call time.
        now: SimTime,
        /// The exiting process.
        process: ProcessId,
    },
    /// An `age_waitlist` call that admitted at least one period.
    Age {
        /// Call time.
        now: SimTime,
    },
    /// A `note_retry` call: the client retried a shed or expired
    /// arrival (recorded by the open-system traffic engine).
    Retry {
        /// Call time.
        now: SimTime,
        /// The retrying process.
        process: ProcessId,
        /// Static call site of the retried demand.
        site: rda_core::SiteId,
        /// The resource the retried demand targets.
        resource: rda_core::Resource,
    },
}

/// One periodic observation of system state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSample {
    /// Sample time, seconds.
    pub t_secs: f64,
    /// Cores executing a thread.
    pub busy_cores: usize,
    /// Threads runnable or running.
    pub active_threads: usize,
    /// Summed working sets of the distinct processes on-CPU, bytes.
    pub running_pressure_bytes: u64,
    /// Summed accounted demand of admitted progress periods, bytes.
    pub admitted_demand_bytes: u64,
    /// Progress periods waiting on the LLC waitlist.
    pub waitlisted: usize,
}

impl RunResult {
    /// Mean busy-core fraction over the timeline (NaN without
    /// sampling).
    pub fn mean_utilization(&self, cores: usize) -> f64 {
        let n = self.timeline.len();
        if n == 0 {
            return f64::NAN;
        }
        self.timeline.iter().map(|s| s.busy_cores).sum::<usize>() as f64 / (n * cores) as f64
    }

    /// A platform-stable 64-bit digest over every observable field of
    /// the run: counters, energy, wall-clock, extension and scheduler
    /// activity, per-process finish times, and the full timeline.
    ///
    /// Two runs are behaviourally identical iff their digests match;
    /// the sweep runner uses this to prove serial and multi-threaded
    /// sweeps bit-identical, and the golden-trace test pins one digest
    /// in the repository so simulator changes are explicit diffs.
    pub fn digest(&self) -> u64 {
        let mut h = rda_simcore::Fnv1a64::new();
        let c = &self.measurement.counters;
        for v in [
            c.instructions,
            c.cycles,
            c.flops,
            c.mem_ops,
            c.l1_misses,
            c.l2_misses,
            c.llc_misses,
            c.llc_accesses,
            c.context_switches,
            c.migrations,
            c.pp_begins,
            c.pp_ends,
            c.fastpath_hits,
            c.waitlisted,
        ] {
            h.write_u64(v);
        }
        h.write_f64(self.measurement.energy.pkg_joules)
            .write_f64(self.measurement.energy.dram_joules)
            .write_f64(self.measurement.wall_secs);
        for v in [
            self.rda.begins,
            self.rda.ends,
            self.rda.admitted,
            self.rda.paused,
            self.rda.resumed,
            self.rda.fast_begins,
            self.rda.fast_ends,
            self.rda.max_waitlist,
            self.rda.oversized_admits,
            self.rda.reclaimed,
            self.rda.clamped,
            self.rda.aged_admissions,
            self.rda.rejected_ends,
            self.rda.shed,
            self.rda.expired,
            self.rda.retried,
            self.rda.breaker_trips,
        ] {
            h.write_u64(v);
        }
        for v in [
            self.sched.context_switches,
            self.sched.migrations,
            self.sched.balance_moves,
            self.sched.wakeups,
        ] {
            h.write_u64(v);
        }
        h.write_usize(self.finish_secs.len());
        for &t in &self.finish_secs {
            h.write_f64(t);
        }
        h.write_usize(self.timeline.len());
        for s in &self.timeline {
            h.write_f64(s.t_secs)
                .write_usize(s.busy_cores)
                .write_usize(s.active_threads)
                .write_u64(s.running_pressure_bytes)
                .write_u64(s.admitted_demand_bytes)
                .write_usize(s.waitlisted);
        }
        h.finish()
    }

    /// Fairness across processes: max finish time / mean finish time
    /// (1.0 = perfectly even completion).
    pub fn finish_spread(&self) -> f64 {
        if self.finish_secs.is_empty() {
            return 1.0;
        }
        let max = self.finish_secs.iter().cloned().fold(0.0, f64::max);
        let mean = self.finish_secs.iter().sum::<f64>() / self.finish_secs.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

struct Proc {
    program: ProcessProgram,
    /// Per-phase id into the simulation-wide deduplicated profile
    /// table: two phases (of any process) with bit-identical access
    /// profiles share an id. Lets the co-run memo key positions by
    /// profile identity instead of comparing full profiles.
    profile_ids: Vec<u32>,
    phase: usize,
    pp: Option<rda_core::PpId>,
    tasks: Vec<TaskId>,
    done_threads: usize,
    finished: bool,
    finish_time: SimTime,
}

struct Thread {
    proc: usize,
    overhead: u64,
    /// Instructions left in the proc's current phase for this thread.
    /// Lives here (not on `Proc`) so the per-interval horizon/advance
    /// loops touch one record per running thread, not two.
    remaining: u64,
}

/// FNV-1a over the written bytes. The co-run memo keys are short
/// `Vec<u64>` tag lists hashed on every cache probe in the simulator's
/// hottest loop; SipHash's per-probe setup cost is measurable there and
/// DoS resistance buys nothing against our own deterministic keys.
#[derive(Default, Clone)]
struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }
    // Whole-word rounds: the keys are `Vec<u64>`, whose `Hash` feeds
    // the hasher one element (plus one length prefix) at a time — one
    // mix per word instead of eight byte rounds.
    fn write_u64(&mut self, x: u64) {
        let h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        self.0 = (h ^ x).wrapping_mul(0x1000_0000_01b3);
    }
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

type BuildFnv = std::hash::BuildHasherDefault<FnvHasher>;


/// The simulator.
pub struct SystemSim {
    cfg: SimConfig,
    perf: PerfModel,
    sched: CfsScheduler,
    rda: RdaExtension,
    procs: Vec<Proc>,
    threads: Vec<Thread>,
    now: SimTime,
    counters: PerfCounters,
    energy: EnergyBreakdown,
    slice_end: Vec<SimTime>,
    last_on_core: Vec<Option<TaskId>>,
    next_rebalance: SimTime,
    unfinished: usize,
    /// Deterministic jitter source for timeslice lengths. Real systems
    /// never keep cores' scheduling epochs aligned (interrupts, wake
    /// latencies); without jitter, identical processes woken in order
    /// rotate in lockstep and accidentally gang-schedule themselves,
    /// which hides the cross-process cache interference the paper
    /// measures.
    jitter: SplitMix64,
    next_sample: SimTime,
    timeline: Vec<TimelineSample>,
    /// Pre-expanded fault schedule (empty unless `SimConfig::faults`).
    faults: FaultPlan,
    /// RDA call log (empty unless `SimConfig::record_rda_calls`).
    rda_calls: Vec<RdaCall>,
    /// Scratch buffers reused across simulation intervals so the event
    /// loop performs no per-interval heap allocation once warm.
    scratch_running: Vec<(usize, TaskId)>,
    scratch_procs: Vec<usize>,
    scratch_entries: Vec<(rda_machine::AccessProfile, u64)>,
    corun_rates: Vec<rda_machine::SegmentRates>,
    /// Packed `(proc << 32 | phase)` tag of each running thread, in
    /// running order, for which `corun_rates` currently holds the
    /// solved rates. A thread's `(profile, share)` entry is a pure
    /// function of its tag plus the tag multiset, so equal tag vectors
    /// imply bit-identical solver inputs.
    corun_tags: Vec<u64>,
    scratch_tags: Vec<u64>,
    /// Every co-run configuration solved so far, by key. Slice
    /// round-robin revisits configurations constantly; copying the
    /// cached rates is bit-identical to re-solving (the solver is
    /// pure).
    corun_cache: std::collections::HashMap<Vec<u64>, Vec<rda_machine::SegmentRates>, BuildFnv>,
    /// Generation counter bumped by every mutation that can change the
    /// co-running set or a running process's phase profile (scheduler
    /// assignment changes, phase transitions, process completion). When
    /// an interval starts with the generation unchanged since the last
    /// update, the tag vector is provably identical and even the tag
    /// rebuild is skipped. Debug builds re-derive everything from first
    /// principles each interval and assert the fast levels were sound.
    corun_gen: u64,
    /// The value of [`Self::corun_gen`] when `corun_tags`/`corun_rates`
    /// were last brought up to date.
    corun_gen_key: u64,
    /// `books_epoch` value at the last passing paranoid invariant
    /// check. The check is a pure function of the extension's books,
    /// so an unchanged epoch implies an unchanged (passing) verdict.
    checked_books_epoch: u64,
    /// Threads that completed their phase quota this interval, in
    /// `running` order; drained right after the advance loop.
    scratch_done: Vec<TaskId>,
    /// Per-running-thread advance results for the current interval, in
    /// `running` order. Filled by the (optionally sharded) compute
    /// pass, consumed by the serial apply pass.
    scratch_steps: Vec<AdvanceStep>,
    /// Dense per-proc mirrors of the *current phase's* working-set
    /// bytes and dedup profile id, refreshed in `enter_phase`. The
    /// co-run key rebuild reads these instead of chasing
    /// `procs[p].program.phases[phase]` pointers per running thread.
    phase_ws: Vec<u64>,
    phase_tag: Vec<u32>,
}

/// One running thread's advance over an interval, computed from the
/// pre-interval state alone. Because the computation reads nothing
/// another thread's step writes, steps can be evaluated in any order
/// (or concurrently, see [`SimConfig::interior_shards`]) and then
/// applied serially in `running` order with bit-identical results.
#[derive(Debug, Clone, Copy, Default)]
struct AdvanceStep {
    new_overhead: u64,
    new_remaining: u64,
    done: bool,
    instr: u64,
    flops: u64,
    mem_ops: u64,
    l1_misses: u64,
    llc_accesses: u64,
    llc_misses: u64,
}

/// Advance one thread by `dt` cycles: burn context-switch overhead
/// first, then retire instructions at the co-run-degraded CPI. Pure —
/// the single source of truth for both the serial and sharded paths.
fn advance_step(
    overhead: u64,
    remaining: u64,
    flop_frac: f64,
    mem_frac: f64,
    r: rda_machine::SegmentRates,
    dt: u64,
) -> AdvanceStep {
    let mut st = AdvanceStep::default();
    let mut cyc = dt;
    let burned = overhead.min(cyc);
    st.new_overhead = overhead - burned;
    cyc -= burned;
    st.new_remaining = remaining;
    if cyc > 0 {
        let instr = ((cyc as f64 / r.cpi) as u64).min(remaining);
        st.new_remaining = remaining - instr;
        st.done = remaining == instr;
        st.instr = instr;
        st.flops = (instr as f64 * flop_frac) as u64;
        st.mem_ops = (instr as f64 * mem_frac) as u64;
        st.l1_misses = (instr as f64 * r.l1_mpi) as u64;
        st.llc_accesses = (instr as f64 * r.llc_api) as u64;
        st.llc_misses = (instr as f64 * r.llc_mpi) as u64;
    } else {
        st.done = st.new_overhead == 0 && remaining == 0;
    }
    st
}

impl SystemSim {
    /// Build a simulation of `spec` under `cfg`.
    pub fn new(cfg: SimConfig, spec: &WorkloadSpec) -> Self {
        cfg.machine.validate().expect("invalid machine config");
        let perf = PerfModel::with_params(cfg.machine.clone(), cfg.perf_params.clone());
        let mut sched = CfsScheduler::new(SchedConfig::from_machine(&cfg.machine));
        let mut rda_cfg =
            RdaConfig::for_machine(&cfg.machine, cfg.policy).with_demand_audit(cfg.demand_audit);
        if let Some(timeout) = cfg.waitlist_timeout {
            rda_cfg = rda_cfg.with_waitlist_timeout_cycles(timeout.cycles());
        }
        let mut rda = RdaExtension::new(rda_cfg);
        if let Some(tc) = cfg.trace {
            rda.install_trace(rda_trace::TraceSink::new(tc));
        }
        // The fault plan is a pure function of (jitter_seed, workload
        // shape, fault config), so faulty sweeps stay bit-identical
        // across thread counts just like clean ones.
        let faults = match &cfg.faults {
            Some(fc) => FaultPlan::generate(spec, fc, cfg.jitter_seed),
            None => FaultPlan::none(),
        };

        let mut procs = Vec::with_capacity(spec.processes.len());
        let mut threads = Vec::new();
        let mut profile_table: Vec<rda_machine::AccessProfile> = Vec::new();
        for (p, program) in spec.processes.iter().enumerate() {
            assert!(program.threads > 0, "process without threads");
            assert!(
                program.phases.iter().all(|ph| ph.instr_per_thread > 0),
                "phases must do work"
            );
            let mut tasks = Vec::with_capacity(program.threads);
            for _slot in 0..program.threads {
                let tid = sched.add_task(ProcessId(p as u32));
                assert_eq!(tid.0 as usize, threads.len());
                threads.push(Thread {
                    remaining: 0,
                    proc: p,
                    overhead: 0,
                });
                tasks.push(tid);
            }
            let profile_ids = program
                .phases
                .iter()
                .map(|ph| {
                    match profile_table
                        .iter()
                        .position(|q| rda_machine::profile_bits_eq(q, &ph.profile))
                    {
                        Some(i) => i as u32,
                        None => {
                            profile_table.push(ph.profile);
                            (profile_table.len() - 1) as u32
                        }
                    }
                })
                .collect();
            procs.push(Proc {
                program: program.clone(),
                profile_ids,
                phase: 0,
                pp: None,
                tasks,
                done_threads: 0,
                finished: false,
                finish_time: SimTime::ZERO,
            });
        }
        let cores = cfg.machine.cores;
        let next_rebalance = SimTime::ZERO + cfg.rebalance_every;
        let n_procs = procs.len();
        let mut sim = SystemSim {
            perf,
            sched,
            rda,
            procs,
            threads,
            now: SimTime::ZERO,
            counters: PerfCounters::new(),
            energy: EnergyBreakdown::new(),
            slice_end: vec![SimTime::ZERO; cores],
            last_on_core: vec![None; cores],
            next_rebalance,
            unfinished: spec.processes.len(),
            jitter: SplitMix64::new(cfg.jitter_seed),
            next_sample: cfg
                .sample_every
                .map_or(SimTime::MAX, |d| SimTime::ZERO + d),
            timeline: Vec::new(),
            faults,
            rda_calls: Vec::new(),
            scratch_running: Vec::new(),
            scratch_procs: Vec::new(),
            scratch_entries: Vec::new(),
            corun_rates: Vec::new(),
            corun_tags: Vec::new(),
            scratch_tags: Vec::new(),
            corun_cache: std::collections::HashMap::default(),
            corun_gen: 1,
            corun_gen_key: 0,
            checked_books_epoch: u64::MAX,
            scratch_done: Vec::new(),
            scratch_steps: Vec::new(),
            phase_ws: vec![0; n_procs],
            phase_tag: vec![0; n_procs],
            cfg,
        };
        for p in 0..sim.procs.len() {
            sim.enter_phase(p);
        }
        sim
    }

    /// Immutable access to the RDA extension (for assertions in tests).
    pub fn rda(&self) -> &RdaExtension {
        &self.rda
    }

    /// The recorded RDA call log, in call order (empty unless
    /// [`SimConfig::record_rda_calls`] was set).
    pub fn rda_calls(&self) -> &[RdaCall] {
        &self.rda_calls
    }

    fn record(&mut self, call: RdaCall) {
        if self.cfg.record_rda_calls {
            self.rda_calls.push(call);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn call_cost(&self, fast: bool) -> u64 {
        self.rda.call_cost_cycles(fast)
    }

    fn wake_proc(&mut self, p: usize) {
        self.corun_gen += 1;
        for i in 0..self.procs[p].tasks.len() {
            let tid = self.procs[p].tasks[i];
            // Only wake threads that still have work in this phase.
            if self.threads[tid.0 as usize].remaining > 0 || self.threads[tid.0 as usize].overhead > 0 {
                self.sched.wake(tid);
            }
        }
    }

    /// Start the current phase of process `p` (or finish the process).
    fn enter_phase(&mut self, p: usize) {
        self.corun_gen += 1;
        if self.procs[p].phase >= self.procs[p].program.phases.len() {
            self.finish_proc(p);
            return;
        }
        let phase = self.procs[p].program.phases[self.procs[p].phase].clone();
        for i in 0..self.procs[p].tasks.len() {
            let tid = self.procs[p].tasks[i];
            self.threads[tid.0 as usize].remaining = phase.instr_per_thread;
        }
        self.procs[p].done_threads = 0;
        self.phase_ws[p] = phase.profile.ws_bytes;
        self.phase_tag[p] = self.procs[p].profile_ids[self.procs[p].phase];

        let k = self.procs[p].phase;
        match &phase.pp {
            Some(pp) if self.cfg.policy.is_gating() => {
                let t0 = self.procs[p].tasks[0].0 as usize;
                // Demand lie: the declaration is scaled, the actual
                // cache profile (and therefore the machine model's
                // behaviour) is not.
                let factor = self.faults.phase(p, k).demand_factor;
                let demand = if factor == 1.0 {
                    pp.demand
                } else {
                    PpDemand {
                        amount: ((pp.demand.amount as f64 * factor) as u64).max(1),
                        ..pp.demand
                    }
                };
                self.record(RdaCall::Begin {
                    now: self.now,
                    process: ProcessId(p as u32),
                    site: pp.site,
                    demand,
                });
                let outcome = self
                    .rda
                    .pp_begin(ProcessId(p as u32), pp.site, demand, self.now);
                match outcome {
                    Err(_) => {
                        // The demand auditor refused to track the
                        // period (DemandAudit::Reject): the process
                        // runs directly on the OS, untracked — the
                        // paper's escape hatch.
                        self.threads[t0].overhead += self.call_cost(false);
                        self.wake_proc(p);
                    }
                    Ok(BeginOutcome::Bypass) => self.wake_proc(p),
                    Ok(BeginOutcome::Run { pp, fast }) => {
                        self.procs[p].pp = Some(pp);
                        self.threads[t0].overhead += self.call_cost(fast);
                        self.wake_proc(p);
                    }
                    Ok(BeginOutcome::Pause { pp, .. }) => {
                        // The process pauses on the kernel wait queue
                        // until a completing period releases capacity
                        // (§3.1). Its whole thread group stays blocked
                        // (§3.4's thread-pool rule).
                        self.procs[p].pp = Some(pp);
                        self.threads[t0].overhead += self.call_cost(false);
                        self.counters.waitlisted += 1;
                        // Mid-wait kill: the process dies while
                        // waitlisted; its entry must not outlive it.
                        if self.faults.kill_at(p) == Some(k) {
                            self.kill_proc(p);
                        }
                    }
                }
            }
            _ => self.wake_proc(p),
        }
    }

    fn finish_proc(&mut self, p: usize) {
        self.corun_gen += 1;
        debug_assert!(!self.procs[p].finished);
        self.procs[p].finished = true;
        self.procs[p].finish_time = self.now;
        for i in 0..self.procs[p].tasks.len() {
            let tid = self.procs[p].tasks[i];
            self.sched.finish(tid);
        }
        self.unfinished -= 1;
        // Exit-time reaping: release every period the process still
        // holds (leaked ends, mid-period kills, a waitlisted entry) and
        // wake anything the reclaimed capacity admits. A clean exit
        // holds nothing and this is a no-op.
        self.procs[p].pp = None;
        self.record(RdaCall::Exit {
            now: self.now,
            process: ProcessId(p as u32),
        });
        let resumed = self.rda.process_exit(ProcessId(p as u32), self.now);
        for (_pp, pid) in resumed {
            self.wake_proc(pid.0 as usize);
        }
    }

    /// Kill process `p` right now: no `pp_end`, no remaining phases —
    /// only the exit reaper in [`Self::finish_proc`] cleans up.
    fn kill_proc(&mut self, p: usize) {
        self.finish_proc(p);
    }

    /// A thread completed its phase quota: barrier-block it; when the
    /// last sibling arrives, close the phase.
    fn thread_done(&mut self, tid: TaskId) {
        self.corun_gen += 1;
        self.sched.block(tid);
        let p = self.threads[tid.0 as usize].proc;
        self.procs[p].done_threads += 1;
        if self.procs[p].done_threads == self.procs[p].tasks.len() {
            self.phase_end(p);
        }
    }

    fn phase_end(&mut self, p: usize) {
        let k = self.procs[p].phase;
        // Mid-period kill: the process dies at the end of its phase
        // work, holding its open period — it never reaches `pp_end`.
        if self.faults.kill_at(p) == Some(k) {
            self.kill_proc(p);
            return;
        }
        let fault = self.faults.phase(p, k);
        let resumed = if let Some(pp) = self.procs[p].pp.take() {
            if fault.leak_end {
                // Leaked end: the period stays in the registry (and its
                // demand in the load table) until process exit reclaims
                // it.
                Vec::new()
            } else {
                let t0 = self.procs[p].tasks[0].0 as usize;
                self.record(RdaCall::End { now: self.now, pp });
                let out = self
                    .rda
                    .pp_end(pp, self.now)
                    .expect("simulator bug: honest pp_end of a live period rejected");
                self.threads[t0].overhead += self.call_cost(out.fast);
                if fault.double_end {
                    // The buggy second end must come back as a typed
                    // rejection, leaving the books untouched.
                    self.record(RdaCall::End { now: self.now, pp });
                    let second = self.rda.pp_end(pp, self.now);
                    debug_assert_eq!(second, Err(rda_core::RdaError::DoubleEnd(pp)));
                    self.threads[t0].overhead += self.call_cost(false);
                }
                out.resumed
            }
        } else {
            Vec::new()
        };
        self.procs[p].phase += 1;
        self.enter_phase(p);
        for (_pp, pid) in resumed {
            let q = pid.0 as usize;
            debug_assert!(self.procs[q].pp.is_some(), "resumed process lost its period");
            self.wake_proc(q);
        }
    }

    fn current_profile(&self, p: usize) -> rda_machine::AccessProfile {
        self.procs[p].program.phases[self.procs[p].phase].profile
    }

    fn fill_cores(&mut self) {
        let cores = self.cfg.machine.cores;
        for core in 0..cores {
            if self.sched.running_on(core).is_some() {
                continue;
            }
            if self.sched.queue_len(core) == 0 {
                self.sched.idle_steal(core);
            }
            if let Some(tid) = self.sched.pick_next(core) {
                self.corun_gen += 1;
                self.on_switch_in(core, tid);
                let slice = self.jittered_slice(core);
                self.slice_end[core] = self.now + SimDuration::from_cycles(slice);
            }
        }
    }

    /// Timeslice for `core` with ±15 % deterministic jitter.
    fn jittered_slice(&mut self, core: usize) -> u64 {
        let base = self.sched.timeslice(core);
        let r = self.jitter.next_f64(); // [0, 1)
        ((base as f64) * (0.85 + 0.30 * r)) as u64
    }

    fn on_switch_in(&mut self, core: usize, tid: TaskId) {
        if self.last_on_core[core] != Some(tid) {
            self.counters.context_switches += 1;
            let p = self.threads[tid.0 as usize].proc;
            let ws = self.current_profile(p).ws_bytes;
            self.threads[tid.0 as usize].overhead += self.cfg.machine.context_switch_cycles
                + self.perf.switch_warmup_cycles(ws);
        }
        self.last_on_core[core] = Some(tid);
    }

    /// The earliest instant at which a waitlisted period expires (only
    /// when aging is configured and something is waiting).
    fn aging_deadline(&self) -> Option<SimTime> {
        let timeout = self.cfg.waitlist_timeout?;
        let mut best: Option<SimTime> = None;
        for r in rda_core::Resource::ALL {
            if let Some(enqueued) = self.rda.oldest_wait(r) {
                let deadline = enqueued + timeout;
                best = Some(best.map_or(deadline, |b: SimTime| b.min(deadline)));
            }
        }
        best
    }

    /// Force-admit expired waitlist entries and wake their processes.
    fn apply_aging(&mut self) {
        if self.cfg.waitlist_timeout.is_none() {
            return;
        }
        let out = self.rda.age_waitlist(self.now);
        // SystemSim never configures overload deadlines, so nothing can
        // expire here; the traffic engine owns that path.
        debug_assert!(out.expired.is_empty(), "deadline expiry without overload");
        if !out.resumed.is_empty() {
            // No-op ticks are state-neutral, so only ticks that
            // admitted something need replaying.
            self.record(RdaCall::Age { now: self.now });
        }
        for (_pp, pid) in out.resumed {
            self.wake_proc(pid.0 as usize);
        }
    }

    /// Record an LLC occupancy sample into the trace sink, one per
    /// simulated tick (no-op when tracing is off — the reads below are
    /// never even issued).
    fn sample_occupancy(&mut self, busy_cores: usize) {
        if self.rda.trace().is_none() {
            return;
        }
        let sample = rda_trace::OccupancySample {
            t_cycles: self.now.cycles(),
            node: 0,
            usage: self.rda.usage(rda_core::Resource::Llc),
            overflow: self.rda.overflow_usage(rda_core::Resource::Llc),
            waitlisted: self.rda.waitlist_len(rda_core::Resource::Llc) as u32,
            busy_cores: busy_cores as u32,
        };
        if let Some(sink) = self.rda.trace_mut() {
            sink.record_occupancy(sample);
        }
    }

    fn take_sample(&mut self) {
        let running: Vec<TaskId> = self.sched.running_tasks().map(|(_, t)| t).collect();
        let mut seen: Vec<usize> = Vec::new();
        let mut pressure = 0u64;
        for tid in &running {
            let p = self.threads[tid.0 as usize].proc;
            if !self.procs[p].finished && !seen.contains(&p) {
                seen.push(p);
                pressure += self.current_profile(p).ws_bytes;
            }
        }
        self.timeline.push(TimelineSample {
            t_secs: self.now.as_secs(self.cfg.machine.freq_hz),
            busy_cores: running.len(),
            active_threads: self.sched.active_tasks().count(),
            running_pressure_bytes: pressure,
            admitted_demand_bytes: self.rda.usage(rda_core::Resource::Llc),
            waitlisted: self.rda.waitlist_len(rda_core::Resource::Llc),
        });
    }

    /// Execute the workload to completion.
    pub fn run(&mut self) -> Result<RunResult, String> {
        let freq = self.cfg.machine.freq_hz;
        let max_cycles = (self.cfg.max_sim_seconds * freq) as u64;
        while self.unfinished > 0 {
            if self.now.cycles() > max_cycles {
                return Err(format!(
                    "simulation exceeded {} s — deadlock or runaway workload",
                    self.cfg.max_sim_seconds
                ));
            }
            self.fill_cores();
            let mut running = std::mem::take(&mut self.scratch_running);
            running.clear();
            running.extend(self.sched.running_tasks());
            if running.is_empty() {
                self.scratch_running = running;
                // Every unfinished process is paused on a waitlist. The
                // paper's design would deadlock here; with aging the
                // machine sits idle until the oldest entry expires and
                // is force-admitted.
                let Some(deadline) = self.aging_deadline() else {
                    return Err("no runnable threads: scheduling deadlock".into());
                };
                if deadline > self.now {
                    self.now = deadline;
                }
                self.apply_aging();
                self.sample_occupancy(0);
                if self.cfg.paranoid && self.rda.books_epoch() != self.checked_books_epoch {
                    self.rda
                        .check_invariants()
                        .map_err(|e| format!("RDA invariant violated: {e}"))?;
                    self.checked_books_epoch = self.rda.books_epoch();
                }
                continue;
            }

            // --- rates for the co-running set ---
            // A running thread's `(profile, share)` solver entry is a
            // pure function of its position's *profile identity* (the
            // dedup table id of its process's current phase profile)
            // plus the distinct running processes' total working set.
            // So the co-run configuration is keyed by the profile-id
            // vector of the running set, in running order, with
            // `total_ws` appended — and increasingly cheap levels
            // decide the rates:
            //   1. `corun_gen` unchanged since the last update — no
            //      scheduler or phase mutation happened, the key is
            //      provably identical, nothing to do;
            //   2. key rebuilt and equal to the previous vector —
            //      reuse `corun_rates` verbatim;
            //   3. key hits the solve cache — copy the cached rates
            //      (the solver is a pure function of the entries, so
            //      the copy is bit-identical to a fresh solve);
            //   4. full entry rebuild + solve, result cached.
            // None of these levels can move a digest: every path yields
            // the exact bits a per-interval fresh solve would.
            if self.corun_gen != self.corun_gen_key {
                self.corun_gen_key = self.corun_gen;
                // LLC pressure: distinct processes with at least one
                // thread on-CPU compete for capacity.
                self.scratch_procs.clear();
                self.scratch_tags.clear();
                let mut total_ws: u64 = 0;
                for &(_, tid) in &running {
                    let p = self.threads[tid.0 as usize].proc;
                    self.scratch_tags.push(self.phase_tag[p] as u64);
                    if !self.scratch_procs.contains(&p) {
                        self.scratch_procs.push(p);
                        total_ws += self.phase_ws[p];
                    }
                }
                self.scratch_tags.push(total_ws);
                if self.scratch_tags != self.corun_tags {
                    if let Some(hit) = self.corun_cache.get(&self.scratch_tags) {
                        self.corun_rates.clear();
                        self.corun_rates.extend_from_slice(hit);
                    } else {
                        self.scratch_entries.clear();
                        for &(_, tid) in &running {
                            let p = self.threads[tid.0 as usize].proc;
                            let prof = self.current_profile(p);
                            let share = self.perf.llc_share(prof.ws_bytes, total_ws);
                            self.scratch_entries.push((prof, share));
                        }
                        self.perf
                            .solve_corun_into(&self.scratch_entries, &mut self.corun_rates);
                        self.corun_cache
                            .insert(self.scratch_tags.clone(), self.corun_rates.clone());
                    }
                    std::mem::swap(&mut self.corun_tags, &mut self.scratch_tags);
                }
            }
            #[cfg(debug_assertions)]
            {
                // Soundness backstop for the tag memo and generation
                // skip: re-derive the entries from first principles and
                // demand a fresh solve agree bit-for-bit with whatever
                // the fast levels left in `corun_rates`.
                let mut total_ws: u64 = 0;
                let mut seen: Vec<usize> = Vec::new();
                for &(_, tid) in &running {
                    let p = self.threads[tid.0 as usize].proc;
                    if !seen.contains(&p) {
                        seen.push(p);
                        total_ws += self.current_profile(p).ws_bytes;
                    }
                }
                let entries: Vec<(rda_machine::AccessProfile, u64)> = running
                    .iter()
                    .map(|&(_, tid)| {
                        let p = self.threads[tid.0 as usize].proc;
                        let prof = self.current_profile(p);
                        let share = self.perf.llc_share(prof.ws_bytes, total_ws);
                        (prof, share)
                    })
                    .collect();
                let mut fresh = Vec::new();
                self.perf.solve_corun_into(&entries, &mut fresh);
                assert_eq!(fresh.len(), self.corun_rates.len(), "corun memo length drift");
                for (i, (a, b)) in fresh.iter().zip(&self.corun_rates).enumerate() {
                    assert!(
                        a.cpi.to_bits() == b.cpi.to_bits()
                            && a.l1_mpi.to_bits() == b.l1_mpi.to_bits()
                            && a.llc_api.to_bits() == b.llc_api.to_bits()
                            && a.llc_mpi.to_bits() == b.llc_mpi.to_bits()
                            && a.dram_bpi.to_bits() == b.dram_bpi.to_bits(),
                        "corun memo was unsound at entry {i}"
                    );
                }
            }
            // --- horizon: next event distance in cycles ---
            let mut dt = self.next_rebalance.since(self.now).cycles().max(1);
            if self.next_sample != SimTime::MAX {
                dt = dt.min(self.next_sample.since(self.now).cycles().max(1));
            }
            if let Some(deadline) = self.aging_deadline() {
                dt = dt.min(deadline.since(self.now).cycles().max(1));
            }
            // Earliest slice expiry among busy cores: nothing lands on
            // a core mid-interval (wakes only enqueue; `fill_cores`
            // runs at interval start), so the per-core expiry walk
            // below can be skipped entirely while `now` stays short of
            // this bound.
            let mut min_slice = SimTime::MAX;
            for (i, &(core, tid)) in running.iter().enumerate() {
                let th = &self.threads[tid.0 as usize];
                let finish = th.overhead + (th.remaining as f64 * self.corun_rates[i].cpi).ceil() as u64;
                dt = dt.min(finish.max(1));
                dt = dt.min(self.slice_end[core].since(self.now).cycles().max(1));
                min_slice = min_slice.min(self.slice_end[core]);
            }

            // --- advance all running threads by dt ---
            // Completion detection happens inline (the finished set is
            // replayed after the loop, in the same order a separate
            // scan would visit it), but `thread_done` itself must wait:
            // its wakes place tasks by a queue's *post-charge*
            // min-vruntime, so every charge must land first.
            self.scratch_done.clear();
            let mut delta = PerfCounters::new();
            // Compute pass: each step reads only pre-interval state, so
            // the order of evaluation is irrelevant. With
            // `interior_shards > 1` the index range is chunked across
            // scoped OS threads; the arithmetic is the same pure
            // function either way, so the results — and therefore every
            // digest downstream — are bit-identical for any shard count.
            let mut steps = std::mem::take(&mut self.scratch_steps);
            steps.clear();
            steps.resize(running.len(), AdvanceStep::default());
            {
                let threads = &self.threads;
                let procs = &self.procs;
                let rates = &self.corun_rates;
                let running = &running[..];
                let compute = |offset: usize, out: &mut [AdvanceStep]| {
                    for (k, slot) in out.iter_mut().enumerate() {
                        let i = offset + k;
                        let th = &threads[running[i].1 .0 as usize];
                        let p = th.proc;
                        let prof = procs[p].program.phases[procs[p].phase].profile;
                        *slot = advance_step(
                            th.overhead,
                            th.remaining,
                            prof.flop_frac,
                            prof.mem_frac,
                            rates[i],
                            dt,
                        );
                    }
                };
                let shards = self.cfg.interior_shards.max(1).min(running.len().max(1));
                if shards > 1 {
                    let chunk = running.len().div_ceil(shards);
                    std::thread::scope(|s| {
                        for (ci, out) in steps.chunks_mut(chunk).enumerate() {
                            let compute = &compute;
                            s.spawn(move || compute(ci * chunk, out));
                        }
                    });
                } else {
                    compute(0, &mut steps);
                }
            }
            // Apply pass: strictly serial, in `running` order — the
            // scheduler charge and done-replay order are part of the
            // deterministic contract.
            for (i, &(core, tid)) in running.iter().enumerate() {
                let st = steps[i];
                let th = &mut self.threads[tid.0 as usize];
                th.overhead = st.new_overhead;
                th.remaining = st.new_remaining;
                delta.instructions += st.instr;
                delta.flops += st.flops;
                delta.mem_ops += st.mem_ops;
                delta.l1_misses += st.l1_misses;
                delta.llc_accesses += st.llc_accesses;
                delta.llc_misses += st.llc_misses;
                delta.cycles += dt;
                self.sched.charge(core, dt);
                if st.done {
                    self.scratch_done.push(tid);
                }
            }
            self.scratch_steps = steps;
            let wall = dt as f64 / freq;
            let busy = running.len() as f64 * wall;
            self.energy += self.cfg.energy.interval_energy(wall, busy, &delta);
            self.counters += delta;
            self.now += SimDuration::from_cycles(dt);

            // --- events ---
            for k in 0..self.scratch_done.len() {
                let tid = self.scratch_done[k];
                self.thread_done(tid);
            }
            if self.now >= min_slice {
                for core in 0..self.cfg.machine.cores {
                    let Some(tid) = self.sched.running_on(core) else {
                        continue;
                    };
                    if self.now >= self.slice_end[core] {
                        if self.sched.queue_len(core) > 0 {
                            self.corun_gen += 1;
                            self.sched.yield_current(core);
                            if let Some(next) = self.sched.pick_next(core) {
                                self.on_switch_in(core, next);
                            }
                        }
                        let slice = self.jittered_slice(core);
                        self.slice_end[core] = self.now + SimDuration::from_cycles(slice);
                        let _ = tid;
                    }
                }
            }
            if self.now >= self.next_rebalance {
                self.corun_gen += 1;
                self.sched.rebalance();
                self.next_rebalance = self.now + self.cfg.rebalance_every;
            }
            if self.now >= self.next_sample {
                self.take_sample();
                // `next_sample` is finite only when sampling is on.
                self.next_sample = self.now + self.cfg.sample_every.unwrap();
            }
            self.apply_aging();
            self.sample_occupancy(running.len());
            self.scratch_running = running;
            if self.cfg.paranoid && self.rda.books_epoch() != self.checked_books_epoch {
                self.rda
                    .check_invariants()
                    .map_err(|e| format!("RDA invariant violated: {e}"))?;
                self.checked_books_epoch = self.rda.books_epoch();
            }
        }

        // Mirror extension activity into the perf counters.
        let rs = self.rda.stats();
        self.counters.pp_begins = rs.begins;
        self.counters.pp_ends = rs.ends;
        self.counters.fastpath_hits = rs.fast_begins + rs.fast_ends;
        self.counters.waitlisted = rs.paused;
        self.counters.migrations = self.sched.stats().migrations;

        self.rda
            .check_invariants()
            .map_err(|e| format!("RDA invariant violated: {e}"))?;

        Ok(RunResult {
            measurement: Measurement {
                counters: self.counters,
                energy: self.energy,
                wall_secs: self.now.as_secs(freq),
            },
            rda: rs,
            sched: self.sched.stats(),
            finish_secs: self
                .procs
                .iter()
                .map(|p| p.finish_time.as_secs(freq))
                .collect(),
            timeline: std::mem::take(&mut self.timeline),
            trace: self.rda.take_trace().map(|s| s.into_report()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::mb;
    use rda_machine::ReuseLevel;
    use rda_workloads::Phase;

    fn tiny_workload(procs: usize, threads: usize, ws_mb: f64, instr: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: "tiny".into(),
            processes: (0..procs)
                .map(|_| ProcessProgram {
                    threads,
                    phases: vec![Phase::tracked(
                        "work",
                        instr,
                        mb(ws_mb),
                        ReuseLevel::High,
                        rda_core::SiteId(0),
                    )],
                })
                .collect(),
        }
    }

    fn run(policy: rda_core::PolicyKind, spec: &WorkloadSpec) -> RunResult {
        let mut sim = SystemSim::new(SimConfig::paper_default(policy), spec);
        sim.run().expect("simulation must complete")
    }

    #[test]
    fn single_process_completes_and_measures() {
        let spec = tiny_workload(1, 1, 2.0, 50_000_000);
        let r = run(rda_core::PolicyKind::DefaultOnly, &spec);
        assert!(r.measurement.wall_secs > 0.0);
        assert!(r.measurement.counters.instructions >= 50_000_000);
        assert!(r.measurement.gflops() > 0.0);
        assert!(r.measurement.system_joules() > 0.0);
        assert_eq!(r.finish_secs.len(), 1);
    }

    #[test]
    fn all_instructions_are_retired_exactly() {
        let spec = tiny_workload(3, 2, 1.0, 10_000_000);
        let r = run(rda_core::PolicyKind::Strict, &spec);
        // 3 procs × 2 threads × 10M instructions of work; overhead
        // cycles are not instructions, so the counter matches exactly.
        assert_eq!(r.measurement.counters.instructions, 60_000_000);
    }

    #[test]
    fn strict_policy_limits_admissions() {
        // 6 procs of 6 MB on a 15 MB LLC: at most 2 admitted at once.
        let spec = tiny_workload(6, 1, 6.0, 20_000_000);
        let r = run(rda_core::PolicyKind::Strict, &spec);
        assert!(r.rda.paused >= 4, "paused {}", r.rda.paused);
        assert_eq!(r.rda.begins, 6);
        assert_eq!(r.rda.ends, 6);
        assert_eq!(r.rda.resumed as i64, r.rda.paused as i64);
    }

    #[test]
    fn default_policy_never_pauses() {
        let spec = tiny_workload(6, 1, 6.0, 20_000_000);
        let r = run(rda_core::PolicyKind::DefaultOnly, &spec);
        assert_eq!(r.rda.begins, 0, "DefaultOnly bypasses tracking");
        assert_eq!(r.measurement.counters.waitlisted, 0);
    }

    #[test]
    fn compromise_admits_more_than_strict() {
        let spec = tiny_workload(8, 1, 6.0, 20_000_000);
        let strict = run(rda_core::PolicyKind::Strict, &spec);
        let comp = run(rda_core::PolicyKind::compromise_default(), &spec);
        assert!(
            comp.rda.paused < strict.rda.paused,
            "compromise {} vs strict {}",
            comp.rda.paused,
            strict.rda.paused
        );
    }

    #[test]
    fn interior_sharding_is_bit_identical() {
        // The advance compute is a pure per-thread function, so any
        // shard count must reproduce the serial run exactly — digest
        // equality over counters, energy, wall-clock, RDA stats, finish
        // times and the sampled timeline.
        let spec = tiny_workload(6, 2, 5.0, 15_000_000);
        let cfg = || SimConfig::paper_default(rda_core::PolicyKind::Strict).with_sampling_ms(5.0);
        let base = SystemSim::new(cfg(), &spec)
            .run()
            .expect("serial run completes");
        for shards in [2, 3, 7, 64] {
            let r = SystemSim::new(cfg().with_interior_shards(shards), &spec)
                .run()
                .expect("sharded run completes");
            assert_eq!(base.digest(), r.digest(), "digest drift at shards={shards}");
            assert_eq!(base.measurement.counters, r.measurement.counters);
        }
    }

    #[test]
    fn thrashing_coschedule_is_slower_than_gated() {
        // Raytrace-shaped: 12 procs × 4 threads × 6 MB high reuse.
        // Default co-runs ~12 distinct processes' working sets (72 MB
        // on a 15 MB LLC, deep thrash); strict admits 2 processes =
        // 8 threads, trading a third of the cores for full cache
        // residency — and wins on both time and energy.
        let spec = tiny_workload(12, 4, 6.0, 100_000_000);
        let default = run(rda_core::PolicyKind::DefaultOnly, &spec);
        let strict = run(rda_core::PolicyKind::Strict, &spec);
        assert!(
            strict.measurement.wall_secs < default.measurement.wall_secs,
            "strict {} vs default {}",
            strict.measurement.wall_secs,
            default.measurement.wall_secs
        );
        // And consumes less energy.
        assert!(strict.measurement.system_joules() < default.measurement.system_joules());
        // Because it misses less.
        assert!(
            strict.measurement.counters.llc_misses < default.measurement.counters.llc_misses
        );
    }

    #[test]
    fn multi_phase_barriers_wake_all_threads() {
        let spec = WorkloadSpec {
            name: "phased".into(),
            processes: vec![ProcessProgram {
                threads: 4,
                phases: vec![
                    Phase::tracked("a", 5_000_000, mb(1.0), ReuseLevel::High, rda_core::SiteId(0)),
                    Phase::untracked("sync", 100_000, mb(0.1), ReuseLevel::Low),
                    Phase::tracked("b", 5_000_000, mb(2.0), ReuseLevel::Medium, rda_core::SiteId(1)),
                ],
            }],
        };
        let r = run(rda_core::PolicyKind::Strict, &spec);
        assert_eq!(r.rda.begins, 2, "two tracked phases");
        assert_eq!(r.rda.ends, 2);
        // 4 threads × (5M + 0.1M + 5M).
        assert_eq!(r.measurement.counters.instructions, 4 * 10_100_000);
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = tiny_workload(5, 2, 3.0, 15_000_000);
        let a = run(rda_core::PolicyKind::Strict, &spec);
        let b = run(rda_core::PolicyKind::Strict, &spec);
        assert_eq!(a.measurement.wall_secs, b.measurement.wall_secs);
        assert_eq!(a.measurement.counters, b.measurement.counters);
    }

    #[test]
    fn more_cores_do_not_slow_a_parallel_workload() {
        let spec = tiny_workload(4, 1, 1.0, 20_000_000);
        let mut small = SimConfig::paper_default(rda_core::PolicyKind::DefaultOnly);
        small.machine = rda_machine::MachineConfig::small_test();
        let r_small = SystemSim::new(small, &spec).run().unwrap();
        let r_big = run(rda_core::PolicyKind::DefaultOnly, &spec);
        assert!(r_big.measurement.wall_secs <= r_small.measurement.wall_secs * 1.05);
    }

    #[test]
    fn timeline_sampling_observes_the_policy_ceiling() {
        // 8 × 4 MB tracked processes under strict: the sampled admitted
        // demand must never exceed the LLC, and the waitlist must be
        // visibly non-empty early in the run.
        let spec = tiny_workload(8, 1, 4.0, 30_000_000);
        let cfg = SimConfig::paper_default(rda_core::PolicyKind::Strict).with_sampling_ms(1.0);
        let llc = cfg.machine.llc_bytes;
        let r = SystemSim::new(cfg, &spec).run().unwrap();
        assert!(r.timeline.len() > 5, "samples: {}", r.timeline.len());
        for s in &r.timeline {
            assert!(
                s.admitted_demand_bytes <= llc,
                "strict ceiling violated at t={}: {} B",
                s.t_secs,
                s.admitted_demand_bytes
            );
            assert!(s.running_pressure_bytes <= s.admitted_demand_bytes);
            assert!(s.busy_cores <= 12);
        }
        assert!(r.timeline.iter().any(|s| s.waitlisted > 0));
        let util = r.mean_utilization(12);
        assert!(util > 0.0 && util <= 1.0, "utilization {util}");
    }

    #[test]
    fn timeline_empty_without_sampling() {
        let spec = tiny_workload(2, 1, 1.0, 5_000_000);
        let r = run(rda_core::PolicyKind::Strict, &spec);
        assert!(r.timeline.is_empty());
        assert!(r.mean_utilization(12).is_nan());
    }

    #[test]
    fn finish_spread_measures_fairness() {
        let spec = tiny_workload(6, 1, 1.0, 10_000_000);
        let r = run(rda_core::PolicyKind::DefaultOnly, &spec);
        let spread = r.finish_spread();
        // Identical processes under a fair scheduler finish within a
        // modest spread of each other.
        assert!((1.0..2.0).contains(&spread), "spread {spread}");
    }

    #[test]
    fn oversized_working_set_does_not_deadlock() {
        let spec = tiny_workload(2, 1, 40.0, 10_000_000); // 40 MB > LLC
        let r = run(rda_core::PolicyKind::Strict, &spec);
        assert_eq!(r.rda.oversized_admits, 2);
        assert!(r.measurement.wall_secs > 0.0);
    }

    // --- fault model ---

    use crate::faults::FaultConfig;

    fn faulty_cfg(rate: f64) -> SimConfig {
        SimConfig::paper_default(rda_core::PolicyKind::Strict)
            .with_demand_audit(rda_core::DemandAudit::Clamp)
            .with_waitlist_timeout_ms(5.0)
            .with_faults(FaultConfig::uniform(rate))
    }

    /// Run a faulty workload and assert full recovery: the run
    /// completes, and at the end both accounting buckets are empty on
    /// both resources, the waitlists are empty, and no period outlives
    /// its process.
    fn assert_recovers(cfg: SimConfig, spec: &WorkloadSpec) -> RunResult {
        let mut sim = SystemSim::new(cfg, spec);
        let r = sim.run().expect("faulty run must still complete");
        for res in rda_core::Resource::ALL {
            assert_eq!(sim.rda().usage(res), 0, "{res}: nominal demand leaked");
            assert_eq!(sim.rda().overflow_usage(res), 0, "{res}: overflow leaked");
            assert_eq!(sim.rda().waitlist_len(res), 0, "{res}: waiter leaked");
        }
        assert_eq!(sim.rda().live_periods(), 0, "period outlived its process");
        r
    }

    #[test]
    fn leaked_ends_are_reclaimed_at_exit() {
        let spec = tiny_workload(6, 1, 6.0, 10_000_000);
        let mut cfg = faulty_cfg(0.0);
        cfg.faults = Some(FaultConfig {
            leak_end_rate: 1.0, // every phase leaks its end
            ..FaultConfig::none()
        });
        let r = assert_recovers(cfg, &spec);
        assert_eq!(r.rda.ends, 0, "every end was leaked");
        assert_eq!(r.rda.reclaimed, 6, "one reclaim per leaked period");
    }

    #[test]
    fn double_ends_are_rejected_not_double_released() {
        let spec = tiny_workload(6, 1, 6.0, 10_000_000);
        let mut cfg = faulty_cfg(0.0);
        cfg.faults = Some(FaultConfig {
            double_end_rate: 1.0,
            ..FaultConfig::none()
        });
        let r = assert_recovers(cfg, &spec);
        assert_eq!(r.rda.rejected_ends, 6, "each second end typed-rejected");
        assert_eq!(r.rda.ends, 12, "six honest + six buggy calls");
    }

    #[test]
    fn kills_release_held_periods() {
        let spec = tiny_workload(8, 2, 6.0, 10_000_000);
        let mut cfg = faulty_cfg(0.0);
        cfg.faults = Some(FaultConfig {
            kill_rate: 0.5,
            ..FaultConfig::none()
        });
        let r = assert_recovers(cfg, &spec);
        assert!(r.rda.reclaimed > 0, "some process died holding a period");
    }

    #[test]
    fn lying_demands_are_clamped_under_audit() {
        let spec = tiny_workload(6, 1, 6.0, 10_000_000);
        let mut cfg = faulty_cfg(0.0);
        cfg.faults = Some(FaultConfig {
            lie_rate: 1.0,
            lie_factor_range: (10.0, 20.0), // wild over-declaration
            ..FaultConfig::none()
        });
        let r = assert_recovers(cfg, &spec);
        assert_eq!(r.rda.clamped, 6, "every inflated demand clamped");
        assert_eq!(r.rda.oversized_admits, 0, "clamp pre-empts the guard");
    }

    #[test]
    fn combined_faults_recover_under_every_gating_policy() {
        let spec = tiny_workload(8, 2, 5.0, 8_000_000);
        for policy in [
            rda_core::PolicyKind::Strict,
            rda_core::PolicyKind::compromise_default(),
        ] {
            let cfg = SimConfig::paper_default(policy)
                .with_demand_audit(rda_core::DemandAudit::Clamp)
                .with_waitlist_timeout_ms(5.0)
                .with_faults(FaultConfig::uniform(0.3));
            assert_recovers(cfg, &spec);
        }
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let spec = tiny_workload(8, 2, 5.0, 8_000_000);
        let a = SystemSim::new(faulty_cfg(0.25), &spec).run().unwrap();
        let b = SystemSim::new(faulty_cfg(0.25), &spec).run().unwrap();
        assert_eq!(a.digest(), b.digest());
        // A different seed produces a different fault plan.
        let c = SystemSim::new(faulty_cfg(0.25).with_jitter_seed(99), &spec)
            .run()
            .unwrap();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn aging_rescues_an_otherwise_deadlocked_workload() {
        // One process leaks its period (holding 14 of 15 MB) and then a
        // second 14 MB process arrives: it can never be admitted
        // nominally while the leaker lives. Without aging this
        // deadlocks; with it, the waiter is force-admitted.
        let spec = WorkloadSpec {
            name: "leak-deadlock".into(),
            processes: vec![
                ProcessProgram {
                    threads: 1,
                    phases: vec![
                        Phase::tracked(
                            "leaky",
                            40_000_000,
                            mb(14.0),
                            ReuseLevel::High,
                            rda_core::SiteId(0),
                        ),
                        Phase::tracked(
                            "more",
                            40_000_000,
                            mb(14.0),
                            ReuseLevel::High,
                            rda_core::SiteId(1),
                        ),
                    ],
                },
                ProcessProgram {
                    threads: 1,
                    phases: vec![Phase::tracked(
                        "victim",
                        10_000_000,
                        mb(14.0),
                        ReuseLevel::High,
                        rda_core::SiteId(2),
                    )],
                },
            ],
        };
        // Every phase leaks its end: process 0 leaks 14 MB, then
        // waitlists itself behind its own leak for phase two, and the
        // victim waitlists behind both — nothing is runnable until
        // aging fires.
        let cfg = SimConfig::paper_default(rda_core::PolicyKind::Strict)
            .with_waitlist_timeout_ms(2.0)
            .with_faults(FaultConfig {
                leak_end_rate: 1.0,
                ..FaultConfig::none()
            });
        let mut sim = SystemSim::new(cfg, &spec);
        let r = sim.run().expect("aging must break the leak deadlock");
        assert!(
            r.rda.aged_admissions > 0,
            "the waiter was rescued by aging"
        );
        assert_eq!(sim.rda().live_periods(), 0);
        assert_eq!(sim.rda().usage(rda_core::Resource::Llc), 0);
        assert_eq!(sim.rda().overflow_usage(rda_core::Resource::Llc), 0);
    }

    #[test]
    fn tracing_is_digest_neutral_and_reports_activity() {
        let spec = tiny_workload(6, 1, 6.0, 10_000_000);
        let plain = run(rda_core::PolicyKind::Strict, &spec);
        assert!(plain.trace.is_none(), "tracing is opt-in");
        let traced = SystemSim::new(
            SimConfig::paper_default(rda_core::PolicyKind::Strict).with_trace(),
            &spec,
        )
        .run()
        .unwrap();
        assert_eq!(
            plain.digest(),
            traced.digest(),
            "enabling tracing must not change scheduling behaviour"
        );
        let report = traced.trace.expect("trace enabled");
        assert_eq!(report.counts.begins, traced.rda.begins);
        assert_eq!(
            report.counts.fast_admits + report.counts.slow_admits,
            traced.rda.admitted
        );
        assert_eq!(report.counts.pauses, traced.rda.paused);
        assert_eq!(report.counts.resumes, traced.rda.resumed);
        assert_eq!(report.wait.samples, traced.rda.resumed);
        assert!(report.wait.max > 0, "contended run must show real waits");
        assert!(!report.occupancy.is_empty(), "per-tick occupancy sampled");
        let llc = SimConfig::paper_default(rda_core::PolicyKind::Strict)
            .machine
            .llc_bytes;
        for s in &report.occupancy {
            assert!(s.usage <= llc, "strict keeps nominal usage under the LLC");
        }
    }

    #[test]
    fn faulty_traced_runs_record_rejects_and_exits() {
        let spec = tiny_workload(8, 2, 5.0, 8_000_000);
        let mut cfg = faulty_cfg(0.3).with_trace();
        cfg.faults = Some(FaultConfig {
            double_end_rate: 1.0,
            kill_rate: 0.5,
            ..FaultConfig::none()
        });
        let plain_digest = {
            let mut c = cfg.clone();
            c.trace = None;
            SystemSim::new(c, &spec).run().unwrap().digest()
        };
        let traced = SystemSim::new(cfg, &spec).run().unwrap();
        assert_eq!(plain_digest, traced.digest());
        let report = traced.trace.expect("trace enabled");
        assert_eq!(report.counts.rejects, traced.rda.rejected_ends);
        assert!(report.counts.rejects > 0, "double ends must be visible");
        assert_eq!(report.counts.exits as usize, spec.processes.len());
    }

    #[test]
    fn clean_runs_are_unaffected_by_the_fault_machinery() {
        // A fault config with all-zero rates must reproduce the exact
        // digest of a run with no fault config at all.
        let spec = tiny_workload(6, 2, 4.0, 10_000_000);
        let plain = SystemSim::new(
            SimConfig::paper_default(rda_core::PolicyKind::Strict),
            &spec,
        )
        .run()
        .unwrap();
        let zeroed = SystemSim::new(
            SimConfig::paper_default(rda_core::PolicyKind::Strict)
                .with_faults(FaultConfig::none()),
            &spec,
        )
        .run()
        .unwrap();
        assert_eq!(plain.digest(), zeroed.digest());
    }
}
