//! Parallel deterministic experiment engine.
//!
//! The paper's evaluation is a sweep: every workload × policy (×
//! replicate) cell is one independent [`SystemSim`] execution. This
//! module shards that grid across a work-stealing thread pool while
//! guaranteeing that **the sweep's results are a pure function of
//! (grid, root seed)** — never of thread count, scheduling order, or
//! completion order:
//!
//! * each cell's RNG stream is derived from the root seed and the
//!   cell's *grid index* via [`SplitMix64::derive_stream`] — no RNG
//!   state is shared between runs;
//! * results are written into per-cell slots and read back in grid
//!   order, so aggregation never observes completion order;
//! * a panicking or failing run becomes a structured [`RunError`] in
//!   its slot instead of poisoning the pool — the remaining cells
//!   still complete.
//!
//! [`SweepResult::digest`] folds every run's [`RunResult::digest`]
//! into one value; the test suite pins serial == 8-thread digests, so
//! determinism is a checked property, not an aspiration.

use crate::config::SimConfig;
use crate::experiment::PolicyRun;
use crate::system::{RunResult, SystemSim};
use rda_core::PolicyKind;
use rda_simcore::{Fnv1a64, SplitMix64};
use rda_workloads::WorkloadSpec;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// One cell of the sweep grid.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The workload to execute.
    pub workload: WorkloadSpec,
    /// The policy to execute it under.
    pub policy: PolicyKind,
    /// Replicate number (varies only the derived RNG stream).
    pub replicate: u64,
}

/// The full configuration grid, in the deterministic order that
/// defines every cell's RNG stream and its place in the aggregate.
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    cells: Vec<RunConfig>,
}

impl SweepGrid {
    /// Empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cross product `workloads × policies × replicates`, in
    /// workload-major order (matching the paper's figure layout).
    pub fn cross(workloads: &[WorkloadSpec], policies: &[PolicyKind], replicates: u64) -> Self {
        assert!(replicates > 0, "at least one replicate per cell");
        let mut cells = Vec::with_capacity(workloads.len() * policies.len());
        for workload in workloads {
            for &policy in policies {
                for replicate in 0..replicates {
                    cells.push(RunConfig {
                        workload: workload.clone(),
                        policy,
                        replicate,
                    });
                }
            }
        }
        SweepGrid { cells }
    }

    /// Append one cell.
    pub fn push(&mut self, cell: RunConfig) {
        self.cells.push(cell);
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells in grid order.
    pub fn cells(&self) -> &[RunConfig] {
        &self.cells
    }
}

/// A `1/count` slice of the grid for distributing a sweep across
/// processes or machines. Cell *global* indices are preserved, so the
/// union of all shards is bit-identical to one unsharded sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index in `0..count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parse `"i/m"` (e.g. `"0/4"`).
    pub fn parse(s: &str) -> Result<Shard, String> {
        let (i, m) = s
            .split_once('/')
            .ok_or_else(|| format!("shard must be 'index/count', got '{s}'"))?;
        let index: usize = i.parse().map_err(|_| format!("bad shard index '{i}'"))?;
        let count: usize = m.parse().map_err(|_| format!("bad shard count '{m}'"))?;
        if count == 0 || index >= count {
            return Err(format!("shard index {index} out of range for count {count}"));
        }
        Ok(Shard { index, count })
    }

    fn covers(&self, global_index: usize) -> bool {
        global_index % self.count == self.index
    }
}

/// How to execute a sweep.
#[derive(Debug, Clone, Copy)]
pub struct RunnerOptions {
    /// Worker threads; `0` = all available cores.
    pub threads: usize,
    /// Root seed every cell's RNG stream is derived from.
    pub root_seed: u64,
    /// Execute only this slice of the grid (`None` = all of it).
    pub shard: Option<Shard>,
}

/// Root seed used when none is given on the command line.
pub const DEFAULT_ROOT_SEED: u64 = 0x52_44_41_2d_53_45_45_44; // "RDA-SEED"

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            threads: 0,
            root_seed: DEFAULT_ROOT_SEED,
            shard: None,
        }
    }
}

impl RunnerOptions {
    /// Serial execution (one worker) — the determinism reference.
    pub fn serial() -> Self {
        RunnerOptions {
            threads: 1,
            ..Self::default()
        }
    }

    fn worker_count(&self, cells: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let n = if self.threads == 0 { auto } else { self.threads };
        n.clamp(1, cells.max(1))
    }
}

/// One successfully executed cell.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Global grid index (stable across shards and thread counts).
    pub index: usize,
    /// Workload name (figure category).
    pub workload: String,
    /// Policy (figure series).
    pub policy: PolicyKind,
    /// Replicate number.
    pub replicate: u64,
    /// The derived jitter-stream seed this run used.
    pub jitter_seed: u64,
    /// The simulation outcome.
    pub result: RunResult,
    /// `result.digest()`, precomputed on the worker.
    pub digest: u64,
}

/// A cell that panicked or returned a simulation error.
#[derive(Debug, Clone)]
pub struct RunError {
    /// Global grid index of the failed cell.
    pub index: usize,
    /// Workload name.
    pub workload: String,
    /// Policy.
    pub policy: PolicyKind,
    /// Replicate number.
    pub replicate: u64,
    /// The simulation error, or the panic payload for panics.
    pub message: String,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "run #{} ({} under {}, replicate {}): {}",
            self.index, self.workload, self.policy, self.replicate, self.message
        )
    }
}

impl std::error::Error for RunError {}

/// The aggregated sweep, in grid order regardless of completion order.
#[derive(Debug, Clone, Default)]
pub struct SweepResult {
    /// Successful runs, ordered by grid index.
    pub records: Vec<RunRecord>,
    /// Failed runs, ordered by grid index.
    pub errors: Vec<RunError>,
}

impl SweepResult {
    /// Digest of the entire sweep: folds every cell's index and run
    /// digest (or error message). Equal digests ⇔ behaviourally
    /// identical sweeps.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        let mut r = self.records.iter().peekable();
        let mut e = self.errors.iter().peekable();
        // Merge the two index-sorted streams so interleaving of
        // successes and failures does not depend on storage.
        loop {
            let take_record = match (r.peek(), e.peek()) {
                (Some(rec), Some(err)) => rec.index < err.index,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_record {
                let rec = r.next().unwrap();
                h.write_usize(rec.index).write_u64(rec.digest);
            } else {
                let err = e.next().unwrap();
                h.write_usize(err.index).write_str(&err.message);
            }
        }
        h.finish()
    }

    /// View the successful runs as [`PolicyRun`]s for the figure
    /// assembly helpers (`headline_figures` & friends).
    pub fn policy_runs(&self) -> Vec<PolicyRun> {
        self.records
            .iter()
            .map(|r| PolicyRun {
                workload: r.workload.clone(),
                policy: r.policy,
                result: r.result.clone(),
            })
            .collect()
    }

    /// Fail on the first error (grid order), else return the records.
    pub fn into_records(self) -> Result<Vec<RunRecord>, RunError> {
        match self.errors.into_iter().next() {
            Some(e) => Err(e),
            None => Ok(self.records),
        }
    }
}

/// Execute the grid under the paper-default simulator configuration.
pub fn run_sweep(grid: &SweepGrid, opts: &RunnerOptions) -> SweepResult {
    run_sweep_configured(grid, opts, |cell| SimConfig::paper_default(cell.policy))
}

/// Execute the grid with a caller-built [`SimConfig`] per cell (the
/// runner still overrides `jitter_seed` with the derived stream).
pub fn run_sweep_configured<F>(grid: &SweepGrid, opts: &RunnerOptions, configure: F) -> SweepResult
where
    F: Fn(&RunConfig) -> SimConfig + Sync,
{
    // Global indices this invocation actually executes.
    let mine: Vec<usize> = (0..grid.len())
        .filter(|&i| opts.shard.is_none_or(|s| s.covers(i)))
        .collect();
    let workers = opts.worker_count(mine.len());

    // One slot per executed cell, filled by whichever worker runs it.
    let slots: Vec<Mutex<Option<Result<RunRecord, RunError>>>> =
        mine.iter().map(|_| Mutex::new(None)).collect();

    // Work-stealing deques: each worker owns a contiguous chunk of the
    // cell list and steals from the back of the busiest victim when its
    // own deque drains. `queues[w]` holds positions into `mine`.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..mine.len())
                    .filter(|p| p * workers / mine.len().max(1) == w)
                    .collect(),
            )
        })
        .collect();

    let run_cell = |pos: usize| {
        let global = mine[pos];
        let cell = &grid.cells()[global];
        let jitter_seed = SplitMix64::derive_stream(opts.root_seed, global as u64);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let cfg = configure(cell).with_jitter_seed(jitter_seed);
            SystemSim::new(cfg, &cell.workload).run()
        }));
        let record = match outcome {
            Ok(Ok(result)) => {
                let digest = result.digest();
                Ok(RunRecord {
                    index: global,
                    workload: cell.workload.name.clone(),
                    policy: cell.policy,
                    replicate: cell.replicate,
                    jitter_seed,
                    result,
                    digest,
                })
            }
            Ok(Err(message)) => Err(message),
            Err(payload) => Err(panic_message(payload.as_ref())),
        }
        .map_err(|message| RunError {
            index: global,
            workload: cell.workload.name.clone(),
            policy: cell.policy,
            replicate: cell.replicate,
            message,
        });
        *slots[pos].lock().unwrap() = Some(record);
    };

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let run_cell = &run_cell;
            scope.spawn(move || loop {
                // Drain own deque from the front…
                let own = queues[w].lock().unwrap().pop_front();
                if let Some(pos) = own {
                    run_cell(pos);
                    continue;
                }
                // …then steal from the back of the fullest victim.
                let victim = (0..queues.len())
                    .filter(|&v| v != w)
                    .max_by_key(|&v| queues[v].lock().unwrap().len());
                let stolen = victim.and_then(|v| queues[v].lock().unwrap().pop_back());
                match stolen {
                    Some(pos) => run_cell(pos),
                    None => break,
                }
            });
        }
    });

    let mut result = SweepResult::default();
    for slot in slots {
        match slot
            .into_inner()
            .unwrap()
            .expect("worker pool exited with an unexecuted cell")
        {
            Ok(rec) => result.records.push(rec),
            Err(err) => result.errors.push(err),
        }
    }
    result
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::{mb, SiteId};
    use rda_machine::ReuseLevel;
    use rda_workloads::{Phase, ProcessProgram};

    fn spec(name: &str, procs: usize, ws_mb: f64, instr: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            processes: (0..procs)
                .map(|_| ProcessProgram {
                    threads: 1,
                    phases: vec![Phase::tracked(
                        "k",
                        instr,
                        mb(ws_mb),
                        ReuseLevel::High,
                        SiteId(0),
                    )],
                })
                .collect(),
        }
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::cross(
            &[spec("a", 3, 2.0, 4_000_000), spec("b", 2, 6.0, 3_000_000)],
            &[PolicyKind::DefaultOnly, PolicyKind::Strict],
            2,
        )
    }

    #[test]
    fn grid_order_is_workload_major() {
        let g = small_grid();
        assert_eq!(g.len(), 2 * 2 * 2);
        assert_eq!(g.cells()[0].workload.name, "a");
        assert_eq!(g.cells()[0].policy, PolicyKind::DefaultOnly);
        assert_eq!(g.cells()[0].replicate, 0);
        assert_eq!(g.cells()[1].replicate, 1);
        assert_eq!(g.cells()[2].policy, PolicyKind::Strict);
        assert_eq!(g.cells()[4].workload.name, "b");
    }

    #[test]
    fn serial_and_parallel_sweeps_are_bit_identical() {
        let g = small_grid();
        let serial = run_sweep(&g, &RunnerOptions::serial());
        let parallel = run_sweep(
            &g,
            &RunnerOptions {
                threads: 4,
                ..RunnerOptions::default()
            },
        );
        assert!(serial.errors.is_empty());
        assert_eq!(serial.records.len(), parallel.records.len());
        for (s, p) in serial.records.iter().zip(&parallel.records) {
            assert_eq!(s.index, p.index);
            assert_eq!(s.digest, p.digest, "cell #{} diverged", s.index);
        }
        assert_eq!(serial.digest(), parallel.digest());
    }

    #[test]
    fn replicates_observe_independent_streams() {
        let g = small_grid();
        let r = run_sweep(&g, &RunnerOptions::serial());
        // Replicates 0 and 1 of the same cell must differ in their
        // jitter stream (else replication would be pointless)…
        assert_ne!(r.records[0].jitter_seed, r.records[1].jitter_seed);
        // …but physics keeps the work identical.
        assert_eq!(
            r.records[0].result.measurement.counters.instructions,
            r.records[1].result.measurement.counters.instructions
        );
    }

    #[test]
    fn root_seed_changes_streams_deterministically() {
        let g = small_grid();
        let a = run_sweep(&g, &RunnerOptions::serial());
        let b = run_sweep(&g, &RunnerOptions::serial());
        assert_eq!(a.digest(), b.digest(), "same root seed must reproduce");
        let c = run_sweep(
            &g,
            &RunnerOptions {
                threads: 1,
                root_seed: 999,
                ..RunnerOptions::default()
            },
        );
        assert_ne!(
            a.records[0].jitter_seed, c.records[0].jitter_seed,
            "root seed must reach every cell's stream"
        );
    }

    #[test]
    fn shards_partition_and_compose() {
        let g = small_grid();
        let full = run_sweep(&g, &RunnerOptions::serial());
        let mut merged: Vec<RunRecord> = Vec::new();
        for index in 0..3 {
            let shard = run_sweep(
                &g,
                &RunnerOptions {
                    threads: 2,
                    shard: Some(Shard { index, count: 3 }),
                    ..RunnerOptions::default()
                },
            );
            merged.extend(shard.records);
        }
        merged.sort_by_key(|r| r.index);
        assert_eq!(merged.len(), full.records.len());
        for (m, f) in merged.iter().zip(&full.records) {
            assert_eq!(m.index, f.index);
            assert_eq!(m.digest, f.digest, "shard cell #{} diverged", m.index);
        }
    }

    #[test]
    fn shard_parsing() {
        assert_eq!(Shard::parse("0/4"), Ok(Shard { index: 0, count: 4 }));
        assert_eq!(Shard::parse("3/4"), Ok(Shard { index: 3, count: 4 }));
        assert!(Shard::parse("4/4").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/b").is_err());
        assert!(Shard::parse("0/0").is_err());
    }

    #[test]
    fn panicking_cell_becomes_a_structured_error() {
        let mut g = small_grid();
        // A process with zero threads trips SystemSim::new's assert.
        let mut bad = spec("bad", 1, 1.0, 1_000_000);
        bad.processes[0].threads = 0;
        g.push(RunConfig {
            workload: bad,
            policy: PolicyKind::Strict,
            replicate: 0,
        });
        let r = run_sweep(&g, &RunnerOptions { threads: 3, ..RunnerOptions::default() });
        assert_eq!(r.errors.len(), 1, "exactly the bad cell fails");
        let err = &r.errors[0];
        assert_eq!(err.workload, "bad");
        assert_eq!(err.index, g.len() - 1);
        assert!(err.message.contains("panic"), "{}", err.message);
        // Every other cell still completed.
        assert_eq!(r.records.len(), g.len() - 1);
        assert!(r.clone().into_records().is_err());
    }

    #[test]
    fn policy_runs_feed_figure_assembly() {
        let g = SweepGrid::cross(
            &[spec("w", 2, 1.0, 2_000_000)],
            &[PolicyKind::DefaultOnly, PolicyKind::Strict],
            1,
        );
        let r = run_sweep(&g, &RunnerOptions::default());
        let figs = crate::experiment::headline_figures(&r.policy_runs());
        assert_eq!(figs[0].series.len(), 2);
        assert_eq!(figs[0].categories(), vec!["w".to_string()]);
    }

    #[test]
    fn empty_grid_yields_empty_result() {
        let r = run_sweep(&SweepGrid::new(), &RunnerOptions::default());
        assert!(r.records.is_empty() && r.errors.is_empty());
        // Digest of emptiness is still stable.
        assert_eq!(r.digest(), SweepResult::default().digest());
    }
}
