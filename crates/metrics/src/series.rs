//! Named data series — the data behind each figure.
//!
//! Every figure in the paper is a grouped bar or line chart: a set of
//! categories (workloads, input sizes) × a set of series (scheduling
//! policies, process counts). [`FigureData`] captures exactly that, and
//! renders to an aligned text table or CSV so the experiment binaries can
//! regenerate the paper's plots as data.

use std::collections::BTreeMap;

/// A single named series: ordered (category → value) pairs.
#[derive(Debug, Clone, Default)]
pub struct DataSeries {
    /// Series label, e.g. `"RDA: Strict"`.
    pub name: String,
    /// Ordered points: category label → value.
    pub points: Vec<(String, f64)>,
}

impl DataSeries {
    /// New empty series with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        DataSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, category: impl Into<String>, value: f64) {
        self.points.push((category.into(), value));
    }

    /// Look up a value by category label.
    pub fn get(&self, category: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|(c, _)| c == category)
            .map(|&(_, v)| v)
    }
}

/// The full data set of one figure: several series over shared categories.
#[derive(Debug, Clone, Default)]
pub struct FigureData {
    /// Figure identifier, e.g. `"Figure 7"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Unit of the plotted value, e.g. `"J"`, `"GFLOPS"`.
    pub unit: String,
    /// The series, in legend order.
    pub series: Vec<DataSeries>,
}

impl FigureData {
    /// New empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: impl Into<String>) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            series: Vec::new(),
        }
    }

    /// Add a value to the series named `series` (creating it if absent)
    /// under the given category.
    pub fn add(&mut self, series: &str, category: &str, value: f64) {
        if let Some(s) = self.series.iter_mut().find(|s| s.name == series) {
            s.push(category, value);
        } else {
            let mut s = DataSeries::new(series);
            s.push(category, value);
            self.series.push(s);
        }
    }

    /// Value for (series, category) if present.
    pub fn get(&self, series: &str, category: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.name == series)?
            .get(category)
    }

    /// The union of category labels, in first-seen order.
    pub fn categories(&self) -> Vec<String> {
        let mut seen = BTreeMap::new();
        let mut out = Vec::new();
        for s in &self.series {
            for (c, _) in &s.points {
                if seen.insert(c.clone(), ()).is_none() {
                    out.push(c.clone());
                }
            }
        }
        out
    }

    /// Render as an aligned text table: one row per category, one column
    /// per series.
    pub fn to_text_table(&self) -> String {
        use crate::table::TextTable;
        let mut header = vec!["workload".to_string()];
        header.extend(self.series.iter().map(|s| s.name.clone()));
        let mut t = TextTable::new(header);
        for cat in self.categories() {
            let mut row = vec![cat.clone()];
            for s in &self.series {
                row.push(match s.get(&cat) {
                    Some(v) => format_value(v),
                    None => "-".to_string(),
                });
            }
            t.add_row(row);
        }
        format!("{} — {} [{}]\n{}", self.id, self.title, self.unit, t.render())
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("**{} — {}** [{}]\n\n", self.id, self.title, self.unit);
        out.push_str("| workload |");
        for s in &self.series {
            out.push_str(&format!(" {} |", s.name));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for cat in self.categories() {
            out.push_str(&format!("| {cat} |"));
            for s in &self.series {
                match s.get(&cat) {
                    Some(v) => out.push_str(&format!(" {} |", format_value(v))),
                    None => out.push_str(" — |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Encode as a [`Json`](crate::Json) tree:
    /// `{"id","title","unit","series":[{"name","points":[[cat,val],…]},…]}`.
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("unit", Json::Str(self.unit.clone())),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("name", Json::Str(s.name.clone())),
                                (
                                    "points",
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|(c, v)| {
                                                Json::Arr(vec![
                                                    Json::Str(c.clone()),
                                                    Json::Num(*v),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode a figure from the [`Self::to_json`] layout.
    pub fn from_json(v: &crate::Json) -> Result<FigureData, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("figure missing string field '{k}'"))
        };
        let mut fig = FigureData::new(field("id")?, field("title")?, field("unit")?);
        let series = v
            .get("series")
            .and_then(|s| s.as_arr())
            .ok_or("figure missing 'series' array")?;
        for s in series {
            let name = s
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or("series missing 'name'")?;
            let points = s
                .get("points")
                .and_then(|p| p.as_arr())
                .ok_or("series missing 'points'")?;
            for p in points {
                let pair = p.as_arr().filter(|a| a.len() == 2).ok_or("bad point")?;
                let cat = pair[0].as_str().ok_or("bad point category")?;
                let val = pair[1].as_f64().ok_or("bad point value")?;
                fig.add(name, cat, val);
            }
        }
        Ok(fig)
    }

    /// Render as CSV with the same layout as [`Self::to_text_table`].
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("category");
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for cat in self.categories() {
            out.push_str(&cat);
            for s in &self.series {
                out.push(',');
                match s.get(&cat) {
                    Some(v) => out.push_str(&format!("{v}")),
                    None => out.push_str(""),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.1 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> FigureData {
        let mut f = FigureData::new("Figure 7", "System energy", "J");
        f.add("Default", "BLAS-1", 100.0);
        f.add("Strict", "BLAS-1", 104.0);
        f.add("Default", "BLAS-3", 200.0);
        f.add("Strict", "BLAS-3", 120.0);
        f
    }

    #[test]
    fn add_and_get() {
        let f = fig();
        assert_eq!(f.get("Strict", "BLAS-3"), Some(120.0));
        assert_eq!(f.get("Strict", "missing"), None);
        assert_eq!(f.get("missing", "BLAS-1"), None);
    }

    #[test]
    fn categories_in_first_seen_order() {
        let f = fig();
        assert_eq!(f.categories(), vec!["BLAS-1".to_string(), "BLAS-3".to_string()]);
    }

    #[test]
    fn csv_is_rectangular() {
        let f = fig();
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert_eq!(line.matches(',').count(), 2, "line: {line}");
        }
        assert!(lines[0].starts_with("category,Default,Strict"));
    }

    #[test]
    fn text_table_contains_all_cells() {
        let f = fig();
        let txt = f.to_text_table();
        for needle in ["Figure 7", "BLAS-1", "BLAS-3", "Default", "Strict", "104", "120"] {
            assert!(txt.contains(needle), "missing {needle} in:\n{txt}");
        }
    }

    #[test]
    fn missing_cells_render_dash() {
        let mut f = FigureData::new("X", "t", "u");
        f.add("A", "c1", 1.0);
        f.add("B", "c2", 2.0);
        let txt = f.to_text_table();
        assert!(txt.contains('-'));
    }

    #[test]
    fn markdown_is_well_formed() {
        let f = fig();
        let md = f.to_markdown();
        let lines: Vec<&str> = md.trim_end().lines().collect();
        // Title + blank + header + separator + 2 data rows.
        assert_eq!(lines.len(), 6, "{md}");
        let pipes = |l: &str| l.matches('|').count();
        assert_eq!(pipes(lines[2]), 4);
        assert_eq!(pipes(lines[3]), 4);
        assert_eq!(pipes(lines[4]), 4);
        assert!(lines[0].contains("Figure 7"));
    }

    #[test]
    fn markdown_marks_missing_cells() {
        let mut f = FigureData::new("X", "t", "u");
        f.add("A", "c1", 1.0);
        f.add("B", "c2", 2.0);
        assert!(f.to_markdown().contains('—'));
    }

    #[test]
    fn series_roundtrip_through_json() {
        let f = fig();
        let json = f.to_json().to_string_compact();
        let back = FigureData::from_json(&crate::Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back.get("Default", "BLAS-3"), Some(200.0));
        assert_eq!(back.id, f.id);
        assert_eq!(back.categories(), f.categories());
    }
}
