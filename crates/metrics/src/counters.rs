//! `perf stat`-style hardware counters.
//!
//! The paper measures its workloads with Linux `perf` hardware counters
//! (instructions, FLOPs, cache events). [`PerfCounters`] is the simulated
//! equivalent: every component of the machine model increments these
//! counters, and the experiment harness reads them out per run.

use std::ops::{Add, AddAssign};

/// A block of hardware event counts for one measurement interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed core cycles (summed over cores that executed work).
    pub cycles: u64,
    /// Retired floating-point operations.
    pub flops: u64,
    /// Memory operations issued (loads + stores).
    pub mem_ops: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
    /// L2 cache misses.
    pub l2_misses: u64,
    /// Last-level cache misses (each becomes a DRAM transfer).
    pub llc_misses: u64,
    /// LLC accesses (L2 misses arriving at the LLC).
    pub llc_accesses: u64,
    /// Context switches performed by the scheduler.
    pub context_switches: u64,
    /// Thread migrations between cores.
    pub migrations: u64,
    /// `pp_begin` API calls observed.
    pub pp_begins: u64,
    /// `pp_end` API calls observed.
    pub pp_ends: u64,
    /// Progress-period scheduling decisions served by the memoised fast
    /// path (see `rda-core::fastpath`).
    pub fastpath_hits: u64,
    /// Threads paused by the scheduling predicate (placed on the
    /// resource waitlist).
    pub waitlisted: u64,
}

impl PerfCounters {
    /// All-zero counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Instructions per cycle; 0 when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC misses per thousand instructions.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// LLC hit ratio over LLC accesses; 1.0 when the LLC was never
    /// accessed (no misses possible).
    pub fn llc_hit_ratio(&self) -> f64 {
        if self.llc_accesses == 0 {
            1.0
        } else {
            1.0 - self.llc_misses as f64 / self.llc_accesses as f64
        }
    }

    /// Merge another counter block into this one.
    pub fn absorb(&mut self, other: &PerfCounters) {
        *self += *other;
    }
}

impl Add for PerfCounters {
    type Output = PerfCounters;
    fn add(mut self, rhs: PerfCounters) -> PerfCounters {
        self += rhs;
        self
    }
}

impl AddAssign for PerfCounters {
    fn add_assign(&mut self, rhs: PerfCounters) {
        self.instructions += rhs.instructions;
        self.cycles += rhs.cycles;
        self.flops += rhs.flops;
        self.mem_ops += rhs.mem_ops;
        self.l1_misses += rhs.l1_misses;
        self.l2_misses += rhs.l2_misses;
        self.llc_misses += rhs.llc_misses;
        self.llc_accesses += rhs.llc_accesses;
        self.context_switches += rhs.context_switches;
        self.migrations += rhs.migrations;
        self.pp_begins += rhs.pp_begins;
        self.pp_ends += rhs.pp_ends;
        self.fastpath_hits += rhs.fastpath_hits;
        self.waitlisted += rhs.waitlisted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfCounters {
        PerfCounters {
            instructions: 1000,
            cycles: 2000,
            flops: 500,
            mem_ops: 300,
            l1_misses: 30,
            l2_misses: 20,
            llc_misses: 5,
            llc_accesses: 20,
            context_switches: 2,
            migrations: 1,
            pp_begins: 3,
            pp_ends: 3,
            fastpath_hits: 1,
            waitlisted: 1,
        }
    }

    #[test]
    fn derived_metrics() {
        let c = sample();
        assert!((c.ipc() - 0.5).abs() < 1e-12);
        assert!((c.llc_mpki() - 5.0).abs() < 1e-12);
        assert!((c.llc_hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn derived_metrics_degenerate() {
        let c = PerfCounters::new();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.llc_mpki(), 0.0);
        assert_eq!(c.llc_hit_ratio(), 1.0);
    }

    #[test]
    fn addition_is_fieldwise() {
        let c = sample() + sample();
        assert_eq!(c.instructions, 2000);
        assert_eq!(c.llc_misses, 10);
        assert_eq!(c.waitlisted, 2);
    }

    #[test]
    fn absorb_matches_add() {
        let mut a = sample();
        a.absorb(&sample());
        assert_eq!(a, sample() + sample());
    }
}
