//! Least-squares regression.
//!
//! Section 4.4 of the paper predicts a progress period's working-set size
//! as a function of the application input size by running a *logarithmic
//! regression* (`y = a + b·ln(x)`) over the first three input scales and
//! checking prediction accuracy on the fourth. [`log_fit`] implements
//! exactly that; [`linear_fit`] is the underlying least-squares solver,
//! also exposed for the harness's sanity checks.
//!
//! A fit that cannot be computed returns a typed [`FitError`] carrying
//! the failing sample-set size, so callers can distinguish "not enough
//! scales profiled yet" from "degenerate measurements" and report the
//! right thing — the old `Option` return collapsed every failure into
//! one indistinguishable `None`.

use std::fmt;

/// A fitted model `y = intercept + slope * f(x)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Constant term `a`.
    pub intercept: f64,
    /// Coefficient `b`.
    pub slope: f64,
    /// Coefficient of determination on the training points.
    pub r_squared: f64,
}

/// Why a regression could not be fitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// No sample points at all.
    Empty,
    /// A single point underdetermines the two-parameter model.
    SinglePoint,
    /// All (transformed) `x` coincide, so the slope is undefined;
    /// carries the sample-set size.
    ZeroVariance {
        /// Number of points in the failing sample set.
        n: usize,
    },
    /// A logarithmic fit was given a non-positive `x`; carries the
    /// sample-set size.
    NonPositiveX {
        /// Number of points in the failing sample set.
        n: usize,
    },
}

impl FitError {
    /// Size of the sample set the fit was attempted on.
    pub fn sample_count(self) -> usize {
        match self {
            FitError::Empty => 0,
            FitError::SinglePoint => 1,
            FitError::ZeroVariance { n } | FitError::NonPositiveX { n } => n,
        }
    }
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FitError::Empty => f.write_str("no sample points"),
            FitError::SinglePoint => f.write_str("a single point underdetermines the fit"),
            FitError::ZeroVariance { n } => {
                write!(f, "all {n} points share one x — slope undefined")
            }
            FitError::NonPositiveX { n } => {
                write!(f, "non-positive x among {n} points — log undefined")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Ordinary least squares on raw `(x, y)` points.
///
/// Fails with fewer than two points or when all `x` coincide.
pub fn linear_fit(points: &[(f64, f64)]) -> Result<Fit, FitError> {
    fit_transformed(points, |x| x)
}

/// Logarithmic regression `y = a + b·ln(x)` on `(x, y)` points.
///
/// Fails with fewer than two points, non-positive `x`, or when all
/// `ln(x)` coincide. Callers with unvetted measurements (zero-WSS
/// windows, unscaled inputs) should sanitise with
/// [`clamp_samples`] first.
pub fn log_fit(points: &[(f64, f64)]) -> Result<Fit, FitError> {
    if points.iter().any(|&(x, _)| x <= 0.0) {
        return Err(FitError::NonPositiveX { n: points.len() });
    }
    fit_transformed(points, |x| x.ln())
}

/// Sanitise raw measurement samples before fitting: drop points with a
/// non-finite coordinate, and clamp negative `y` (a measured size or
/// count can never be below zero) to exactly `0.0`. `x` is left alone —
/// a non-positive `x` is a *caller* bug the fit should surface, not
/// silently repair.
pub fn clamp_samples(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    points
        .iter()
        .filter(|&&(x, y)| x.is_finite() && y.is_finite())
        .map(|&(x, y)| (x, y.max(0.0)))
        .collect()
}

fn fit_transformed(points: &[(f64, f64)], f: impl Fn(f64) -> f64) -> Result<Fit, FitError> {
    let n = points.len();
    match n {
        0 => return Err(FitError::Empty),
        1 => return Err(FitError::SinglePoint),
        _ => {}
    }
    let nf = n as f64;
    let sx: f64 = points.iter().map(|&(x, _)| f(x)).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let mx = sx / nf;
    let my = sy / nf;
    let sxx: f64 = points.iter().map(|&(x, _)| (f(x) - mx).powi(2)).sum();
    if sxx == 0.0 {
        return Err(FitError::ZeroVariance { n });
    }
    let sxy: f64 = points
        .iter()
        .map(|&(x, y)| (f(x) - mx) * (y - my))
        .sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;

    let ss_res: f64 = points
        .iter()
        .map(|&(x, y)| (y - (intercept + slope * f(x))).powi(2))
        .sum();
    let ss_tot: f64 = points.iter().map(|&(_, y)| (y - my).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };

    Ok(Fit {
        intercept,
        slope,
        r_squared,
    })
}

impl Fit {
    /// Predict `y` for a raw `x` under a *linear* fit.
    pub fn predict_linear(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Predict `y` for a raw `x` under a *logarithmic* fit
    /// (`y = a + b·ln(x)`).
    pub fn predict_log(&self, x: f64) -> f64 {
        assert!(x > 0.0, "log model undefined for x <= 0");
        self.intercept + self.slope * x.ln()
    }
}

/// Prediction accuracy as the paper reports it: `1 - |pred - actual| /
/// actual`, clamped to `[0, 1]`. An accuracy of 0.92 means the estimate
/// was within 8 % of the measured value.
pub fn prediction_accuracy(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return if predicted == 0.0 { 1.0 } else { 0.0 };
    }
    (1.0 - ((predicted - actual) / actual).abs()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-10);
        assert!((fit.intercept - 3.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
        assert!((fit.predict_linear(10.0) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn log_fit_recovers_exact_log_curve() {
        let pts: Vec<(f64, f64)> = [1.0f64, 2.0, 4.0, 8.0]
            .iter()
            .map(|&x| (x, 5.0 + 1.5 * x.ln()))
            .collect();
        let fit = log_fit(&pts).unwrap();
        assert!((fit.slope - 1.5).abs() < 1e-10);
        assert!((fit.intercept - 5.0).abs() < 1e-10);
        assert!((fit.predict_log(16.0) - (5.0 + 1.5 * 16f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_return_typed_errors() {
        // n = 0 and n = 1 are distinguishable from each other and from
        // degenerate-but-populated sample sets.
        assert_eq!(linear_fit(&[]), Err(FitError::Empty));
        assert_eq!(linear_fit(&[(1.0, 1.0)]), Err(FitError::SinglePoint));
        assert_eq!(
            linear_fit(&[(2.0, 1.0), (2.0, 5.0)]),
            Err(FitError::ZeroVariance { n: 2 })
        );
        assert_eq!(
            log_fit(&[(0.0, 1.0), (1.0, 2.0)]),
            Err(FitError::NonPositiveX { n: 2 })
        );
        assert_eq!(
            log_fit(&[(-1.0, 1.0), (1.0, 2.0)]),
            Err(FitError::NonPositiveX { n: 2 })
        );
        // Every error reports the sample-set size it failed on.
        assert_eq!(FitError::Empty.sample_count(), 0);
        assert_eq!(FitError::SinglePoint.sample_count(), 1);
        assert_eq!(FitError::ZeroVariance { n: 3 }.sample_count(), 3);
        assert_eq!(FitError::NonPositiveX { n: 4 }.sample_count(), 4);
    }

    #[test]
    fn fit_errors_display_their_cause() {
        assert_eq!(FitError::Empty.to_string(), "no sample points");
        assert!(FitError::ZeroVariance { n: 2 }.to_string().contains("2"));
        assert!(FitError::NonPositiveX { n: 5 }.to_string().contains("log"));
    }

    #[test]
    fn zero_wss_samples_fit_without_error() {
        // A period that never touched memory measures WSS = 0 at every
        // scale. The fit must not fail (or divide by zero): a constant
        // zero line has slope 0, intercept 0, and a perfect R² by the
        // ss_tot = 0 convention.
        let pts = [(1000.0, 0.0), (2000.0, 0.0), (4000.0, 0.0)];
        let fit = log_fit(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 0.0);
        assert_eq!(fit.r_squared, 1.0);
        assert_eq!(fit.predict_log(8000.0), 0.0);
    }

    #[test]
    fn clamp_samples_drops_nonfinite_and_floors_negative_y() {
        let raw = [
            (1.0, -0.5),
            (2.0, f64::NAN),
            (f64::INFINITY, 3.0),
            (4.0, 7.0),
        ];
        let clean = clamp_samples(&raw);
        assert_eq!(clean, vec![(1.0, 0.0), (4.0, 7.0)]);
        // Clamping never repairs a bad x: the typed error still fires.
        assert_eq!(
            log_fit(&clamp_samples(&[(0.0, 1.0), (1.0, 2.0)])),
            Err(FitError::NonPositiveX { n: 2 })
        );
    }

    #[test]
    fn r_squared_penalises_noise() {
        let clean: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, i as f64)).collect();
        let noisy: Vec<(f64, f64)> = (1..=10)
            .map(|i| (i as f64, i as f64 + if i % 2 == 0 { 3.0 } else { -3.0 }))
            .collect();
        let r_clean = linear_fit(&clean).unwrap().r_squared;
        let r_noisy = linear_fit(&noisy).unwrap().r_squared;
        assert!(r_clean > r_noisy);
    }

    #[test]
    fn accuracy_metric_matches_paper_convention() {
        assert!((prediction_accuracy(92.0, 100.0) - 0.92).abs() < 1e-12);
        assert!((prediction_accuracy(108.0, 100.0) - 0.92).abs() < 1e-12);
        assert_eq!(prediction_accuracy(300.0, 100.0), 0.0); // clamped
        assert_eq!(prediction_accuracy(0.0, 0.0), 1.0);
        assert_eq!(prediction_accuracy(1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn predict_log_rejects_nonpositive() {
        let fit = Fit {
            intercept: 0.0,
            slope: 1.0,
            r_squared: 1.0,
        };
        fit.predict_log(0.0);
    }
}
