//! Least-squares regression.
//!
//! Section 4.4 of the paper predicts a progress period's working-set size
//! as a function of the application input size by running a *logarithmic
//! regression* (`y = a + b·ln(x)`) over the first three input scales and
//! checking prediction accuracy on the fourth. [`log_fit`] implements
//! exactly that; [`linear_fit`] is the underlying least-squares solver,
//! also exposed for the harness's sanity checks.


/// A fitted model `y = intercept + slope * f(x)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Constant term `a`.
    pub intercept: f64,
    /// Coefficient `b`.
    pub slope: f64,
    /// Coefficient of determination on the training points.
    pub r_squared: f64,
}

/// Ordinary least squares on raw `(x, y)` points.
///
/// Returns `None` with fewer than two points or when all `x` coincide.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<Fit> {
    fit_transformed(points, |x| x)
}

/// Logarithmic regression `y = a + b·ln(x)` on `(x, y)` points.
///
/// Returns `None` with fewer than two points, non-positive `x`, or when
/// all `ln(x)` coincide.
pub fn log_fit(points: &[(f64, f64)]) -> Option<Fit> {
    if points.iter().any(|&(x, _)| x <= 0.0) {
        return None;
    }
    fit_transformed(points, |x| x.ln())
}

fn fit_transformed(points: &[(f64, f64)], f: impl Fn(f64) -> f64) -> Option<Fit> {
    let n = points.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sx: f64 = points.iter().map(|&(x, _)| f(x)).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let mx = sx / nf;
    let my = sy / nf;
    let sxx: f64 = points.iter().map(|&(x, _)| (f(x) - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points
        .iter()
        .map(|&(x, y)| (f(x) - mx) * (y - my))
        .sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;

    let ss_res: f64 = points
        .iter()
        .map(|&(x, y)| (y - (intercept + slope * f(x))).powi(2))
        .sum();
    let ss_tot: f64 = points.iter().map(|&(_, y)| (y - my).powi(2)).sum();
    let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };

    Some(Fit {
        intercept,
        slope,
        r_squared,
    })
}

impl Fit {
    /// Predict `y` for a raw `x` under a *linear* fit.
    pub fn predict_linear(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Predict `y` for a raw `x` under a *logarithmic* fit
    /// (`y = a + b·ln(x)`).
    pub fn predict_log(&self, x: f64) -> f64 {
        assert!(x > 0.0, "log model undefined for x <= 0");
        self.intercept + self.slope * x.ln()
    }
}

/// Prediction accuracy as the paper reports it: `1 - |pred - actual| /
/// actual`, clamped to `[0, 1]`. An accuracy of 0.92 means the estimate
/// was within 8 % of the measured value.
pub fn prediction_accuracy(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return if predicted == 0.0 { 1.0 } else { 0.0 };
    }
    (1.0 - ((predicted - actual) / actual).abs()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-10);
        assert!((fit.intercept - 3.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
        assert!((fit.predict_linear(10.0) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn log_fit_recovers_exact_log_curve() {
        let pts: Vec<(f64, f64)> = [1.0f64, 2.0, 4.0, 8.0]
            .iter()
            .map(|&x| (x, 5.0 + 1.5 * x.ln()))
            .collect();
        let fit = log_fit(&pts).unwrap();
        assert!((fit.slope - 1.5).abs() < 1e-10);
        assert!((fit.intercept - 5.0).abs() < 1e-10);
        assert!((fit.predict_log(16.0) - (5.0 + 1.5 * 16f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
        assert!(log_fit(&[(0.0, 1.0), (1.0, 2.0)]).is_none());
        assert!(log_fit(&[(-1.0, 1.0), (1.0, 2.0)]).is_none());
    }

    #[test]
    fn r_squared_penalises_noise() {
        let clean: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, i as f64)).collect();
        let noisy: Vec<(f64, f64)> = (1..=10)
            .map(|i| (i as f64, i as f64 + if i % 2 == 0 { 3.0 } else { -3.0 }))
            .collect();
        let r_clean = linear_fit(&clean).unwrap().r_squared;
        let r_noisy = linear_fit(&noisy).unwrap().r_squared;
        assert!(r_clean > r_noisy);
    }

    #[test]
    fn accuracy_metric_matches_paper_convention() {
        assert!((prediction_accuracy(92.0, 100.0) - 0.92).abs() < 1e-12);
        assert!((prediction_accuracy(108.0, 100.0) - 0.92).abs() < 1e-12);
        assert_eq!(prediction_accuracy(300.0, 100.0), 0.0); // clamped
        assert_eq!(prediction_accuracy(0.0, 0.0), 1.0);
        assert_eq!(prediction_accuracy(1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn predict_log_rejects_nonpositive() {
        let fit = Fit {
            intercept: 0.0,
            slope: 1.0,
            r_squared: 1.0,
        };
        fit.predict_log(0.0);
    }
}
