//! Aligned text table rendering for experiment output.

/// A simple column-aligned text table.
///
/// ```
/// use rda_metrics::TextTable;
/// let mut t = TextTable::new(vec!["name".into(), "value".into()]);
/// t.add_row(vec!["alpha".into(), "1".into()]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given header cells.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Append one row. Rows shorter than the header are padded with
    /// empty cells; longer rows extend the column count.
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with space-aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }

        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:<w$}"));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.add_row(vec!["xxxxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data starts of column 2 align.
        let col2 = |line: &str| line.find("bbbb").or_else(|| line.find('1')).or_else(|| line.find("22"));
        let positions: Vec<usize> = [lines[0], lines[2], lines[3]].iter().filter_map(|l| col2(l)).collect();
        assert!(positions.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(vec!["h1".into()]);
        t.add_row(vec!["a".into(), "extra".into()]);
        t.add_row(vec![]);
        let s = t.render();
        assert!(s.contains("extra"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_is_header_only() {
        let t = TextTable::new(vec!["only".into()]);
        assert!(t.is_empty());
        let s = t.render();
        assert!(s.starts_with("only\n"));
    }
}
