//! RAPL-style energy accounting.
//!
//! The paper reads Intel's Running Average Power Limit (RAPL) interface,
//! which exposes cumulative energy for the *package* domain (cores +
//! caches) and the *DRAM* domain. [`EnergyBreakdown`] mirrors those two
//! domains; the machine model deposits Joules here as simulated time
//! advances and events (instructions, cache accesses, DRAM transfers)
//! occur.

use std::ops::{Add, AddAssign};

/// Cumulative energy split across RAPL-like domains, in Joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Package domain: core static + dynamic energy and cache energy.
    pub pkg_joules: f64,
    /// DRAM domain: background power plus per-transfer energy.
    pub dram_joules: f64,
}

impl EnergyBreakdown {
    /// Zero energy in both domains.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total system energy (PKG + DRAM) — the quantity Figure 7 plots.
    pub fn system_joules(&self) -> f64 {
        self.pkg_joules + self.dram_joules
    }

    /// Average system power over a wall-clock interval in seconds.
    pub fn average_watts(&self, wall_secs: f64) -> f64 {
        if wall_secs <= 0.0 {
            0.0
        } else {
            self.system_joules() / wall_secs
        }
    }

    /// Deposit Joules into the package domain.
    pub fn add_pkg(&mut self, joules: f64) {
        debug_assert!(joules >= 0.0, "negative energy deposit");
        self.pkg_joules += joules;
    }

    /// Deposit Joules into the DRAM domain.
    pub fn add_dram(&mut self, joules: f64) {
        debug_assert!(joules >= 0.0, "negative energy deposit");
        self.dram_joules += joules;
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(mut self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        self += rhs;
        self
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        self.pkg_joules += rhs.pkg_joules;
        self.dram_joules += rhs.dram_joules;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_power() {
        let mut e = EnergyBreakdown::new();
        e.add_pkg(30.0);
        e.add_dram(10.0);
        assert!((e.system_joules() - 40.0).abs() < 1e-12);
        assert!((e.average_watts(2.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn zero_interval_power_is_zero() {
        let e = EnergyBreakdown {
            pkg_joules: 5.0,
            dram_joules: 5.0,
        };
        assert_eq!(e.average_watts(0.0), 0.0);
    }

    #[test]
    fn addition_is_domainwise() {
        let a = EnergyBreakdown {
            pkg_joules: 1.0,
            dram_joules: 2.0,
        };
        let b = EnergyBreakdown {
            pkg_joules: 3.0,
            dram_joules: 4.0,
        };
        let c = a + b;
        assert_eq!(c.pkg_joules, 4.0);
        assert_eq!(c.dram_joules, 6.0);
    }
}
