//! One experiment observation and its derived metrics.
//!
//! The paper reports four quantities per (workload, policy) cell:
//! system energy (J), DRAM energy (J), GFLOPS, and GFLOPS per Watt.
//! [`Measurement`] bundles the raw counters and energy for one run and
//! derives exactly those quantities.

use crate::counters::PerfCounters;
use crate::energy::EnergyBreakdown;

/// A complete observation of one workload execution.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// Aggregated hardware counters over the run.
    pub counters: PerfCounters,
    /// Energy deposited over the run.
    pub energy: EnergyBreakdown,
    /// Wall-clock duration of the run in seconds (simulated).
    pub wall_secs: f64,
}

impl Measurement {
    /// Achieved GFLOPS: total FLOPs / wall-clock seconds / 1e9.
    pub fn gflops(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.counters.flops as f64 / self.wall_secs / 1e9
        }
    }

    /// System energy in Joules (Figure 7's metric).
    pub fn system_joules(&self) -> f64 {
        self.energy.system_joules()
    }

    /// DRAM energy in Joules (Figure 8's metric).
    pub fn dram_joules(&self) -> f64 {
        self.energy.dram_joules
    }

    /// GFLOPS per Watt of system power (Figure 10's metric), i.e.
    /// FLOPs divided by system Joules, scaled to 1e9.
    pub fn gflops_per_watt(&self) -> f64 {
        let j = self.system_joules();
        if j <= 0.0 {
            0.0
        } else {
            self.counters.flops as f64 / j / 1e9
        }
    }

    /// Merge a second observation (e.g. another process of the same
    /// workload) into this one. Wall-clock takes the max because the
    /// workload completes when its last process does.
    pub fn absorb(&mut self, other: &Measurement) {
        self.counters.absorb(&other.counters);
        self.energy += other.energy;
        self.wall_secs = self.wall_secs.max(other.wall_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(flops: u64, pkg: f64, dram: f64, secs: f64) -> Measurement {
        Measurement {
            counters: PerfCounters {
                flops,
                ..Default::default()
            },
            energy: EnergyBreakdown {
                pkg_joules: pkg,
                dram_joules: dram,
            },
            wall_secs: secs,
        }
    }

    #[test]
    fn derived_quantities() {
        let m = meas(2_000_000_000, 30.0, 10.0, 2.0);
        assert!((m.gflops() - 1.0).abs() < 1e-12);
        assert!((m.system_joules() - 40.0).abs() < 1e-12);
        assert!((m.dram_joules() - 10.0).abs() < 1e-12);
        assert!((m.gflops_per_watt() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn zero_time_and_energy_are_benign() {
        let m = meas(100, 0.0, 0.0, 0.0);
        assert_eq!(m.gflops(), 0.0);
        assert_eq!(m.gflops_per_watt(), 0.0);
    }

    #[test]
    fn absorb_takes_max_wallclock_and_sums_rest() {
        let mut a = meas(1_000, 1.0, 1.0, 3.0);
        let b = meas(2_000, 2.0, 2.0, 5.0);
        a.absorb(&b);
        assert_eq!(a.counters.flops, 3_000);
        assert!((a.system_joules() - 6.0).abs() < 1e-12);
        assert_eq!(a.wall_secs, 5.0);
    }

    #[test]
    fn gflops_per_watt_identity() {
        // GFLOPS/W == GFLOPS / average watts.
        let m = meas(4_000_000_000, 10.0, 10.0, 2.0);
        let via_power = m.gflops() / m.energy.average_watts(m.wall_secs);
        assert!((m.gflops_per_watt() - via_power).abs() < 1e-12);
    }
}
