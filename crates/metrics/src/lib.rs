//! # rda-metrics
//!
//! The measurement layer of the RDA reproduction. The paper evaluates its
//! scheduler with Linux `perf` (hardware counters) and Intel RAPL (energy
//! metering); this crate provides the equivalent abstractions for the
//! simulated machine:
//!
//! * [`PerfCounters`] — a `perf stat`-style counter block (instructions,
//!   cycles, FLOPs, per-level cache misses, context switches, …).
//! * [`EnergyBreakdown`] — RAPL-style PKG / DRAM energy domains.
//! * [`Measurement`] — one experiment observation combining counters,
//!   energy, and wall-clock, with the paper's derived metrics
//!   (GFLOPS, GFLOPS per Watt).
//! * [`DataSeries`] / [`FigureData`] — named series keyed by workload or
//!   parameter, i.e. the data behind each figure of the paper.
//! * [`TextTable`] — aligned text / CSV rendering for the experiment
//!   binaries.
//! * [`regress`] — least-squares linear and logarithmic regression used
//!   by the Fig 12 working-set-size predictor.

#![warn(missing_docs)]

pub mod counters;
pub mod energy;
pub mod json;
pub mod regress;
pub mod series;
pub mod summary;
pub mod table;

pub use counters::PerfCounters;
pub use energy::EnergyBreakdown;
pub use json::{Json, JsonError, MAX_DEPTH};
pub use series::{DataSeries, FigureData};
pub use summary::Measurement;
pub use table::TextTable;

/// Geometric mean of a non-empty slice of positive values.
///
/// Used to summarise per-workload speedups the way the paper reports
/// "average 1.16×". Returns `None` for empty input or any non-positive
/// value.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Speedup of `new` over `baseline` measured on a "lower is better"
/// quantity (e.g. runtime): `baseline / new`.
pub fn speedup_lower_better(baseline: f64, new: f64) -> f64 {
    baseline / new
}

/// Relative change of `new` vs `baseline` on a "lower is better"
/// quantity, as a signed fraction: `-0.48` means a 48 % decrease.
pub fn relative_change(baseline: f64, new: f64) -> f64 {
    (new - baseline) / baseline
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_empty_and_nonpositive() {
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
        assert!(geomean(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn speedup_and_change() {
        assert!((speedup_lower_better(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((relative_change(100.0, 52.0) + 0.48).abs() < 1e-12);
    }
}
