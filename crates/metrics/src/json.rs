//! Minimal JSON value type, writer, and parser.
//!
//! The experiment binaries dump machine-readable results bundles and
//! the figure types round-trip through JSON in tests. The build
//! environment is offline, so instead of serde_json this module
//! provides a small self-contained implementation: a [`Json`] tree,
//! `Display`-based emission (with a pretty-printer), and a
//! recursive-descent parser. Numbers are `f64`; emission uses Rust's
//! shortest-roundtrip float formatting, so `f64` values survive a
//! parse/emit cycle exactly.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted (BTreeMap) for deterministic output.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string payload if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        format!("{self}")
    }

    /// Indented multi-line rendering.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push(']');
            }
            Json::Obj(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    for _ in 0..=depth {
                        out.push_str(INDENT);
                    }
                    out.push_str(&format!("{}: ", Escaped(k)));
                    v.write_pretty(out, depth + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                for _ in 0..depth {
                    out.push_str(INDENT);
                }
                out.push('}');
            }
            other => out.push_str(&other.to_string_compact()),
        }
    }

    /// Parse a JSON document. Returns a message with the byte offset on
    /// malformed input (the rendering of [`JsonError`]; use
    /// [`Json::parse_checked`] to branch on the offset itself).
    pub fn parse(text: &str) -> Result<Json, String> {
        Json::parse_checked(text).map_err(|e| e.to_string())
    }

    /// Parse a JSON document, reporting malformed input as a typed
    /// [`JsonError`] carrying the byte offset. Nesting deeper than
    /// [`MAX_DEPTH`] levels is rejected (offset at the opening
    /// bracket), so adversarial input cannot overflow the parser's
    /// recursion stack.
    pub fn parse_checked(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

/// Maximum container nesting the parser accepts. The parser is
/// recursive-descent, so unbounded `[[[[…` input would otherwise turn
/// into unbounded stack growth; 128 levels is far beyond anything the
/// experiment bundles emit while keeping worst-case stack use trivial.
pub const MAX_DEPTH: usize = 128;

/// A malformed JSON document: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// What the parser expected or found (without the offset).
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write!(f, "{}", Escaped(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Escaped(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Escaped<'a>(&'a str);

impl fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("\"")?;
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => f.write_fmt(format_args!("{c}"))?,
            }
        }
        f.write_str("\"")
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    /// Enter one container level, refusing input nested past
    /// [`MAX_DEPTH`] (called with `pos` still at the opening bracket,
    /// so the error points at it).
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let Some(esc) = rest.get(1).copied() else {
                        return Err(self.err("dangling escape"));
                    };
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let Some(hex) = self.bytes.get(self.pos..self.pos + 4) else {
                                return Err(self.err("truncated \\u escape"));
                            };
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consume a run of ASCII digits, returning how many were taken.
    fn digit_run(&mut self) -> usize {
        let mut n = 0;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            n += 1;
        }
        n
    }

    /// Scan one number following the JSON grammar
    /// (`-? digits ('.' digits)? ([eE] [+-]? digits)?`), stopping at
    /// the first byte that cannot extend a valid number. The previous
    /// scanner greedily consumed any of `-+.eE` anywhere, so malformed
    /// tokens like `1-2` were swallowed whole and misreported as one
    /// bad number instead of being rejected at the offending byte.
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.digit_run() == 0 {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digit_run() == 0 {
                return Err(self.err("expected digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digit_run() == 0 {
                return Err(self.err("expected digit"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("bad number '{text}'"),
        })
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                Some(b',') => self.pos += 1,
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-1.5", "1e10", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, 5e-324, -0.0, 123456789.123456] {
            let v = Json::Num(x);
            let back = Json::parse(&v.to_string_compact()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\t\"quoted\" \\ back ünïcødé \u{1}";
        let v = Json::Str(s.into());
        let back = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Json::obj([
            ("name", Json::Str("fig".into())),
            (
                "points",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Str("a".into()), Json::Num(1.0)]),
                    Json::Arr(vec![Json::Str("b".into()), Json::Num(2.5)]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(Default::default())),
        ]);
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "[] []"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn malformed_numbers_fail_at_the_first_invalid_byte() {
        // The old scanner greedily consumed any of `-+.eE`, so tokens
        // like "1-2" were swallowed whole. Each case pins the exact
        // error message and byte offset the grammar-driven scanner
        // reports.
        for (bad, err) in [
            ("1-2", "trailing data at byte 1"),
            ("[1-2]", "expected ',' or ']' at byte 2"),
            ("1e+", "expected digit at byte 3"),
            ("1e", "expected digit at byte 2"),
            ("1.", "expected digit at byte 2"),
            ("-", "expected digit at byte 1"),
            ("1..2", "expected digit at byte 2"),
            ("1e5e5", "trailing data at byte 3"),
            ("1.2.3", "trailing data at byte 3"),
            ("[1, 2e+]", "expected digit at byte 7"),
            ("{\"a\": 3.}", "expected digit at byte 8"),
        ] {
            assert_eq!(Json::parse(bad).unwrap_err(), err, "input {bad:?}");
        }
    }

    #[test]
    fn well_formed_numbers_still_parse() {
        let cases: [(&str, f64); 6] = [
            ("1e+5", 1e5),
            ("1E-3", 1e-3),
            ("-0.5e2", -50.0),
            ("0.25", 0.25),
            ("-0", -0.0),
            ("12e00", 12.0),
        ];
        for (text, want) in cases {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), want.to_bits(), "{text}");
        }
    }

    #[test]
    fn random_finite_floats_roundtrip_bit_exactly() {
        // Poor-man's fuzz: pump the deterministic SplitMix64 stream
        // through f64::from_bits and demand print → parse be the
        // identity on every finite value.
        let mut rng = rda_simcore::rng::SplitMix64::new(0x4a50_4e55_4d42_5251);
        let mut checked = 0u32;
        while checked < 2_000 {
            let x = f64::from_bits(rng.next_u64());
            if !x.is_finite() {
                continue;
            }
            let back = Json::parse(&Json::Num(x).to_string_compact()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x:e}");
            checked += 1;
        }
    }

    #[test]
    fn nesting_is_bounded_not_a_stack_overflow() {
        // At the limit: parses fine, both containers.
        let arrays = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&arrays).is_ok());
        let objects = format!(
            "{}0{}",
            "{\"k\":".repeat(MAX_DEPTH),
            "}".repeat(MAX_DEPTH)
        );
        assert!(Json::parse(&objects).is_ok());

        // One past the limit: typed error pointing at the offending
        // opening bracket.
        let too_deep = format!("{}0{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = Json::parse_checked(&too_deep).expect_err("must reject");
        assert_eq!(err.offset, MAX_DEPTH, "offset of the 129th '['");
        assert_eq!(err.message, format!("nesting deeper than {MAX_DEPTH} levels"));
        assert_eq!(
            err.to_string(),
            format!("nesting deeper than {MAX_DEPTH} levels at byte {MAX_DEPTH}")
        );

        // Adversarial megabyte of open brackets: rejected at the depth
        // guard, never a megabyte of recursion.
        let bomb = "[".repeat(1_000_000);
        let err = Json::parse_checked(&bomb).expect_err("must reject");
        assert_eq!(err.offset, MAX_DEPTH);
        // Mixed nesting counts both container kinds: 65 of each is 130
        // levels, past the limit.
        let mixed = "[{\"a\":".repeat(65) + "0";
        let err = Json::parse_checked(&mixed).expect_err("must reject");
        assert_eq!(err.message, format!("nesting deeper than {MAX_DEPTH} levels"));
    }

    #[test]
    fn parse_checked_reports_offsets_typed() {
        let err = Json::parse_checked("[1, 2e+]").expect_err("bad number");
        assert_eq!((err.offset, err.message.as_str()), (7, "expected digit"));
        // The legacy string API renders the same error.
        assert_eq!(Json::parse("[1, 2e+]").unwrap_err(), err.to_string());
        // Errors are std::error::Error, so they compose with `?`.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("at byte 7"));
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = Json::parse("{\"a\": [1, 2,\n\t3]}").unwrap();
        let b = Json::parse("{\"a\":[1,2,3]}").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn object_keys_are_sorted_deterministically() {
        let v = Json::parse("{\"z\":1,\"a\":2}").unwrap();
        assert_eq!(v.to_string_compact(), "{\"a\":2,\"z\":1}");
    }
}
