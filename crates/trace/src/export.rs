//! Exporters: Chrome trace-event (Perfetto) JSON and a plain-text
//! timeline for terminal inspection.
//!
//! The Chrome trace-event format is the lingua franca of timeline
//! viewers — a document shaped `{"traceEvents":[...]}` loads directly
//! in `ui.perfetto.dev` or `chrome://tracing`. Progress periods map to
//! async nestable spans (`ph:"b"`/`"e"`, keyed by `cat` + `id`), the
//! waitlist residency of a period to a nested `wait` span, occupancy
//! samples to counter tracks (`ph:"C"`), and begin/exit/reject events
//! to instants (`ph:"i"`). Timestamps are microseconds, converted from
//! logical cycles at the machine's clock frequency.

use crate::event::{EventKind, RejectKind, TraceEvent, NO_PP};
use crate::sink::TraceReport;
use rda_metrics::Json;

/// One run's report plus the identity it should carry in a merged
/// multi-run trace document.
#[derive(Debug, Clone)]
pub struct LabeledReport<'a> {
    /// Chrome `pid` for this run's track group (unique per run).
    pub pid: u64,
    /// Human-readable track name, e.g. `"dgemm/strict#r0"`.
    pub label: String,
    /// The run's frozen trace.
    pub report: &'a TraceReport,
}

fn us(t_cycles: u64, freq_hz: f64) -> Json {
    Json::Num(t_cycles as f64 / freq_hz * 1e6)
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

fn pp_json(pp: u64) -> Json {
    if pp == NO_PP {
        Json::Null
    } else {
        num(pp)
    }
}

fn event_args(ev: &TraceEvent) -> Json {
    let mut pairs = vec![
        ("process", num(ev.process as u64)),
        ("site", num(ev.site as u64)),
        ("pp", pp_json(ev.pp)),
        ("resource", Json::Str(ev.resource.label().to_string())),
        ("amount", num(ev.amount)),
        ("fast", Json::Bool(ev.fast)),
    ];
    if matches!(ev.kind, EventKind::Resume | EventKind::Age | EventKind::Expire) {
        pairs.push(("wait_cycles", num(ev.wait_cycles)));
    }
    if matches!(ev.kind, EventKind::Reject | EventKind::Shed) {
        pairs.push(("reject", Json::Str(ev.reject.label().to_string())));
    }
    Json::obj(pairs)
}

fn base(ph: &str, name: String, cat: &str, pid: u64, ts: Json) -> Vec<(&'static str, Json)> {
    let mut pairs = Vec::with_capacity(8);
    pairs.push(("name", Json::Str(name)));
    pairs.push(("cat", Json::Str(cat.to_string())));
    pairs.push(("ph", Json::Str(ph.to_string())));
    pairs.push(("ts", ts));
    pairs.push(("pid", num(pid)));
    pairs.push(("tid", num(0)));
    pairs
}

fn push_event(out: &mut Vec<Json>, run: &LabeledReport<'_>, ev: &TraceEvent, freq_hz: f64) {
    let ts = us(ev.t_cycles, freq_hz);
    let pid = run.pid;
    match ev.kind {
        EventKind::Begin
        | EventKind::Exit
        | EventKind::Reject
        | EventKind::Retry
        | EventKind::BreakerTrip
        | EventKind::BreakerReset => {
            let name = if ev.kind == EventKind::Reject {
                format!("reject:{}", ev.reject.label())
            } else {
                ev.kind.label().to_string()
            };
            let mut pairs = base("i", name, "rda", pid, ts);
            pairs.push(("s", Json::Str("t".to_string())));
            pairs.push(("args", event_args(ev)));
            out.push(Json::obj(pairs));
        }
        EventKind::Shed | EventKind::Expire => {
            // An evicted victim or a deadline expiry removes a
            // waitlisted period for good: close its wait span. A
            // degraded direct-to-overflow admit (Shed with a pp but no
            // reject reason) instead opens a pp span — its later End
            // closes it. A tail-drop or breaker shed never allocated a
            // pp and is an instant only.
            if ev.pp != NO_PP {
                if ev.kind == EventKind::Shed && ev.reject == RejectKind::None {
                    let mut open = base("b", format!("pp@site{}", ev.site), "pp", pid, ts.clone());
                    open.push(("id", pp_json(ev.pp)));
                    open.push(("args", event_args(ev)));
                    out.push(Json::obj(open));
                } else {
                    let mut close = base("e", "waitlisted".to_string(), "wait", pid, ts.clone());
                    close.push(("id", pp_json(ev.pp)));
                    close.push(("args", event_args(ev)));
                    out.push(Json::obj(close));
                }
            }
            let mut pairs = base("i", ev.kind.label().to_string(), "rda", pid, ts);
            pairs.push(("s", Json::Str("t".to_string())));
            pairs.push(("args", event_args(ev)));
            out.push(Json::obj(pairs));
        }
        EventKind::Admit | EventKind::Resume | EventKind::Age => {
            // A resumed or aged period closes its `wait` span first.
            if ev.kind != EventKind::Admit {
                let mut close = base("e", "waitlisted".to_string(), "wait", pid, ts.clone());
                close.push(("id", pp_json(ev.pp)));
                close.push(("args", event_args(ev)));
                out.push(Json::obj(close));
            }
            let mut pairs = base(
                "b",
                format!("pp@site{}", ev.site),
                "pp",
                pid,
                ts,
            );
            pairs.push(("id", pp_json(ev.pp)));
            pairs.push(("args", event_args(ev)));
            out.push(Json::obj(pairs));
        }
        EventKind::Pause => {
            let mut pairs = base("b", "waitlisted".to_string(), "wait", pid, ts);
            pairs.push(("id", pp_json(ev.pp)));
            pairs.push(("args", event_args(ev)));
            out.push(Json::obj(pairs));
        }
        EventKind::End => {
            let mut pairs = base("e", format!("pp@site{}", ev.site), "pp", pid, ts);
            pairs.push(("id", pp_json(ev.pp)));
            pairs.push(("args", event_args(ev)));
            out.push(Json::obj(pairs));
        }
    }
}

/// Build a Chrome trace-event document from one or more labeled runs.
///
/// `freq_hz` converts logical cycles to the format's microsecond
/// timestamps. The result parses/loads as standard trace-event JSON:
/// `{"traceEvents": [...], "displayTimeUnit": "ms", "metadata": {...}}`.
pub fn chrome_trace_document(runs: &[LabeledReport<'_>], freq_hz: f64) -> Json {
    let mut events = Vec::new();
    for run in runs {
        // Name the run's track group.
        let mut meta = base("M", "process_name".to_string(), "__metadata", run.pid, num(0));
        meta.push((
            "args",
            Json::obj([("name", Json::Str(run.label.clone()))]),
        ));
        events.push(Json::obj(meta));

        for ev in &run.report.events {
            push_event(&mut events, run, ev, freq_hz);
        }
        for s in &run.report.occupancy {
            // Node 0 keeps the scalar-era track names so existing
            // viewer bookmarks (and the schema snapshot) are stable;
            // additional NUMA nodes each get their own counter tracks.
            let (llc_name, sched_name) = if s.node == 0 {
                ("llc_occupancy".to_string(), "scheduler".to_string())
            } else {
                (
                    format!("llc_occupancy/node{}", s.node),
                    format!("scheduler/node{}", s.node),
                )
            };
            let mut llc = base("C", llc_name, "occupancy", run.pid, us(s.t_cycles, freq_hz));
            llc.push((
                "args",
                Json::obj([("usage", num(s.usage)), ("overflow", num(s.overflow))]),
            ));
            events.push(Json::obj(llc));
            let mut sys = base("C", sched_name, "occupancy", run.pid, us(s.t_cycles, freq_hz));
            sys.push((
                "args",
                Json::obj([
                    ("waitlisted", num(s.waitlisted as u64)),
                    ("busy_cores", num(s.busy_cores as u64)),
                ]),
            ));
            events.push(Json::obj(sys));
        }
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
        (
            "metadata",
            Json::obj([
                ("tool", Json::Str("rda-trace".to_string())),
                ("freq_hz", Json::Num(freq_hz)),
                ("runs", num(runs.len() as u64)),
            ]),
        ),
    ])
}

fn fmt_us(t_cycles: u64, freq_hz: f64) -> String {
    format!("{:>12.3}us", t_cycles as f64 / freq_hz * 1e6)
}

/// Render one run's trace as a human-readable timeline plus summary
/// table (used by the `trace_dump` binary).
pub fn render_text(label: &str, report: &TraceReport, freq_hz: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!("=== trace: {label} ===\n"));
    let c = &report.counts;
    out.push_str("-- summary --\n");
    out.push_str(&format!(
        "  begins {:>8}  admits {:>8} (fast {}, slow {})\n",
        c.begins,
        c.fast_admits + c.slow_admits,
        c.fast_admits,
        c.slow_admits
    ));
    out.push_str(&format!(
        "  pauses {:>8}  resumes {:>7}  aged {:>6}\n",
        c.pauses, c.resumes, c.aged
    ));
    out.push_str(&format!(
        "  ends   {:>8} (fast {})  exits {:>5}  rejects {:>5}\n",
        c.ends, c.fast_ends, c.exits, c.rejects
    ));
    let w = &report.wait;
    out.push_str(&format!(
        "  wait cycles: samples {}  p50 {}  p95 {}  max {}\n",
        w.samples, w.p50, w.p95, w.max
    ));
    if !report.occupancy.is_empty() {
        let mut nodes: Vec<u32> = report.occupancy.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        for node in nodes {
            let per: Vec<_> = report.occupancy.iter().filter(|s| s.node == node).collect();
            let peak = per.iter().map(|s| s.usage + s.overflow).max().unwrap_or(0);
            let last = per.last().expect("non-empty by construction");
            out.push_str(&format!(
                "  occupancy[node{}]: {} samples ({} dropped), peak {} B, final {} B (+{} B overflow)\n",
                node,
                per.len(),
                report.dropped_occupancy,
                peak,
                last.usage,
                last.overflow
            ));
        }
    }
    out.push_str(&format!(
        "-- events (showing {} of {}) --\n",
        report.events.len(),
        report.events.len() as u64 + report.dropped_events
    ));
    for ev in &report.events {
        let pp = if ev.pp == NO_PP {
            "-".to_string()
        } else {
            ev.pp.to_string()
        };
        let mut line = format!(
            "[{}] {:<7} pid={:<4} site={:<3} pp={:<6} {:<5} amount={}",
            fmt_us(ev.t_cycles, freq_hz),
            ev.kind.label(),
            ev.process,
            ev.site,
            pp,
            ev.resource.label(),
            ev.amount
        );
        if ev.fast {
            line.push_str(" fast");
        }
        if matches!(ev.kind, EventKind::Resume | EventKind::Age | EventKind::Expire) {
            line.push_str(&format!(" waited={}cy", ev.wait_cycles));
        }
        if ev.kind == EventKind::Reject
            || (ev.kind == EventKind::Shed && ev.reject != RejectKind::None)
        {
            line.push_str(&format!(" reason={}", ev.reject.label()));
        }
        line.push('\n');
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{RejectKind, TraceResource};
    use crate::sink::{OccupancySample, TraceConfig, TraceSink};

    fn sample_report() -> TraceReport {
        let mut sink = TraceSink::new(TraceConfig::default());
        let mut begin = TraceEvent::at(100, EventKind::Begin);
        begin.process = 1;
        begin.site = 7;
        begin.amount = 4096;
        sink.record(begin);
        let mut admit = begin;
        admit.kind = EventKind::Admit;
        admit.pp = 42;
        sink.record(admit);
        let mut pause = TraceEvent::at(150, EventKind::Pause);
        pause.process = 2;
        pause.pp = 43;
        pause.amount = 9000;
        sink.record(pause);
        let mut resume = pause;
        resume.kind = EventKind::Resume;
        resume.t_cycles = 900;
        resume.wait_cycles = 750;
        sink.record(resume);
        let mut end = admit;
        end.kind = EventKind::End;
        end.t_cycles = 2000;
        sink.record(end);
        let mut reject = TraceEvent::at(2100, EventKind::Reject);
        reject.process = 3;
        reject.resource = TraceResource::MemBandwidth;
        reject.reject = RejectKind::DemandOverflow;
        sink.record(reject);
        sink.record_occupancy(OccupancySample {
            t_cycles: 1000,
            node: 0,
            usage: 13_096,
            overflow: 0,
            waitlisted: 1,
            busy_cores: 2,
        });
        sink.into_report()
    }

    #[test]
    fn chrome_document_parses_and_has_required_fields() {
        let report = sample_report();
        let runs = [LabeledReport {
            pid: 1,
            label: "unit/strict#r0".to_string(),
            report: &report,
        }];
        let doc = chrome_trace_document(&runs, 1.0e9);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("exporter emits valid JSON");
        assert_eq!(parsed, doc, "pretty output round-trips");

        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        for ev in events {
            for key in ["name", "ph", "ts", "pid"] {
                assert!(ev.get(key).is_some(), "event missing {key}: {ev}");
            }
        }
        // Period 42 opens and closes as an async pp span.
        let phases: Vec<(&str, Option<f64>)> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("pp"))
            .map(|e| {
                (
                    e.get("ph").and_then(Json::as_str).unwrap(),
                    e.get("id").and_then(Json::as_f64),
                )
            })
            .collect();
        assert!(phases.contains(&("b", Some(42.0))));
        assert!(phases.contains(&("e", Some(42.0))));
        // The waitlisted period nests a wait span that closes at resume.
        let wait_phases: Vec<&str> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("wait"))
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(wait_phases, vec!["b", "e"]);
        // Occupancy samples become counter tracks.
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
        // Cycle → microsecond conversion at 1 GHz: 2000 cycles = 2 us.
        let end_ts = events
            .iter()
            .find(|e| {
                e.get("cat").and_then(Json::as_str) == Some("pp")
                    && e.get("ph").and_then(Json::as_str) == Some("e")
            })
            .and_then(|e| e.get("ts").and_then(Json::as_f64))
            .unwrap();
        assert!((end_ts - 2.0).abs() < 1e-9);
    }

    #[test]
    fn text_rendering_contains_summary_and_timeline() {
        let report = sample_report();
        let text = render_text("unit/strict#r0", &report, 1.0e9);
        assert!(text.contains("=== trace: unit/strict#r0 ==="));
        assert!(text.contains("begins"));
        assert!(text.contains("wait cycles: samples 1"));
        assert!(text.contains("reason=demand_overflow"));
        assert!(text.contains("waited=750cy"));
        assert!(text.contains("occupancy[node0]: 1 samples"));
    }
}
