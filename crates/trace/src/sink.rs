//! The per-run recorder and its frozen end-of-run report.

use crate::event::{EventKind, TraceEvent};
use crate::hist::Log2Hist;
use crate::ring::Ring;

/// Capacity limits for a [`TraceSink`]'s ring buffers.
///
/// Both buffers are allocated once at construction; recording is
/// allocation-free thereafter. When a buffer fills, the oldest entries
/// are overwritten and counted as dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum scheduling events retained (newest win).
    pub event_capacity: usize,
    /// Maximum occupancy samples retained (newest win).
    pub occupancy_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            event_capacity: 16_384,
            occupancy_capacity: 8_192,
        }
    }
}

/// One sample of LLC occupancy, taken per simulated tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySample {
    /// Logical timestamp in simulated cycles.
    pub t_cycles: u64,
    /// NUMA node the sample describes (0 on single-node machines, so
    /// scalar-era traces keep their original track layout).
    pub node: u32,
    /// Bytes accounted in the nominal LLC load table.
    pub usage: u64,
    /// Bytes accounted in the aging overflow bucket.
    pub overflow: u64,
    /// Periods parked on the LLC waitlist.
    pub waitlisted: u32,
    /// Cores executing a runnable thread this tick.
    pub busy_cores: u32,
}

/// Predicate-outcome and lifecycle counters.
///
/// Unlike the ring buffers these never drop: they are exact totals for
/// the whole run even when the event ring wrapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredicateCounts {
    /// `pp_begin` calls observed.
    pub begins: u64,
    /// Admissions served by the memoised fast path.
    pub fast_admits: u64,
    /// Admissions decided by the full predicate.
    pub slow_admits: u64,
    /// Periods waitlisted at begin time (predicate said no).
    pub pauses: u64,
    /// Waitlisted periods later admitted nominally.
    pub resumes: u64,
    /// Waitlisted periods force-admitted by aging.
    pub aged: u64,
    /// `pp_end` completions.
    pub ends: u64,
    /// Completions served by the memoised fast path.
    pub fast_ends: u64,
    /// Process exits observed.
    pub exits: u64,
    /// Typed rejections (audit refusals, unknown/double ends, …).
    pub rejects: u64,
    /// Arrivals shed (or waiters evicted) by overload control.
    pub shed: u64,
    /// Waitlisted periods expired past their deadline.
    pub expired: u64,
    /// Client-side retries of shed or expired arrivals.
    pub retried: u64,
    /// Saturation-breaker trips.
    pub breaker_trips: u64,
    /// Saturation-breaker resets after recovery hysteresis.
    pub breaker_resets: u64,
}

/// One non-empty wait-histogram bucket in a [`WaitSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitBucket {
    /// Largest wait (cycles) this bucket can hold.
    pub upper_cycles: u64,
    /// Samples that landed in it.
    pub count: u64,
}

/// Waitlist-residency percentiles derived from the log₂ histogram.
///
/// `p50`/`p95` are the upper bound of the histogram bucket containing
/// the rank (clamped to `max`); `max` is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaitSummary {
    /// Waits recorded (one per resume or aged admission).
    pub samples: u64,
    /// Median wait, in cycles (bucket upper bound).
    pub p50: u64,
    /// 95th-percentile wait, in cycles (bucket upper bound).
    pub p95: u64,
    /// Exact longest wait, in cycles.
    pub max: u64,
}

/// The frozen end-of-run view of a [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Retained scheduling events, oldest → newest.
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring was full.
    pub dropped_events: u64,
    /// Retained occupancy samples, oldest → newest.
    pub occupancy: Vec<OccupancySample>,
    /// Occupancy samples overwritten because the ring was full.
    pub dropped_occupancy: u64,
    /// Exact lifecycle totals for the whole run.
    pub counts: PredicateCounts,
    /// Waitlist-residency percentiles.
    pub wait: WaitSummary,
    /// Non-empty wait-histogram buckets, ascending.
    pub wait_buckets: Vec<WaitBucket>,
}

/// Bounded, allocation-free per-run event recorder.
///
/// Created from a [`TraceConfig`], fed by the RDA extension (events)
/// and the system simulator (occupancy samples), and frozen into a
/// [`TraceReport`] at end of run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSink {
    events: Ring<TraceEvent>,
    occupancy: Ring<OccupancySample>,
    wait_hist: Log2Hist,
    counts: PredicateCounts,
}

impl TraceSink {
    /// A fresh sink with buffers sized by `cfg` (allocated up front).
    pub fn new(cfg: TraceConfig) -> Self {
        TraceSink {
            events: Ring::new(cfg.event_capacity),
            occupancy: Ring::new(cfg.occupancy_capacity),
            wait_hist: Log2Hist::new(),
            counts: PredicateCounts::default(),
        }
    }

    /// Record one scheduling event (allocation-free).
    pub fn record(&mut self, ev: TraceEvent) {
        match ev.kind {
            EventKind::Begin => self.counts.begins += 1,
            EventKind::Admit => {
                if ev.fast {
                    self.counts.fast_admits += 1;
                } else {
                    self.counts.slow_admits += 1;
                }
            }
            EventKind::Pause => self.counts.pauses += 1,
            EventKind::Resume => {
                self.counts.resumes += 1;
                self.wait_hist.record(ev.wait_cycles);
            }
            EventKind::Age => {
                self.counts.aged += 1;
                self.wait_hist.record(ev.wait_cycles);
            }
            EventKind::End => {
                self.counts.ends += 1;
                if ev.fast {
                    self.counts.fast_ends += 1;
                }
            }
            EventKind::Exit => self.counts.exits += 1,
            EventKind::Reject => self.counts.rejects += 1,
            EventKind::Shed => self.counts.shed += 1,
            EventKind::Expire => {
                // An expiry ends a waitlist residency just like a
                // resume or aged admission; its wait belongs in the
                // same histogram.
                self.counts.expired += 1;
                self.wait_hist.record(ev.wait_cycles);
            }
            EventKind::Retry => self.counts.retried += 1,
            EventKind::BreakerTrip => self.counts.breaker_trips += 1,
            EventKind::BreakerReset => self.counts.breaker_resets += 1,
        }
        self.events.push(ev);
    }

    /// Record one occupancy sample (allocation-free).
    pub fn record_occupancy(&mut self, sample: OccupancySample) {
        self.occupancy.push(sample);
    }

    /// Events currently retained, oldest → newest.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.to_vec()
    }

    /// Exact lifecycle totals so far.
    pub fn counts(&self) -> &PredicateCounts {
        &self.counts
    }

    /// Freeze the current state into a [`TraceReport`].
    pub fn report(&self) -> TraceReport {
        TraceReport {
            events: self.events.to_vec(),
            dropped_events: self.events.dropped(),
            occupancy: self.occupancy.to_vec(),
            dropped_occupancy: self.occupancy.dropped(),
            counts: self.counts,
            wait: WaitSummary {
                samples: self.wait_hist.count(),
                p50: self.wait_hist.quantile(0.50),
                p95: self.wait_hist.quantile(0.95),
                max: self.wait_hist.max(),
            },
            wait_buckets: self
                .wait_hist
                .nonzero_buckets()
                .into_iter()
                .map(|(upper_cycles, count)| WaitBucket {
                    upper_cycles,
                    count,
                })
                .collect(),
        }
    }

    /// Consume the sink, freezing it into a [`TraceReport`].
    pub fn into_report(self) -> TraceReport {
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent};

    fn ev(t: u64, kind: EventKind) -> TraceEvent {
        TraceEvent::at(t, kind)
    }

    #[test]
    fn counts_track_every_kind_even_after_wrap() {
        let mut sink = TraceSink::new(TraceConfig {
            event_capacity: 4,
            occupancy_capacity: 2,
        });
        sink.record(ev(1, EventKind::Begin));
        let mut fast = ev(2, EventKind::Admit);
        fast.fast = true;
        sink.record(fast);
        sink.record(ev(3, EventKind::Pause));
        let mut resume = ev(9, EventKind::Resume);
        resume.wait_cycles = 6;
        sink.record(resume);
        let mut aged = ev(40, EventKind::Age);
        aged.wait_cycles = 37;
        sink.record(aged);
        sink.record(ev(50, EventKind::End));
        sink.record(ev(60, EventKind::Exit));
        sink.record(ev(61, EventKind::Reject));

        let report = sink.into_report();
        assert_eq!(report.events.len(), 4, "ring keeps the newest four");
        assert_eq!(report.dropped_events, 4);
        let c = report.counts;
        assert_eq!(
            (c.begins, c.fast_admits, c.slow_admits, c.pauses),
            (1, 1, 0, 1)
        );
        assert_eq!((c.resumes, c.aged, c.ends, c.exits, c.rejects), (1, 1, 1, 1, 1));
        assert_eq!(
            (c.shed, c.expired, c.retried, c.breaker_trips, c.breaker_resets),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(report.wait.samples, 2, "histogram never drops");
        assert_eq!(report.wait.max, 37);
        assert!(report.wait.p50 >= 6);
        assert_eq!(report.wait_buckets.iter().map(|b| b.count).sum::<u64>(), 2);
    }

    #[test]
    fn overload_kinds_feed_their_counters() {
        let mut sink = TraceSink::new(TraceConfig::default());
        sink.record(ev(1, EventKind::Shed));
        let mut expire = ev(2, EventKind::Expire);
        expire.wait_cycles = 12;
        sink.record(expire);
        sink.record(ev(3, EventKind::Retry));
        sink.record(ev(4, EventKind::BreakerTrip));
        sink.record(ev(5, EventKind::BreakerReset));

        let report = sink.into_report();
        let c = report.counts;
        assert_eq!(
            (c.shed, c.expired, c.retried, c.breaker_trips, c.breaker_resets),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(report.wait.samples, 1, "expiry ends a waitlist residency");
        assert_eq!(report.wait.max, 12);
    }

    #[test]
    fn occupancy_ring_is_bounded() {
        let mut sink = TraceSink::new(TraceConfig {
            event_capacity: 1,
            occupancy_capacity: 2,
        });
        for t in 0..5u64 {
            sink.record_occupancy(OccupancySample {
                t_cycles: t,
                node: 0,
                usage: t * 10,
                overflow: 0,
                waitlisted: 0,
                busy_cores: 1,
            });
        }
        let report = sink.report();
        assert_eq!(report.occupancy.len(), 2);
        assert_eq!(report.dropped_occupancy, 3);
        assert_eq!(report.occupancy[0].t_cycles, 3);
        assert_eq!(report.occupancy[1].t_cycles, 4);
    }
}
