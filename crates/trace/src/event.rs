//! The trace event vocabulary.
//!
//! One [`TraceEvent`] is recorded per observable action of the RDA
//! extension. Events are plain `Copy` records (no heap payload) so the
//! ring buffer can overwrite them without allocating.

/// Sentinel for events recorded before a period id exists (a `Begin`
/// is emitted before the registry allocates, and a rejected begin never
/// allocates at all).
pub const NO_PP: u64 = u64::MAX;

/// Sentinel node id for events with no placed node (a `Begin` precedes
/// placement; rejects and sheds never place).
pub const NO_NODE: u32 = u32::MAX;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A `pp_begin` call arrived (before auditing or admission).
    Begin,
    /// A period was admitted at begin time (fast or slow path).
    Admit,
    /// A period was waitlisted; its process pauses.
    Pause,
    /// A waitlisted period was admitted nominally by the predicate.
    Resume,
    /// A waitlisted period was force-admitted by aging into the
    /// overflow bucket.
    Age,
    /// A period completed via `pp_end`.
    End,
    /// A process exited; its open periods were reclaimed.
    Exit,
    /// A call was rejected with a typed error (see [`RejectKind`]).
    Reject,
    /// Overload control shed an arrival or evicted a waiter (bounded
    /// gate or open breaker; see [`RejectKind`] for which).
    Shed,
    /// A waitlisted period expired past its deadline.
    Expire,
    /// The client retried a previously shed or expired arrival.
    Retry,
    /// The saturation circuit breaker tripped open for a resource.
    BreakerTrip,
    /// The saturation circuit breaker reset after recovery hysteresis.
    BreakerReset,
}

impl EventKind {
    /// Short lowercase label (stable; used by exporters).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::Admit => "admit",
            EventKind::Pause => "pause",
            EventKind::Resume => "resume",
            EventKind::Age => "age",
            EventKind::End => "end",
            EventKind::Exit => "exit",
            EventKind::Reject => "reject",
            EventKind::Shed => "shed",
            EventKind::Expire => "expire",
            EventKind::Retry => "retry",
            EventKind::BreakerTrip => "breaker_trip",
            EventKind::BreakerReset => "breaker_reset",
        }
    }
}

/// Mirror of the core crate's resource enums, kept here so `rda-core`
/// can depend on this crate without a cycle. Covers both the scalar
/// extension's resource pair and the topology engine's per-node kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceResource {
    /// Last-level cache capacity (bytes).
    Llc,
    /// Memory bandwidth (bytes/second).
    MemBandwidth,
    /// DRAM capacity (bytes; topology engine only).
    DramCap,
}

impl TraceResource {
    /// Short lowercase label (stable; used by exporters).
    pub fn label(self) -> &'static str {
        match self {
            TraceResource::Llc => "llc",
            TraceResource::MemBandwidth => "membw",
            TraceResource::DramCap => "dram",
        }
    }
}

/// Why a call was rejected (payload of [`EventKind::Reject`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectKind {
    /// Not a rejection (every non-`Reject` event).
    None,
    /// The demand auditor (or the 64-bit load-table guard) refused the
    /// declared demand.
    DemandOverflow,
    /// `pp_end` of an id that was never allocated.
    UnknownPp,
    /// `pp_end` of a period that already ended.
    DoubleEnd,
    /// `pp_end` of a period still parked on the waitlist.
    EndWhileWaitlisted,
    /// The bounded admission gate shed at the waitlist cap.
    WaitlistFull,
    /// The open saturation breaker shed the arrival.
    BreakerOpen,
}

impl RejectKind {
    /// Short label (stable; used by exporters).
    pub fn label(self) -> &'static str {
        match self {
            RejectKind::None => "none",
            RejectKind::DemandOverflow => "demand_overflow",
            RejectKind::UnknownPp => "unknown_pp",
            RejectKind::DoubleEnd => "double_end",
            RejectKind::EndWhileWaitlisted => "end_while_waitlisted",
            RejectKind::WaitlistFull => "waitlist_full",
            RejectKind::BreakerOpen => "breaker_open",
        }
    }
}

/// One recorded scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical timestamp in simulated cycles.
    pub t_cycles: u64,
    /// What happened.
    pub kind: EventKind,
    /// NUMA node the event concerns (0 on single-node machines; the
    /// topology engine sets the placed node, [`NO_NODE`] before
    /// placement or for events with no node).
    pub node: u32,
    /// The calling (or exiting) process id.
    pub process: u32,
    /// Static call site of the period (0 when not applicable).
    pub site: u32,
    /// Progress-period id, or [`NO_PP`] when none was allocated.
    pub pp: u64,
    /// The resource the period demands.
    pub resource: TraceResource,
    /// Demand payload in resource units: the declared amount for
    /// `Begin`/`Reject`, the accounted amount for
    /// `Admit`/`Pause`/`Resume`/`Age`/`End`, and the number of
    /// reclaimed periods for `Exit`.
    pub amount: u64,
    /// Cycles spent waitlisted (`Resume`/`Age` only, else 0).
    pub wait_cycles: u64,
    /// Whether the memoised fast path served the call (`Admit`/`End`).
    pub fast: bool,
    /// Rejection reason (`Reject` only, else [`RejectKind::None`]).
    pub reject: RejectKind,
}

impl TraceEvent {
    /// A blank event template; emitters override the relevant fields.
    pub fn at(t_cycles: u64, kind: EventKind) -> Self {
        TraceEvent {
            t_cycles,
            kind,
            node: 0,
            process: 0,
            site: 0,
            pp: NO_PP,
            resource: TraceResource::Llc,
            amount: 0,
            wait_cycles: 0,
            fast: false,
            reject: RejectKind::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let kinds = [
            EventKind::Begin,
            EventKind::Admit,
            EventKind::Pause,
            EventKind::Resume,
            EventKind::Age,
            EventKind::End,
            EventKind::Exit,
            EventKind::Reject,
            EventKind::Shed,
            EventKind::Expire,
            EventKind::Retry,
            EventKind::BreakerTrip,
            EventKind::BreakerReset,
        ];
        let mut labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len());
        assert_eq!(EventKind::Begin.label(), "begin");
        assert_eq!(EventKind::Shed.label(), "shed");
        assert_eq!(EventKind::BreakerTrip.label(), "breaker_trip");
        assert_eq!(TraceResource::Llc.label(), "llc");
        assert_eq!(RejectKind::DoubleEnd.label(), "double_end");
        assert_eq!(RejectKind::WaitlistFull.label(), "waitlist_full");
        assert_eq!(RejectKind::BreakerOpen.label(), "breaker_open");

        let rejects = [
            RejectKind::None,
            RejectKind::DemandOverflow,
            RejectKind::UnknownPp,
            RejectKind::DoubleEnd,
            RejectKind::EndWhileWaitlisted,
            RejectKind::WaitlistFull,
            RejectKind::BreakerOpen,
        ];
        let mut rlabels: Vec<&str> = rejects.iter().map(|k| k.label()).collect();
        rlabels.sort_unstable();
        rlabels.dedup();
        assert_eq!(rlabels.len(), rejects.len());
    }

    #[test]
    fn template_defaults_are_inert() {
        let e = TraceEvent::at(7, EventKind::Begin);
        assert_eq!(e.t_cycles, 7);
        assert_eq!(e.pp, NO_PP);
        assert_eq!(e.reject, RejectKind::None);
        assert!(!e.fast);
    }
}
