//! # rda-trace
//!
//! First-class observability for RDA scheduling runs.
//!
//! The rest of the workspace only exposes end-of-run aggregates
//! ([`rda_core`-style counter structs]); when a sweep digest moves, the
//! *why* — time spent waitlisted, predicate outcomes, LLC occupancy
//! over time — is invisible. This crate records the missing event
//! stream without perturbing the simulation:
//!
//! * [`TraceSink`] — a **bounded, allocation-free** per-run recorder:
//!   fixed-capacity ring buffers (oldest events overwritten, drops
//!   counted) for scheduling events and occupancy samples, plus derived
//!   instruments that never drop — a log₂ waitlist-residency histogram
//!   ([`Log2Hist`]) and predicate-outcome counters
//!   ([`PredicateCounts`]).
//! * [`TraceEvent`] — one begin/admit/pause/resume/age/end/exit/reject
//!   event with a logical-cycle timestamp and pid/pp/resource/demand
//!   payload.
//! * [`TraceReport`] — the frozen end-of-run view: events, occupancy
//!   timeline, and wait-cycle summary percentiles (p50/p95/max).
//! * [`chrome_trace_document`] — a Chrome trace-event (Perfetto)
//!   exporter built on the workspace's hand-rolled
//!   [`rda_metrics::Json`], and [`render_text`] for a human-readable
//!   timeline + summary table.
//!
//! The recorder is deliberately independent of `rda-core` (which
//! depends on *this* crate to emit events behind a zero-cost
//! `Option<TraceSink>`): resources are mirrored as [`TraceResource`]
//! and ids are plain integers, so tracing can never change scheduling
//! behaviour — run digests are byte-identical with tracing on or off.

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod hist;
pub mod ring;
pub mod sink;

pub use event::{EventKind, RejectKind, TraceEvent, TraceResource, NO_NODE, NO_PP};
pub use export::{chrome_trace_document, render_text, LabeledReport};
pub use hist::Log2Hist;
pub use ring::Ring;
pub use sink::{
    OccupancySample, PredicateCounts, TraceConfig, TraceReport, TraceSink, WaitBucket, WaitSummary,
};
