//! A log₂-bucket histogram for cycle durations.
//!
//! Wait times span eight orders of magnitude (a fast resume is tens of
//! cycles, an aged force-admission millions), so the residency
//! instrument buckets by bit length: bucket *i* holds values `v` with
//! `2^(i-1) ≤ v < 2^i` (bucket 0 holds exactly 0). Memory is a fixed
//! 65-word array — the histogram never drops a sample — and quantiles
//! are answered as the upper bound of the bucket containing the rank,
//! clamped to the exact observed maximum.

/// Fixed-size log₂ histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Hist {
    buckets: [u64; 65],
    count: u64,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Hist {
            buckets: [0; 65],
            count: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (the largest value it can hold).
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket containing that rank, clamped to the observed maximum.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(upper_bound, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_split_by_bit_length() {
        let mut h = Log2Hist::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.nonzero_buckets();
        // 0 | 1 | 2,3 | 4..7 | 8 | 1024 | u64::MAX
        assert_eq!(
            buckets,
            vec![
                (0, 1),
                (1, 1),
                (3, 2),
                (7, 2),
                (15, 1),
                (2047, 1),
                (u64::MAX, 1)
            ]
        );
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_max() {
        let mut h = Log2Hist::new();
        for _ in 0..90 {
            h.record(100); // bucket upper 127
        }
        for _ in 0..10 {
            h.record(5_000); // bucket upper 8191, max 5000
        }
        assert_eq!(h.quantile(0.5), 127);
        assert_eq!(h.quantile(0.95), 5_000, "clamped to exact max");
        assert_eq!(h.quantile(1.0), 5_000);
        assert_eq!(h.quantile(0.0), 127, "rank floors at the first sample");
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Log2Hist::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Log2Hist::new();
        let mut x = 1u64;
        for i in 0..1_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            h.record(x >> (x % 50));
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            assert!(v <= h.max());
            last = v;
        }
    }
}
