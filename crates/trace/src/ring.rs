//! A bounded ring buffer that overwrites its oldest entry when full.
//!
//! Capacity is reserved once at construction; every subsequent
//! [`Ring::push`] is allocation-free. Overwritten entries are counted
//! in [`Ring::dropped`] so a report can say "kept the last N of M".

/// Fixed-capacity ring buffer of `Copy` records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring<T> {
    buf: Vec<T>,
    capacity: usize,
    /// Index of the oldest element (valid when `buf.len() == capacity`).
    head: usize,
    dropped: u64,
}

impl<T: Copy> Ring<T> {
    /// A ring holding at most `capacity` entries (allocated up front).
    pub fn new(capacity: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Append an entry, overwriting the oldest when full.
    pub fn push(&mut self, value: T) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries that were overwritten (or refused by a zero-capacity
    /// ring) — total recorded = `len() + dropped()`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (older, newer) = self.buf.split_at(self.head.min(self.buf.len()));
        newer.iter().chain(older.iter())
    }

    /// The held entries, oldest → newest.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = Ring::new(3);
        for v in 0..3u32 {
            r.push(v);
        }
        assert_eq!(r.to_vec(), vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
        r.push(3);
        r.push(4);
        assert_eq!(r.to_vec(), vec![2, 3, 4], "oldest-first order kept");
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn pushes_never_reallocate() {
        let mut r = Ring::new(8);
        let cap_before = r.buf.capacity();
        for v in 0..100u64 {
            r.push(v);
        }
        assert_eq!(r.buf.capacity(), cap_before, "capacity reserved up front");
        assert_eq!(r.len(), 8);
        assert_eq!(r.dropped(), 92);
        assert_eq!(r.to_vec(), (92..100).collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let mut r = Ring::new(0);
        r.push(1u8);
        r.push(2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.capacity(), 0);
    }
}
