//! CI entry point for the bounded model checker.
//!
//! Exhaustively explores every interleaving of the built-in scenario
//! templates under both gating policies, printing the covered volume
//! (distinct states, pruned transitions, completed interleavings) per
//! run. Exits non-zero — printing the replayable counterexample trace —
//! on the first divergence between `rda-core` and the reference model.

use rda_check::{explore, Template};
use rda_core::{DemandAudit, PolicyKind, RdaConfig};
use std::time::Instant;

/// Small capacity keeps the state space rich (every admission class is
/// reachable) while the aggressive timeout/interval exercise aging and
/// fast-path freshness within a few hundred virtual cycles.
const LLC_CAPACITY: u64 = 16_000;

fn check_cfg(policy: PolicyKind) -> RdaConfig {
    let mut cfg = rda_check::trace::default_config();
    cfg.policy = policy;
    cfg.llc_capacity = LLC_CAPACITY;
    cfg.demand_audit = DemandAudit::Clamp;
    cfg.waitlist_timeout_cycles = Some(1_200);
    cfg.min_eval_interval_cycles = 1_000;
    cfg
}

fn main() {
    let policies = [PolicyKind::Strict, PolicyKind::compromise_default()];
    let templates = [
        Template::three_process_contention(LLC_CAPACITY),
        Template::faulty_ops(LLC_CAPACITY),
        Template::oversized_pair(LLC_CAPACITY),
    ];

    let mut failed = false;
    let wall = Instant::now();
    for policy in policies {
        let cfg = check_cfg(policy);
        for tpl in &templates {
            let started = Instant::now();
            let ex = explore(&cfg, tpl);
            let elapsed = started.elapsed();
            println!(
                "{:<26} {:<16} states={:<8} pruned={:<8} interleavings={:<8} {:>8.2?}",
                tpl.name, policy, ex.states, ex.pruned, ex.completed, elapsed
            );
            if let Some((trace, div)) = ex.divergence {
                failed = true;
                eprintln!("\nDIVERGENCE in {} under {policy}:\n  {div}", tpl.name);
                eprintln!("--- replayable counterexample trace ---\n{}", trace.to_text());
            }
        }
    }
    println!("total: {:.2?}", wall.elapsed());
    if failed {
        eprintln!("model check FAILED: implementation and reference model disagree");
        std::process::exit(1);
    }
    println!("model check passed: zero divergences across the bounded space");
}
