//! The `.trace` text format for the topology engine: replayable event
//! traces over multi-node, multi-resource, layered configurations.
//!
//! A topology trace extends the scalar format of [`crate::trace`] with
//! a machine header and vector demands:
//!
//! ```text
//! # Two NUMA nodes, a guaranteed latency layer, vector demands.
//! node 100 50 1000
//! node 100 50 1000
//! layer batch strict
//! layer latency strict guarantee 40 0 0
//! assign 2 1
//! audit trust
//!
//! vbegin 0    0 0 60 0 0
//! vbegin 10   2 1 30 10 0
//! end    20   0
//! ```
//!
//! Header keys (each optional; the default is the single-node
//! compatibility lift of the scalar default header):
//!
//! * `node <llc> <membw> <dram>` — appends one NUMA node; the first
//!   `node` line replaces the default topology
//! * `layer <name> <policy...> [guarantee <llc> <membw> <dram>]` —
//!   appends one layer (policy spelled as in the scalar format); the
//!   first `layer` line replaces the default single layer
//! * `assign <process> <layer>` — pins a process to a layer by index
//! * `audit`, `timeout`, `overload`, `deadline`, `breaker` — exactly as
//!   in the scalar format
//!
//! Events (amounts accept raw bytes or a decimal `mb` suffix):
//!
//! * `vbegin <t> <process> <site> <llc> <membw> <dram>` — a vector
//!   demand; `begin <t> <process> <site> <llc|membw|dram> <amount>` is
//!   accepted as single-component sugar
//! * `end <t> <pp>` / `exit <t> <process>` / `age <t>` — as scalar
//! * `retry <t> <process> <site> <llc|membw|dram>`
//!
//! [`lift`] converts any scalar [`TraceDoc`] into this vocabulary under
//! [`TopoConfig::compat`] — the bridge that replays the whole legacy
//! corpus through the topology oracle (DESIGN.md §9's compatibility
//! argument, checked event by event).

use crate::trace::{parse_amount, TraceDoc, TraceEvent};
use rda_core::{
    BreakerConfig, Demand, DemandAudit, LayerId, LayerSet, LayerSpec, OverloadConfig, PolicyKind,
    Resource, ResourceKind, ShedPolicy, TopoConfig, TopoSpec,
};
use std::fmt::Write as _;

/// One replayable topology-engine call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoEvent {
    /// `pp_begin(process, site, demand)` at cycle `t`.
    Begin {
        /// Call time, cycles.
        t: u64,
        /// Calling process.
        process: u32,
        /// Static call site.
        site: u32,
        /// Declared demand vector (pre-audit).
        demand: Demand,
    },
    /// `pp_end(pp)` at cycle `t` (pp ids sequential from 0 in begin
    /// order).
    End {
        /// Call time, cycles.
        t: u64,
        /// The period id to end.
        pp: u64,
    },
    /// `process_exit(process)` at cycle `t`.
    Exit {
        /// Call time, cycles.
        t: u64,
        /// The exiting process.
        process: u32,
    },
    /// `age_waitlist()` at cycle `t`.
    Age {
        /// Call time, cycles.
        t: u64,
    },
    /// `note_retry(process, site, kind)` at cycle `t`.
    Retry {
        /// Call time, cycles.
        t: u64,
        /// The retrying process.
        process: u32,
        /// Static call site of the retried demand.
        site: u32,
        /// The resource kind the retried demand targets.
        kind: ResourceKind,
    },
}

/// A parsed topology trace: configuration plus the event sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoDoc {
    /// Configuration both machines replay under.
    pub cfg: TopoConfig,
    /// The events, in call order.
    pub events: Vec<TopoEvent>,
}

/// The header defaults: the scalar default header lifted to one node.
pub fn default_topo_config() -> TopoConfig {
    TopoConfig::compat(&crate::trace::default_config())
}

fn parse_kind(word: &str) -> Option<ResourceKind> {
    match word {
        "llc" => Some(ResourceKind::Llc),
        "membw" => Some(ResourceKind::MemBw),
        "dram" => Some(ResourceKind::DramCap),
        _ => None,
    }
}

fn parse_policy(
    fields: &[&str],
    fail: &dyn Fn(&str) -> String,
) -> Result<(PolicyKind, usize), String> {
    match fields {
        ["default", ..] => Ok((PolicyKind::DefaultOnly, 1)),
        ["strict", ..] => Ok((PolicyKind::Strict, 1)),
        ["compromise", f, ..] => Ok((
            PolicyKind::Compromise {
                factor: f.parse().map_err(|_| fail("bad factor"))?,
            },
            2,
        )),
        ["partitioned", f, ..] => Ok((
            PolicyKind::Partitioned {
                quota_frac: f.parse().map_err(|_| fail("bad quota"))?,
            },
            2,
        )),
        _ => Err(fail("unknown policy")),
    }
}

fn parse_vector(fields: &[&str], fail: &dyn Fn(&str) -> String) -> Result<Demand, String> {
    match fields {
        [llc, membw, dram] => Ok(Demand::new(
            parse_amount(Some(llc), fail)?,
            parse_amount(Some(membw), fail)?,
            parse_amount(Some(dram), fail)?,
        )),
        _ => Err(fail("expected `<llc> <membw> <dram>`")),
    }
}

impl TopoDoc {
    /// A trace over the default header with the given events.
    pub fn new(events: Vec<TopoEvent>) -> Self {
        TopoDoc {
            cfg: default_topo_config(),
            events,
        }
    }

    /// Parse the text format. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = default_topo_config();
        let mut caps: Vec<[u64; 3]> = Vec::new();
        let mut layers: Vec<LayerSpec> = Vec::new();
        let mut assigns: Vec<(u32, u32)> = Vec::new();
        let mut events = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let no = no + 1;
            let mut words = line.split_whitespace();
            let key = words.next().expect("non-empty line has a first word");
            let fields: Vec<&str> = words.collect();
            let fail = |msg: &str| format!("line {no}: {msg}: `{raw}`");
            let is_event = matches!(key, "vbegin" | "begin" | "end" | "exit" | "age" | "retry");
            if !is_event && !events.is_empty() {
                return Err(fail("header line after the first event"));
            }
            match key {
                "node" => caps.push(parse_vector(&fields, &fail)?.amounts),
                "layer" => match fields.as_slice() {
                    [name, rest @ ..] if !rest.is_empty() => {
                        let (policy, used) = parse_policy(rest, &fail)?;
                        let mut spec = LayerSpec::new(*name, policy);
                        match &rest[used..] {
                            [] => {}
                            ["guarantee", g @ ..] => {
                                spec = spec.with_guarantee(parse_vector(g, &fail)?);
                            }
                            _ => return Err(fail("trailing words after layer policy")),
                        }
                        layers.push(spec);
                    }
                    _ => return Err(fail("expected `layer <name> <policy...>`")),
                },
                "assign" => match fields.as_slice() {
                    [process, layer] => assigns.push((
                        process.parse().map_err(|_| fail("bad process"))?,
                        layer.parse().map_err(|_| fail("bad layer index"))?,
                    )),
                    _ => return Err(fail("expected `assign <process> <layer>`")),
                },
                "audit" => {
                    cfg.demand_audit = match fields.as_slice() {
                        ["trust"] => DemandAudit::Trust,
                        ["clamp"] => DemandAudit::Clamp,
                        ["reject"] => DemandAudit::Reject,
                        _ => return Err(fail("unknown audit mode")),
                    }
                }
                "timeout" => {
                    cfg.waitlist_timeout_cycles = match fields.as_slice() {
                        ["none"] => None,
                        [n] => Some(n.parse().map_err(|_| fail("bad timeout"))?),
                        _ => return Err(fail("expected `timeout none|<cycles>`")),
                    }
                }
                "overload" => {
                    cfg.overload = match fields.as_slice() {
                        [cap, policy] => Some(OverloadConfig {
                            waitlist_cap: cap.parse().map_err(|_| fail("bad waitlist cap"))?,
                            shed_policy: match *policy {
                                "reject_newest" => ShedPolicy::RejectNewest,
                                "reject_oldest" => ShedPolicy::RejectOldest,
                                "degrade" => ShedPolicy::DegradeToOverflow,
                                _ => {
                                    return Err(fail(
                                        "shed policy must be reject_newest|reject_oldest|degrade",
                                    ))
                                }
                            },
                            deadline_cycles: None,
                            breaker: None,
                        }),
                        _ => return Err(fail("expected `overload <cap> <policy>`")),
                    }
                }
                "deadline" => {
                    let ov = cfg
                        .overload
                        .as_mut()
                        .ok_or_else(|| fail("deadline requires a preceding overload line"))?;
                    ov.deadline_cycles = match fields.as_slice() {
                        [n] => Some(n.parse().map_err(|_| fail("bad deadline"))?),
                        _ => return Err(fail("expected `deadline <cycles>`")),
                    }
                }
                "breaker" => {
                    let breaker = match fields.as_slice() {
                        [high, low, trip, recover, min] => BreakerConfig {
                            high_water: parse_amount(Some(high), &fail)?,
                            low_water: parse_amount(Some(low), &fail)?,
                            trip_after: trip.parse().map_err(|_| fail("bad trip count"))?,
                            recover_after: recover
                                .parse()
                                .map_err(|_| fail("bad recover count"))?,
                            shed_min_demand: parse_amount(Some(min), &fail)?,
                        },
                        _ => {
                            return Err(fail(
                                "expected `breaker <high> <low> <trip> <recover> <min>`",
                            ))
                        }
                    };
                    cfg.overload
                        .as_mut()
                        .ok_or_else(|| fail("breaker requires a preceding overload line"))?
                        .breaker = Some(breaker);
                }
                "vbegin" => match fields.as_slice() {
                    [t, process, site, v @ ..] => events.push(TopoEvent::Begin {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                        process: process.parse().map_err(|_| fail("bad process"))?,
                        site: site.parse().map_err(|_| fail("bad site"))?,
                        demand: parse_vector(v, &fail)?,
                    }),
                    _ => return Err(fail(
                        "expected `vbegin <t> <proc> <site> <llc> <membw> <dram>`",
                    )),
                },
                "begin" => match fields.as_slice() {
                    [t, process, site, kind, amount] => {
                        let k = parse_kind(kind)
                            .ok_or_else(|| fail("resource must be llc|membw|dram"))?;
                        events.push(TopoEvent::Begin {
                            t: t.parse().map_err(|_| fail("bad time"))?,
                            process: process.parse().map_err(|_| fail("bad process"))?,
                            site: site.parse().map_err(|_| fail("bad site"))?,
                            demand: Demand::ZERO.with(k, parse_amount(Some(amount), &fail)?),
                        });
                    }
                    _ => return Err(fail("expected `begin <t> <proc> <site> <res> <amount>`")),
                },
                "end" => match fields.as_slice() {
                    [t, pp] => events.push(TopoEvent::End {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                        pp: pp.parse().map_err(|_| fail("bad pp id"))?,
                    }),
                    _ => return Err(fail("expected `end <t> <pp>`")),
                },
                "exit" => match fields.as_slice() {
                    [t, process] => events.push(TopoEvent::Exit {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                        process: process.parse().map_err(|_| fail("bad process"))?,
                    }),
                    _ => return Err(fail("expected `exit <t> <process>`")),
                },
                "age" => match fields.as_slice() {
                    [t] => events.push(TopoEvent::Age {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                    }),
                    _ => return Err(fail("expected `age <t>`")),
                },
                "retry" => match fields.as_slice() {
                    [t, process, site, kind] => events.push(TopoEvent::Retry {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                        process: process.parse().map_err(|_| fail("bad process"))?,
                        site: site.parse().map_err(|_| fail("bad site"))?,
                        kind: parse_kind(kind)
                            .ok_or_else(|| fail("resource must be llc|membw|dram"))?,
                    }),
                    _ => return Err(fail("expected `retry <t> <proc> <site> <res>`")),
                },
                _ => return Err(fail("unknown directive")),
            }
        }
        if !caps.is_empty() {
            cfg.spec = TopoSpec { caps };
        }
        if !layers.is_empty() || !assigns.is_empty() {
            let mut set = if layers.is_empty() {
                cfg.layers.clone()
            } else {
                LayerSet::new(layers)
            };
            for (process, layer) in assigns {
                if layer as usize >= set.len() {
                    return Err(format!("assign references unknown layer {layer}"));
                }
                set.assign(process, LayerId(layer));
            }
            cfg.layers = set;
        }
        Ok(TopoDoc { cfg, events })
    }

    /// Serialize to the text format. `parse(to_text(d)) == d` for any
    /// document (amounts are written as raw bytes, demands as
    /// `vbegin`).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let c = &self.cfg;
        for cap in &c.spec.caps {
            let _ = writeln!(out, "node {} {} {}", cap[0], cap[1], cap[2]);
        }
        for spec in &c.layers.layers {
            let policy = match spec.policy {
                PolicyKind::DefaultOnly => "default".to_string(),
                PolicyKind::Strict => "strict".to_string(),
                PolicyKind::Compromise { factor } => format!("compromise {factor}"),
                PolicyKind::Partitioned { quota_frac } => format!("partitioned {quota_frac}"),
            };
            let _ = write!(out, "layer {} {policy}", spec.name);
            if let Some(g) = spec.guarantee {
                let _ = write!(
                    out,
                    " guarantee {} {} {}",
                    g.amounts[0], g.amounts[1], g.amounts[2]
                );
            }
            out.push('\n');
        }
        for &(process, layer) in c.layers.assignments() {
            let _ = writeln!(out, "assign {process} {layer}");
        }
        let audit = match c.demand_audit {
            DemandAudit::Trust => "trust",
            DemandAudit::Clamp => "clamp",
            DemandAudit::Reject => "reject",
        };
        let _ = writeln!(out, "audit {audit}");
        match c.waitlist_timeout_cycles {
            None => out.push_str("timeout none\n"),
            Some(t) => {
                let _ = writeln!(out, "timeout {t}");
            }
        }
        if let Some(ov) = c.overload {
            let policy = match ov.shed_policy {
                ShedPolicy::RejectNewest => "reject_newest",
                ShedPolicy::RejectOldest => "reject_oldest",
                ShedPolicy::DegradeToOverflow => "degrade",
            };
            let _ = writeln!(out, "overload {} {policy}", ov.waitlist_cap);
            if let Some(d) = ov.deadline_cycles {
                let _ = writeln!(out, "deadline {d}");
            }
            if let Some(b) = ov.breaker {
                let _ = writeln!(
                    out,
                    "breaker {} {} {} {} {}",
                    b.high_water, b.low_water, b.trip_after, b.recover_after, b.shed_min_demand
                );
            }
        }
        for ev in &self.events {
            match *ev {
                TopoEvent::Begin {
                    t,
                    process,
                    site,
                    demand,
                } => {
                    let _ = writeln!(
                        out,
                        "vbegin {t} {process} {site} {} {} {}",
                        demand.amounts[0], demand.amounts[1], demand.amounts[2]
                    );
                }
                TopoEvent::End { t, pp } => {
                    let _ = writeln!(out, "end {t} {pp}");
                }
                TopoEvent::Exit { t, process } => {
                    let _ = writeln!(out, "exit {t} {process}");
                }
                TopoEvent::Age { t } => {
                    let _ = writeln!(out, "age {t}");
                }
                TopoEvent::Retry {
                    t,
                    process,
                    site,
                    kind,
                } => {
                    let _ = writeln!(
                        out,
                        "retry {t} {process} {site} {}",
                        rda_core::ResourceSpace::label(kind)
                    );
                }
            }
        }
        out
    }
}

/// Lift a scalar trace into the topology vocabulary: the configuration
/// through [`TopoConfig::compat`] and every scalar demand as a
/// single-component vector. Replaying the lifted document through the
/// topology oracle is the executable form of DESIGN.md §9's
/// compatibility argument.
pub fn lift(doc: &TraceDoc) -> TopoDoc {
    let events = doc
        .events
        .iter()
        .map(|ev| match *ev {
            TraceEvent::Begin {
                t,
                process,
                site,
                resource,
                amount,
            } => TopoEvent::Begin {
                t,
                process,
                site,
                demand: Demand::ZERO.with(lift_kind(resource), amount),
            },
            TraceEvent::End { t, pp } => TopoEvent::End { t, pp },
            TraceEvent::Exit { t, process } => TopoEvent::Exit { t, process },
            TraceEvent::Age { t } => TopoEvent::Age { t },
            TraceEvent::Retry {
                t,
                process,
                site,
                resource,
            } => TopoEvent::Retry {
                t,
                process,
                site,
                kind: lift_kind(resource),
            },
        })
        .collect();
    TopoDoc {
        cfg: TopoConfig::compat(&doc.cfg),
        events,
    }
}

/// The topology kind a scalar resource lifts to.
pub fn lift_kind(r: Resource) -> ResourceKind {
    match r {
        Resource::Llc => ResourceKind::Llc,
        Resource::MemBandwidth => ResourceKind::MemBw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_topology_header_and_vector_events() {
        let doc = TopoDoc::parse(
            "# demo\nnode 100 50 1000\nnode 100 50 1000\n\
             layer batch compromise 2\nlayer latency strict guarantee 40 0 0\nassign 2 1\n\
             audit clamp\ntimeout 500\n\
             vbegin 0 0 0 60 5 0\nbegin 10 2 1 membw 5mb\nend 20 0\nexit 30 2\nage 40\n\
             retry 50 0 0 dram\n",
        )
        .unwrap();
        assert_eq!(doc.cfg.spec.node_count(), 2);
        assert_eq!(doc.cfg.layers.len(), 2);
        assert_eq!(doc.cfg.layers.layer_of(2), LayerId(1));
        assert_eq!(doc.cfg.layers.spec(LayerId(1)).guarantee, Some(Demand::llc(40)));
        assert_eq!(doc.cfg.demand_audit, DemandAudit::Clamp);
        assert_eq!(doc.events.len(), 6);
        assert_eq!(
            doc.events[0],
            TopoEvent::Begin {
                t: 0,
                process: 0,
                site: 0,
                demand: Demand::new(60, 5, 0),
            }
        );
        assert_eq!(
            doc.events[1],
            TopoEvent::Begin {
                t: 10,
                process: 2,
                site: 1,
                demand: Demand::new(0, rda_core::mb(5.0), 0),
            }
        );
        assert_eq!(
            doc.events[5],
            TopoEvent::Retry {
                t: 50,
                process: 0,
                site: 0,
                kind: ResourceKind::DramCap,
            }
        );
    }

    #[test]
    fn roundtrips_through_text() {
        let mut doc = TopoDoc::parse(
            "node 10 20 30\nnode 40 50 60\n\
             layer a strict\nlayer b partitioned 0.25 guarantee 1 2 3\nassign 7 1\n\
             audit reject\ntimeout 999\noverload 8 reject_oldest\ndeadline 12000\n\
             breaker 14000000 7000000 3 5 1000\n\
             vbegin 0 0 3 123456 0 7\nage 7\nend 9 0\nexit 11 0\nretry 13 2 1 membw\n",
        )
        .unwrap();
        let reparsed = TopoDoc::parse(&doc.to_text()).unwrap();
        assert_eq!(reparsed, doc);
        // Single-component `begin` sugar normalizes to `vbegin`.
        doc.events.push(TopoEvent::Begin {
            t: 20,
            process: 1,
            site: 0,
            demand: Demand::llc(5),
        });
        assert_eq!(TopoDoc::parse(&doc.to_text()).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("node 1 2", "expected `<llc> <membw> <dram>`"),
            ("layer solo", "expected `layer"),
            ("layer solo sloppy", "unknown policy"),
            ("layer a strict guarantee 1 2", "expected `<llc> <membw> <dram>`"),
            ("layer a strict extra", "trailing words"),
            ("assign 0 3", "unknown layer 3"),
            ("vbegin 0 0 0 1 2", "expected `<llc> <membw> <dram>`"),
            ("vbegin 0 0", "expected `vbegin"),
            ("begin 0 0 0 disk 10", "llc|membw|dram"),
            ("retry 0 0 0 disk", "llc|membw|dram"),
            ("end 0 0\nnode 1 2 3", "header line after the first event"),
            ("frobnicate", "unknown directive"),
        ] {
            let err = TopoDoc::parse(text).unwrap_err();
            assert!(err.contains(needle), "`{text}` gave `{err}`");
        }
    }

    #[test]
    fn lifting_preserves_the_scalar_configuration_shape() {
        let scalar = TraceDoc::parse(
            "policy strict\nllc 1000\naudit clamp\ntimeout 500\n\
             begin 0 0 0 llc 600\nbegin 10 1 1 membw 5mb\nend 20 0\nretry 30 1 1 membw\n",
        )
        .unwrap();
        let lifted = lift(&scalar);
        assert_eq!(lifted.cfg.spec.node_count(), 1);
        assert!(lifted.cfg.layers.is_trivial());
        assert_eq!(lifted.cfg.spec.caps[0][0], 1000);
        assert_eq!(lifted.events.len(), 4);
        assert_eq!(
            lifted.events[1],
            TopoEvent::Begin {
                t: 10,
                process: 1,
                site: 1,
                demand: Demand::new(0, rda_core::mb(5.0), 0),
            }
        );
        // Lifted docs roundtrip through the topology text format too.
        assert_eq!(TopoDoc::parse(&lifted.to_text()).unwrap(), lifted);
    }
}
