//! The topology differential oracle: one event stream, two machines,
//! equality after every step.
//!
//! [`TopoOracle`] drives the implementation
//! ([`rda_core::TopoExtension`]) and the recompute-by-summation
//! reference model ([`crate::topo_model::TopoRefModel`]) with identical
//! calls and, after *every* event, demands:
//!
//! 1. the per-call results agree (outcome variant, allocated id,
//!    resumed/expired/shed lists **in order**, error variant and
//!    payload, including node and resource-kind payloads);
//! 2. the observable snapshots are bit-identical — per-node nominal and
//!    overflow books, per-node waitlist order with enqueue times, live
//!    periods with their layer/node/vectors, every stats counter, and
//!    the id-allocator position;
//! 3. the per-node saturation-breaker open flags agree;
//! 4. the implementation's own `check_invariants` passes (which
//!    recomputes the incremental per-node *and per-layer* books).
//!
//! Since the model derives every book by summation while the
//! implementation maintains them incrementally, agreement here is a
//! proof that no release path (end, exit, shed, expiry) ever leaks a
//! component of a demand vector — the multi-resource drain audit of
//! DESIGN.md §9, checked on every event of every replayed trace.

use crate::topo_model::{TopoEffect, TopoMutation, TopoRefModel};
use crate::topo_trace::{lift, TopoDoc, TopoEvent};
use crate::trace::TraceDoc;
use rda_core::{
    BeginOutcome, NodeId, PpId, ResourceKind, SiteId, TopoConfig, TopoExtension, TopoSnapshot,
};
use rda_sched::ProcessId;
use rda_simcore::SimTime;
use std::fmt;

/// A point where the topology implementation and its model disagree
/// (or the implementation violated its own invariants).
#[derive(Debug, Clone)]
pub struct TopoDivergence {
    /// 0-based index of the offending event in the replayed sequence.
    pub step: usize,
    /// The event being applied when the disagreement surfaced.
    pub event: TopoEvent,
    /// What disagreed, rendered for humans.
    pub detail: String,
}

impl fmt::Display for TopoDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology divergence at step {} on {:?}: {}",
            self.step, self.event, self.detail
        )
    }
}

impl std::error::Error for TopoDivergence {}

/// Implementation + model in lockstep.
#[derive(Debug, Clone)]
pub struct TopoOracle {
    ext: TopoExtension,
    model: TopoRefModel,
    steps: usize,
}

impl TopoOracle {
    /// Both machines fresh under the same configuration.
    pub fn new(cfg: TopoConfig) -> Self {
        Self::with_mutation(cfg, TopoMutation::None)
    }

    /// An oracle whose *model* carries an injected bug — used by the
    /// explorer's self-test to prove divergences are caught.
    pub fn with_mutation(cfg: TopoConfig, mutation: TopoMutation) -> Self {
        TopoOracle {
            ext: TopoExtension::new(cfg.clone()),
            model: TopoRefModel::with_mutation(cfg, mutation),
            steps: 0,
        }
    }

    /// The implementation under test.
    pub fn ext(&self) -> &TopoExtension {
        &self.ext
    }

    /// The reference model.
    pub fn model(&self) -> &TopoRefModel {
        &self.model
    }

    /// Events applied so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The agreed observable state (checked equal on every step).
    pub fn snapshot(&self) -> TopoSnapshot {
        self.ext.snapshot()
    }

    /// Apply one event to both machines and check full equivalence.
    /// On success returns the (agreed) effect of the call.
    pub fn apply(&mut self, event: &TopoEvent) -> Result<TopoEffect, Box<TopoDivergence>> {
        let step = self.steps;
        self.steps += 1;
        let diverged = |detail: String| {
            Box::new(TopoDivergence {
                step,
                event: *event,
                detail,
            })
        };

        let (got, want) = match *event {
            TopoEvent::Begin {
                t,
                process,
                site,
                demand,
            } => {
                let got = match self.ext.pp_begin(
                    ProcessId(process),
                    SiteId(site),
                    demand,
                    SimTime::from_cycles(t),
                ) {
                    Ok(BeginOutcome::Bypass) => TopoEffect::Bypass,
                    Ok(BeginOutcome::Run { pp, .. }) => TopoEffect::Run { pp },
                    Ok(BeginOutcome::Pause { pp, shed }) => TopoEffect::Pause { pp, shed },
                    Err(e) => TopoEffect::Rejected(e),
                };
                let want = self.model.pp_begin(ProcessId(process), site, demand, t);
                (got, want)
            }
            TopoEvent::End { t, pp } => {
                let got = match self.ext.pp_end(PpId(pp), SimTime::from_cycles(t)) {
                    Ok(out) => TopoEffect::End {
                        resumed: out.resumed,
                    },
                    Err(e) => TopoEffect::Rejected(e),
                };
                let want = self.model.pp_end(PpId(pp), t);
                (got, want)
            }
            TopoEvent::Exit { t, process } => {
                let got = TopoEffect::Woken {
                    resumed: self
                        .ext
                        .process_exit(ProcessId(process), SimTime::from_cycles(t)),
                    expired: Vec::new(),
                };
                let want = self.model.process_exit(ProcessId(process), t);
                (got, want)
            }
            TopoEvent::Age { t } => {
                let out = self.ext.age_waitlist(SimTime::from_cycles(t));
                let got = TopoEffect::Woken {
                    resumed: out.resumed,
                    expired: out.expired,
                };
                let want = self.model.age_waitlist(t);
                (got, want)
            }
            TopoEvent::Retry {
                t,
                process,
                site,
                kind,
            } => {
                self.ext.note_retry(
                    ProcessId(process),
                    SiteId(site),
                    kind,
                    SimTime::from_cycles(t),
                );
                (TopoEffect::Retried, self.model.note_retry())
            }
        };

        if got != want {
            return Err(diverged(format!(
                "call effect mismatch\n  implementation: {got:?}\n  model:          {want:?}"
            )));
        }
        let (ext_snap, model_snap) = (self.ext.snapshot(), self.model.snapshot());
        if let Some(diff) = describe_topo_snapshot_diff(&model_snap, &ext_snap) {
            return Err(diverged(format!("snapshot mismatch: {diff}")));
        }
        for n in 0..self.ext.node_count() {
            for k in ResourceKind::ALL {
                let node = NodeId(n as u32);
                let (i, m) = (
                    self.ext.breaker_is_open(node, k),
                    self.model.breaker_is_open(node, k),
                );
                if i != m {
                    return Err(diverged(format!(
                        "breaker[{node}/{k}]: implementation open={i}, model open={m}"
                    )));
                }
            }
        }
        if let Err(e) = self.ext.check_invariants() {
            return Err(diverged(format!("implementation invariant violated: {e}")));
        }
        Ok(got)
    }
}

/// First difference between two topology snapshots, rendered for
/// humans; `None` when they are identical.
pub fn describe_topo_snapshot_diff(model: &TopoSnapshot, ext: &TopoSnapshot) -> Option<String> {
    if model == ext {
        return None;
    }
    if model.usage.len() != ext.usage.len() {
        return Some(format!(
            "node count: model {} vs implementation {}",
            model.usage.len(),
            ext.usage.len()
        ));
    }
    for n in 0..model.usage.len() {
        for k in ResourceKind::ALL {
            let i = rda_core::ResourceSpace::index(k);
            if model.usage[n][i] != ext.usage[n][i] {
                return Some(format!(
                    "usage[node{n}][{k}]: model {} vs implementation {}",
                    model.usage[n][i], ext.usage[n][i]
                ));
            }
            if model.overflow[n][i] != ext.overflow[n][i] {
                return Some(format!(
                    "overflow[node{n}][{k}]: model {} vs implementation {}",
                    model.overflow[n][i], ext.overflow[n][i]
                ));
            }
        }
        if model.waitlists[n] != ext.waitlists[n] {
            return Some(format!(
                "waitlist[node{n}]: model {:?} vs implementation {:?}",
                model.waitlists[n], ext.waitlists[n]
            ));
        }
    }
    if model.periods != ext.periods {
        return Some(format!(
            "periods: model {:?} vs implementation {:?}",
            model.periods, ext.periods
        ));
    }
    if model.stats != ext.stats {
        return Some(format!(
            "stats: model {:?} vs implementation {:?}",
            model.stats, ext.stats
        ));
    }
    if model.allocated != ext.allocated {
        return Some(format!(
            "allocated: model {} vs implementation {}",
            model.allocated, ext.allocated
        ));
    }
    Some("snapshots differ".to_string())
}

/// Summary of a clean topology replay.
#[derive(Debug, Clone)]
pub struct TopoReplayReport {
    /// Events replayed.
    pub steps: usize,
    /// The (agreed) final observable state.
    pub final_snapshot: TopoSnapshot,
    /// The (agreed) effect of every event, in order.
    pub effects: Vec<TopoEffect>,
}

/// Replay a whole topology trace through the oracle.
pub fn replay_topo(doc: &TopoDoc) -> Result<TopoReplayReport, Box<TopoDivergence>> {
    let mut oracle = TopoOracle::new(doc.cfg.clone());
    let mut effects = Vec::with_capacity(doc.events.len());
    for event in &doc.events {
        effects.push(oracle.apply(event)?);
    }
    Ok(TopoReplayReport {
        steps: oracle.steps(),
        final_snapshot: oracle.snapshot(),
        effects,
    })
}

/// Replay a *scalar* trace through the topology oracle by lifting it
/// with [`crate::topo_trace::lift`] — every legacy corpus trace doubles
/// as a compatibility check of the topology engine.
pub fn replay_lifted(doc: &TraceDoc) -> Result<TopoReplayReport, Box<TopoDivergence>> {
    replay_topo(&lift(doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::Demand;

    fn doc(text: &str) -> TopoDoc {
        TopoDoc::parse(text).unwrap()
    }

    #[test]
    fn two_node_spillover_replays_cleanly() {
        let d = doc(
            "node 100 50 1000\nnode 100 50 1000\n\
             vbegin 0 0 0 60 0 0\nvbegin 10 1 1 60 0 0\nvbegin 20 2 2 60 0 0\n\
             end 30 0\nend 40 1\nend 50 2\n",
        );
        let report = replay_topo(&d).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(report.steps, 6);
        assert!(report.final_snapshot.is_idle());
        assert_eq!(report.final_snapshot.stats.paused, 1, "third 60 had to wait");
        assert_eq!(report.final_snapshot.stats.resumed, 1);
    }

    #[test]
    fn layered_guarantee_replays_cleanly() {
        let d = doc(
            "node 100 50 1000\n\
             layer batch strict\nlayer latency strict guarantee 40 0 0\nassign 9 1\n\
             vbegin 0 0 0 61 0 0\nvbegin 10 9 1 30 0 0\nvbegin 20 1 2 60 0 0\n\
             end 30 1\nend 40 2\nexit 50 0\n",
        );
        let report = replay_topo(&d).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.final_snapshot.is_idle());
        assert!(matches!(report.effects[0], TopoEffect::Pause { .. }));
        assert!(matches!(report.effects[1], TopoEffect::Run { .. }));
        assert!(matches!(report.effects[2], TopoEffect::Run { .. }));
    }

    #[test]
    fn multi_resource_overload_replays_cleanly() {
        let d = doc(
            "node 100 50 1000\nnode 100 50 1000\n\
             audit clamp\ntimeout 1000\noverload 1 reject_oldest\ndeadline 2000\n\
             breaker 90 40 1 1 0\n\
             vbegin 0 0 0 90 45 10\nvbegin 10 1 1 90 45 10\n\
             vbegin 20 2 2 0 10 0\nvbegin 30 3 3 0 10 0\nvbegin 40 4 4 0 10 0\n\
             age 500\nexit 600 0\nage 1700\nend 1800 1\nage 4000\nexit 4100 2\n\
             exit 4200 3\nexit 4300 4\n",
        );
        let report = replay_topo(&d).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.final_snapshot.is_idle());
        let s = report.final_snapshot.stats;
        assert!(s.shed >= 1, "bounded gate fired");
        assert!(s.breaker_trips >= 1, "breaker tripped");
    }

    #[test]
    fn lifted_scalar_traces_replay_cleanly() {
        let scalar = TraceDoc::parse(
            "policy strict\nllc 15728640\naudit reject\ntimeout 1000\n\
             begin 0 0 0 llc 10mb\nbegin 10 1 1 llc 99mb\nend 20 7\nend 30 0\nend 40 0\n\
             begin 50 2 2 llc 14mb\nbegin 60 3 3 llc 14mb\nage 2000\nexit 3000 2\nexit 3010 3\n",
        )
        .unwrap();
        let report = replay_lifted(&scalar).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.final_snapshot.is_idle());
        let s = report.final_snapshot.stats;
        assert_eq!(s.clamped, 1);
        assert_eq!(s.rejected_ends, 2);
        assert!(s.aged_admissions >= 1);
    }

    #[test]
    fn a_mutated_model_is_caught_on_an_exact_fit() {
        let d = doc("node 100 50 1000\nvbegin 0 0 0 100 0 0\n");
        let mut oracle = TopoOracle::with_mutation(d.cfg.clone(), TopoMutation::StrictOffByOne);
        let err = oracle
            .apply(&d.events[0])
            .expect_err("off-by-one model must diverge on an exact fit");
        assert!(err.detail.contains("call effect mismatch"), "{err}");
    }

    #[test]
    fn dram_is_a_first_class_gating_resource() {
        let d = TopoDoc {
            cfg: doc("node 100 50 1000\n").cfg,
            events: vec![
                TopoEvent::Begin {
                    t: 0,
                    process: 0,
                    site: 0,
                    demand: Demand::new(0, 0, 900),
                },
                TopoEvent::Begin {
                    t: 10,
                    process: 1,
                    site: 1,
                    demand: Demand::new(0, 0, 200),
                },
                TopoEvent::End { t: 20, pp: 0 },
                TopoEvent::End { t: 30, pp: 1 },
            ],
        };
        let report = replay_topo(&d).unwrap_or_else(|e| panic!("{e}"));
        assert!(matches!(report.effects[1], TopoEffect::Pause { .. }));
        assert!(report.final_snapshot.is_idle());
    }
}
