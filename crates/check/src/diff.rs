//! The differential oracle: one event stream, two machines, equality
//! after every step.
//!
//! [`Oracle`] drives the implementation ([`rda_core::RdaExtension`])
//! and the reference model ([`crate::model::RefModel`]) with identical
//! calls and, after *every* event, demands:
//!
//! 1. the per-call results agree (outcome variant, allocated id, fast
//!    flag, resumed/expired/shed lists **in order**, error variant and
//!    payload);
//! 2. the observable snapshots are bit-identical — both accounting
//!    buckets, waitlist order with enqueue times, live periods, every
//!    stats counter (including the overload shed/expired/retried/
//!    breaker counters), and the id-allocator position;
//! 3. the memoised-decision caches digest identically;
//! 4. the implementation's own [`RdaExtension::check_invariants`]
//!    passes.
//!
//! Any violation is reported as a [`Divergence`] naming the step, the
//! event, and a human-readable explanation — and since every replay
//! input is a [`TraceDoc`], a divergence *is* a repro file.

use crate::model::{Effect, RefModel};
use crate::trace::{TraceDoc, TraceEvent};
use rda_core::{PpDemand, PpId, RdaConfig, RdaExtension, SiteId, Snapshot};
use rda_machine::ReuseLevel;
use rda_sched::ProcessId;
use rda_simcore::SimTime;
use std::fmt;

/// A point where the implementation and the model disagree (or the
/// implementation violated its own invariants).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// 0-based index of the offending event in the replayed sequence.
    pub step: usize,
    /// The event being applied when the disagreement surfaced.
    pub event: TraceEvent,
    /// What disagreed, rendered for humans.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "divergence at step {} on {:?}: {}",
            self.step, self.event, self.detail
        )
    }
}

impl std::error::Error for Divergence {}

/// Implementation + model in lockstep.
#[derive(Debug, Clone)]
pub struct Oracle {
    ext: RdaExtension,
    model: RefModel,
    steps: usize,
}

impl Oracle {
    /// Both machines fresh under the same configuration.
    pub fn new(cfg: RdaConfig) -> Self {
        Oracle {
            ext: RdaExtension::new(cfg.clone()),
            model: RefModel::new(cfg),
            steps: 0,
        }
    }

    /// The implementation under test.
    pub fn ext(&self) -> &RdaExtension {
        &self.ext
    }

    /// The reference model.
    pub fn model(&self) -> &RefModel {
        &self.model
    }

    /// Events applied so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The agreed observable state (checked equal on every step).
    pub fn snapshot(&self) -> Snapshot {
        self.ext.snapshot()
    }

    /// Apply one event to both machines and check full equivalence.
    /// On success returns the (agreed) effect of the call.
    pub fn apply(&mut self, event: &TraceEvent) -> Result<Effect, Box<Divergence>> {
        let step = self.steps;
        self.steps += 1;
        let diverged = |detail: String| {
            Box::new(Divergence {
                step,
                event: *event,
                detail,
            })
        };

        let (got, want) = match *event {
            TraceEvent::Begin {
                t,
                process,
                site,
                resource,
                amount,
            } => {
                let demand = PpDemand {
                    resource,
                    amount,
                    reuse: ReuseLevel::High,
                };
                let got = match self.ext.pp_begin(
                    ProcessId(process),
                    SiteId(site),
                    demand,
                    SimTime::from_cycles(t),
                ) {
                    Ok(rda_core::BeginOutcome::Bypass) => Effect::Bypass,
                    Ok(rda_core::BeginOutcome::Run { pp, fast }) => Effect::Run { pp, fast },
                    Ok(rda_core::BeginOutcome::Pause { pp, shed }) => Effect::Pause { pp, shed },
                    Err(e) => Effect::Rejected(e),
                };
                let want = self
                    .model
                    .pp_begin(ProcessId(process), site, resource, amount, t);
                (got, want)
            }
            TraceEvent::End { t, pp } => {
                let got = match self.ext.pp_end(PpId(pp), SimTime::from_cycles(t)) {
                    Ok(out) => Effect::End {
                        fast: out.fast,
                        resumed: out.resumed,
                    },
                    Err(e) => Effect::Rejected(e),
                };
                let want = self.model.pp_end(PpId(pp), t);
                (got, want)
            }
            TraceEvent::Exit { t, process } => {
                let got = Effect::Woken {
                    resumed: self
                        .ext
                        .process_exit(ProcessId(process), SimTime::from_cycles(t)),
                    expired: Vec::new(),
                };
                let want = self.model.process_exit(ProcessId(process), t);
                (got, want)
            }
            TraceEvent::Age { t } => {
                let out = self.ext.age_waitlist(SimTime::from_cycles(t));
                let got = Effect::Woken {
                    resumed: out.resumed,
                    expired: out.expired,
                };
                let want = self.model.age_waitlist(t);
                (got, want)
            }
            TraceEvent::Retry {
                t,
                process,
                site,
                resource,
            } => {
                self.ext.note_retry(
                    ProcessId(process),
                    SiteId(site),
                    resource,
                    SimTime::from_cycles(t),
                );
                (Effect::Retried, self.model.note_retry())
            }
        };

        if got != want {
            return Err(diverged(format!(
                "call effect mismatch\n  implementation: {got:?}\n  model:          {want:?}"
            )));
        }
        let (ext_snap, model_snap) = (self.ext.snapshot(), self.model.snapshot());
        if let Some(diff) = describe_snapshot_diff(&model_snap, &ext_snap) {
            return Err(diverged(format!("snapshot mismatch: {diff}")));
        }
        if self.ext.fastpath_digest() != self.model.cache_digest() {
            return Err(diverged(format!(
                "fast-path cache mismatch: implementation digest {:#x}, model digest {:#x}",
                self.ext.fastpath_digest(),
                self.model.cache_digest()
            )));
        }
        if let Err(e) = self.ext.check_invariants() {
            return Err(diverged(format!("implementation invariant violated: {e}")));
        }
        Ok(got)
    }
}

/// First difference between two snapshots, rendered for humans; `None`
/// when they are identical.
pub fn describe_snapshot_diff(model: &Snapshot, ext: &Snapshot) -> Option<String> {
    if model == ext {
        return None;
    }
    for i in 0..2 {
        if model.usage[i] != ext.usage[i] {
            return Some(format!(
                "usage[{i}]: model {} vs implementation {}",
                model.usage[i], ext.usage[i]
            ));
        }
        if model.overflow[i] != ext.overflow[i] {
            return Some(format!(
                "overflow[{i}]: model {} vs implementation {}",
                model.overflow[i], ext.overflow[i]
            ));
        }
        if model.waitlists[i] != ext.waitlists[i] {
            return Some(format!(
                "waitlist[{i}]: model {:?} vs implementation {:?}",
                model.waitlists[i], ext.waitlists[i]
            ));
        }
    }
    if model.periods != ext.periods {
        return Some(format!(
            "periods: model {:?} vs implementation {:?}",
            model.periods, ext.periods
        ));
    }
    if model.stats != ext.stats {
        return Some(format!(
            "stats: model {:?} vs implementation {:?}",
            model.stats, ext.stats
        ));
    }
    if model.allocated != ext.allocated {
        return Some(format!(
            "allocated: model {} vs implementation {}",
            model.allocated, ext.allocated
        ));
    }
    Some("snapshots differ".to_string())
}

/// Summary of a clean replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Events replayed.
    pub steps: usize,
    /// The (agreed) final observable state.
    pub final_snapshot: Snapshot,
    /// The (agreed) effect of every event, in order.
    pub effects: Vec<Effect>,
}

/// Replay a whole trace through the oracle.
pub fn replay(doc: &TraceDoc) -> Result<ReplayReport, Box<Divergence>> {
    let mut oracle = Oracle::new(doc.cfg.clone());
    let mut effects = Vec::with_capacity(doc.events.len());
    for event in &doc.events {
        effects.push(oracle.apply(event)?);
    }
    Ok(ReplayReport {
        steps: oracle.steps(),
        final_snapshot: oracle.snapshot(),
        effects,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::{DemandAudit, PolicyKind};

    fn doc(policy: &str, extra_header: &str, body: &str) -> TraceDoc {
        TraceDoc::parse(&format!("policy {policy}\n{extra_header}\n{body}")).unwrap()
    }

    #[test]
    fn contention_replays_cleanly_under_both_policies() {
        for policy in ["strict", "compromise 2"] {
            let d = doc(
                policy,
                "llc 15728640",
                "begin 0 0 0 llc 10mb\nbegin 10 1 1 llc 10mb\nbegin 20 2 2 llc 10mb\n\
                 end 30 0\nend 40 1\nend 50 2\n",
            );
            let report = replay(&d).unwrap_or_else(|e| panic!("{policy}: {e}"));
            assert_eq!(report.steps, 6);
            assert!(report.final_snapshot.is_idle(), "{policy}");
        }
    }

    #[test]
    fn faulty_calls_replay_cleanly() {
        let d = doc(
            "strict",
            "audit reject\ntimeout 1000",
            "begin 0 0 0 llc 10mb\nbegin 10 1 1 llc 99mb\nend 20 7\nend 30 0\nend 40 0\n\
             begin 50 2 2 llc 14mb\nbegin 60 3 3 llc 14mb\nage 2000\nexit 3000 2\nexit 3010 3\n",
        );
        let report = replay(&d).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.final_snapshot.is_idle());
        let s = report.final_snapshot.stats;
        assert_eq!(s.clamped, 1, "oversized declaration rejected");
        assert_eq!(s.rejected_ends, 2, "unknown end + double end");
        assert!(s.aged_admissions >= 1, "aging fired");
    }

    #[test]
    fn overload_schedule_replays_cleanly() {
        // Bounded gate (RejectOldest evictions), deadline expiry,
        // breaker trip + shed + recovery, and a client retry — the full
        // overload vocabulary through both machines in one schedule.
        let d = doc(
            "strict",
            "llc 15728640\noverload 1 reject_oldest\ndeadline 1000\nbreaker 8mb 6mb 2 2 0",
            "begin 0 0 0 llc 10mb\n\
             begin 10 1 1 llc 10mb\n\
             begin 20 2 2 llc 10mb\n\
             retry 30 1 1 llc\n\
             begin 40 1 3 llc 10mb\n\
             age 1100\n\
             age 1200\n\
             begin 1300 3 4 llc 1mb\n\
             end 1400 0\n\
             age 1500\n\
             age 1600\n\
             begin 1700 3 4 llc 1mb\n\
             end 1800 4\n",
        );
        let report = replay(&d).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.final_snapshot.is_idle());
        let s = report.final_snapshot.stats;
        assert_eq!(s.shed, 3, "two head evictions + one breaker shed");
        assert_eq!(s.expired, 1, "last waiter starved past its deadline");
        assert_eq!(s.retried, 1);
        assert_eq!(s.breaker_trips, 1);
        assert_eq!(s.paused, 3);
        assert_eq!(report.final_snapshot.allocated, 5, "tail/breaker sheds allocate no id");
        assert!(matches!(
            report.effects[2],
            Effect::Pause { shed: Some(_), .. }
        ));
        assert!(matches!(
            report.effects[7],
            Effect::Rejected(rda_core::RdaError::BreakerOpen { .. })
        ));
    }

    #[test]
    fn degrade_and_reject_newest_schedules_replay_cleanly() {
        for (policy, idle) in [("degrade", true), ("reject_newest", true)] {
            let d = doc(
                "strict",
                &format!("llc 15728640\noverload 0 {policy}"),
                "begin 0 0 0 llc 10mb\nbegin 10 1 1 llc 10mb\nbegin 20 2 2 llc 10mb\n\
                 end 30 0\nexit 40 1\nexit 50 2\n",
            );
            let report = replay(&d).unwrap_or_else(|e| panic!("{policy}: {e}"));
            assert_eq!(report.final_snapshot.is_idle(), idle, "{policy}");
            assert!(report.final_snapshot.stats.shed >= 2, "{policy}");
        }
    }

    #[test]
    fn a_deliberately_skewed_model_is_caught() {
        // Sanity-check the oracle itself: replay an event stream where
        // the model sees a *different* event than the implementation.
        let cfg = {
            let mut c = crate::trace::default_config();
            c.policy = PolicyKind::Strict;
            c.demand_audit = DemandAudit::Trust;
            c
        };
        let mut oracle = Oracle::new(cfg);
        oracle
            .apply(&TraceEvent::Begin {
                t: 0,
                process: 0,
                site: 0,
                resource: rda_core::Resource::Llc,
                amount: 1000,
            })
            .unwrap();
        // Poke the model out from under the oracle by replaying an
        // event on a clone of the model only, then diffing snapshots.
        let mut skewed = oracle.model().clone();
        skewed.pp_begin(ProcessId(9), 9, rda_core::Resource::Llc, 1, 5);
        let diff = describe_snapshot_diff(&skewed.snapshot(), &oracle.ext().snapshot());
        assert!(diff.is_some(), "skewed model must not compare equal");
    }
}
