//! # rda-check
//!
//! A reference-model differential oracle and bounded model checker for
//! the RDA scheduling extension (`rda-core`).
//!
//! The implementation in `rda-core` is optimised machinery: memoised
//! fast paths, incremental load tables, FIFO queues with aging. This
//! crate re-states what all of that *means* as a ~300-line
//! pure-functional model ([`model::RefModel`]) that shares no logic
//! with the implementation, and then checks the two against each other
//! three ways:
//!
//! * **Differential replay** ([`diff`]) — any event trace (hand-written
//!   `.trace` file, recorded simulation, random scenario) is applied to
//!   both machines with full observable-state equality demanded after
//!   every single event.
//! * **Bounded exhaustive exploration** ([`explore`]) — every
//!   interleaving of small multi-process scenario templates is
//!   enumerated by DFS with state-hash pruning, so concurrency-order
//!   bugs cannot hide behind one lucky schedule.
//! * **Random scenarios with shrinking** ([`gen`]) — large seeded
//!   traces replayed through the oracle; failures are shrunk to minimal
//!   repros ready to commit under `tests/corpus/`.
//!
//! The `.trace` text format ([`trace`]) makes every counterexample a
//! file: replayable, shrinkable, committable. See DESIGN.md §“Reference
//! model & checking methodology”.

#![warn(missing_docs)]

pub mod diff;
pub mod explore;
pub mod gen;
pub mod model;
pub mod trace;

pub use diff::{replay, Divergence, Oracle, ReplayReport};
pub use explore::{explore, Exploration, Op, Template};
pub use gen::{fuzz, random_doc, shrink, FuzzFailure, GenParams};
pub use model::{Effect, RefModel};
pub use trace::{TraceDoc, TraceEvent};

use rda_sim::system::RdaCall;

/// Convert a call log recorded by `rda_sim::SystemSim` (with
/// `SimConfig::with_rda_trace`) into a replayable [`TraceDoc`] under
/// the given configuration — the bridge that lets whole simulated
/// workloads be re-checked against the reference model event by event.
pub fn doc_from_calls(cfg: rda_core::RdaConfig, calls: &[RdaCall]) -> TraceDoc {
    let events = calls
        .iter()
        .map(|c| match *c {
            RdaCall::Begin {
                now,
                process,
                site,
                demand,
            } => TraceEvent::Begin {
                t: now.cycles(),
                process: process.0,
                site: site.0,
                resource: demand.resource,
                amount: demand.amount,
            },
            RdaCall::End { now, pp } => TraceEvent::End {
                t: now.cycles(),
                pp: pp.0,
            },
            RdaCall::Exit { now, process } => TraceEvent::Exit {
                t: now.cycles(),
                process: process.0,
            },
            RdaCall::Age { now } => TraceEvent::Age { t: now.cycles() },
            RdaCall::Retry {
                now,
                process,
                site,
                resource,
            } => TraceEvent::Retry {
                t: now.cycles(),
                process: process.0,
                site: site.0,
                resource,
            },
        })
        .collect();
    TraceDoc { cfg, events }
}
