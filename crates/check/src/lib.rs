//! # rda-check
//!
//! A reference-model differential oracle and bounded model checker for
//! the RDA scheduling extension (`rda-core`).
//!
//! The implementation in `rda-core` is optimised machinery: memoised
//! fast paths, incremental load tables, FIFO queues with aging. This
//! crate re-states what all of that *means* as a ~300-line
//! pure-functional model ([`model::RefModel`]) that shares no logic
//! with the implementation, and then checks the two against each other
//! three ways:
//!
//! * **Differential replay** ([`diff`]) — any event trace (hand-written
//!   `.trace` file, recorded simulation, random scenario) is applied to
//!   both machines with full observable-state equality demanded after
//!   every single event.
//! * **Bounded exhaustive exploration** ([`explore`]) — every
//!   interleaving of small multi-process scenario templates is
//!   enumerated by DFS with state-hash pruning, so concurrency-order
//!   bugs cannot hide behind one lucky schedule.
//! * **Random scenarios with shrinking** ([`gen`]) — large seeded
//!   traces replayed through the oracle; failures are shrunk to minimal
//!   repros ready to commit under `tests/corpus/`.
//!
//! The `.trace` text format ([`trace`]) makes every counterexample a
//! file: replayable, shrinkable, committable. See DESIGN.md §“Reference
//! model & checking methodology”.
//!
//! ## Topology checking
//!
//! The multi-resource NUMA topology engine (`rda_core::TopoExtension`)
//! has its own parallel stack: a recompute-by-summation reference model
//! ([`topo_model::TopoRefModel`]) whose books are re-derived from live
//! periods on every call, a vector-aware trace dialect
//! ([`topo_trace::TopoDoc`]), a lock-step oracle ([`topo_diff`]), and a
//! bounded explorer over 2-node × 2-layer templates ([`topo_explore`]).
//! Legacy scalar traces replay through the topology oracle unchanged
//! via [`topo_trace::lift`], and the explorer permanently proves its
//! own sensitivity by catching an injected exact-fit off-by-one
//! ([`topo_model::TopoMutation::StrictOffByOne`]).

#![warn(missing_docs)]

pub mod batch;
pub mod diff;
pub mod explore;
pub mod gen;
pub mod model;
pub mod topo_diff;
pub mod topo_explore;
pub mod topo_model;
pub mod topo_trace;
pub mod trace;

pub use batch::{check_batch_equivalence, check_headscan_property, headscan_prediction, quantize_ticks};
pub use diff::{replay, Divergence, Oracle, ReplayReport};
pub use explore::{explore, Exploration, Op, Template};
pub use gen::{fuzz, random_doc, shrink, FuzzFailure, GenParams};
pub use model::{Effect, RefModel};
pub use topo_diff::{
    describe_topo_snapshot_diff, replay_lifted, replay_topo, TopoDivergence, TopoOracle,
    TopoReplayReport,
};
pub use topo_explore::{explore_topo, TopoExploration, TopoOp, TopoTemplate};
pub use topo_model::{TopoEffect, TopoMutation, TopoRefModel};
pub use topo_trace::{default_topo_config, lift, lift_kind, TopoDoc, TopoEvent};
pub use trace::{TraceDoc, TraceEvent};

use rda_sim::system::RdaCall;

/// Convert a call log recorded by `rda_sim::SystemSim` (with
/// `SimConfig::with_rda_trace`) into a replayable [`TraceDoc`] under
/// the given configuration — the bridge that lets whole simulated
/// workloads be re-checked against the reference model event by event.
pub fn doc_from_calls(cfg: rda_core::RdaConfig, calls: &[RdaCall]) -> TraceDoc {
    let events = calls
        .iter()
        .map(|c| match *c {
            RdaCall::Begin {
                now,
                process,
                site,
                demand,
            } => TraceEvent::Begin {
                t: now.cycles(),
                process: process.0,
                site: site.0,
                resource: demand.resource,
                amount: demand.amount,
            },
            RdaCall::End { now, pp } => TraceEvent::End {
                t: now.cycles(),
                pp: pp.0,
            },
            RdaCall::Exit { now, process } => TraceEvent::Exit {
                t: now.cycles(),
                process: process.0,
            },
            RdaCall::Age { now } => TraceEvent::Age { t: now.cycles() },
            RdaCall::Retry {
                now,
                process,
                site,
                resource,
            } => TraceEvent::Retry {
                t: now.cycles(),
                process: process.0,
                site: site.0,
                resource,
            },
        })
        .collect();
    TraceDoc { cfg, events }
}

/// Convert a call log recorded by `rda_sim::TopoTrafficSim` (with
/// `TopoTrafficConfig::record_calls`) into a replayable [`TopoDoc`] —
/// the bridge that lets whole multi-node overload+fault runs be
/// re-checked against the topology reference model event by event.
///
/// `cfg` must be the *post-assignment* configuration the run executed
/// under (i.e. with the per-request layer assignments the driver
/// materialised), or layer-dependent decisions will not reproduce.
pub fn topo_doc_from_calls(cfg: rda_core::TopoConfig, calls: &[rda_sim::TopoCall]) -> TopoDoc {
    use rda_sim::TopoCall;
    let events = calls
        .iter()
        .map(|c| match *c {
            TopoCall::Begin {
                now,
                process,
                site,
                demand,
            } => TopoEvent::Begin {
                t: now.cycles(),
                process: process.0,
                site: site.0,
                demand,
            },
            TopoCall::End { now, pp } => TopoEvent::End {
                t: now.cycles(),
                pp: pp.0,
            },
            TopoCall::Exit { now, process } => TopoEvent::Exit {
                t: now.cycles(),
                process: process.0,
            },
            TopoCall::Age { now } => TopoEvent::Age { t: now.cycles() },
            TopoCall::Retry {
                now,
                process,
                site,
                kind,
            } => TopoEvent::Retry {
                t: now.cycles(),
                process: process.0,
                site: site.0,
                kind,
            },
        })
        .collect();
    TopoDoc { cfg, events }
}
