//! Random scenario generation and trace shrinking.
//!
//! The explorer covers *small* spaces exhaustively; this module covers
//! *large* ones probabilistically. [`random_doc`] derives a whole trace
//! (configuration and events) deterministically from one seed —
//! contended demands, protocol violations, process exits, aging ticks,
//! occasionally non-monotonic clocks — and [`fuzz`] replays a seed
//! range through the differential oracle.
//!
//! When a seed fails, [`shrink`] reduces the trace to a locally minimal
//! repro: greedy single-event deletion to a fixpoint (ddmin's core
//! loop), then per-event simplification (rounding demands down to
//! coarse values). The result is meant to be written to
//! `tests/corpus/<name>.trace` and committed, so every bug the fuzzer
//! ever finds stays fixed forever. Failure predicates are pluggable, so
//! the shrinker itself is testable without a real scheduler bug.

use crate::diff::{replay, Divergence};
use crate::trace::{default_config, TraceDoc, TraceEvent};
use rda_core::{BreakerConfig, DemandAudit, OverloadConfig, PolicyKind, Resource, ShedPolicy};
use rda_simcore::SplitMix64;

/// Shape knobs for [`random_doc`].
#[derive(Debug, Clone)]
pub struct GenParams {
    /// Number of processes issuing calls.
    pub procs: u32,
    /// Number of static sites demands come from.
    pub sites: u32,
    /// Number of events to generate.
    pub events: usize,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            procs: 4,
            sites: 3,
            events: 40,
        }
    }
}

/// Derive a complete random trace from `seed`. The same seed always
/// produces the same document.
pub fn random_doc(seed: u64, params: &GenParams) -> TraceDoc {
    let mut rng = SplitMix64::new(seed);
    let mut cfg = default_config();
    // Small capacities keep contention (and therefore waitlist and
    // aging traffic) high.
    cfg.llc_capacity = 10_000 + rng.next_below(20_000);
    cfg.policy = match rng.next_below(4) {
        0 => PolicyKind::Strict,
        1 => PolicyKind::compromise_default(),
        2 => PolicyKind::Compromise { factor: 1.5 },
        _ => PolicyKind::Partitioned { quota_frac: 0.5 },
    };
    cfg.demand_audit = match rng.next_below(3) {
        0 => DemandAudit::Trust,
        1 => DemandAudit::Clamp,
        _ => DemandAudit::Reject,
    };
    cfg.waitlist_timeout_cycles = match rng.next_below(3) {
        0 => None,
        _ => Some(1_000 + rng.next_below(4_000)),
    };
    cfg.min_eval_interval_cycles = 500 + rng.next_below(2_000);
    // Overload control on two thirds of the seeds, so the bounded
    // gate, deadlines, and breaker hysteresis face random schedules
    // (and the other third keeps pure-closed-system coverage).
    cfg.overload = match rng.next_below(3) {
        0 => None,
        _ => Some(OverloadConfig {
            waitlist_cap: rng.next_below(4) as usize,
            shed_policy: match rng.next_below(3) {
                0 => ShedPolicy::RejectNewest,
                1 => ShedPolicy::RejectOldest,
                _ => ShedPolicy::DegradeToOverflow,
            },
            deadline_cycles: match rng.next_below(2) {
                0 => None,
                _ => Some(500 + rng.next_below(3_000)),
            },
            breaker: match rng.next_below(2) {
                0 => None,
                _ => Some(BreakerConfig {
                    high_water: cfg.llc_capacity / 2 + rng.next_below(cfg.llc_capacity),
                    low_water: cfg.llc_capacity / 4 + rng.next_below(cfg.llc_capacity / 4),
                    trip_after: 1 + rng.next_below(3) as u32,
                    recover_after: 1 + rng.next_below(3) as u32,
                    shed_min_demand: rng.next_below(2_000),
                }),
            },
        }),
    };

    let mut events = Vec::with_capacity(params.events);
    let mut t: u64 = 0;
    let mut allocatable: u64 = 0; // upper bound on allocated pp ids
    for _ in 0..params.events {
        // Mostly monotone clock with occasional backward jumps, to
        // exercise the saturating-time and oldest-first-aging paths.
        if rng.next_below(16) == 0 {
            t = t.saturating_sub(rng.next_below(2_000));
        } else {
            t += rng.next_below(800);
        }
        let ev = match rng.next_below(100) {
            0..=54 => {
                allocatable += 1;
                TraceEvent::Begin {
                    t,
                    process: rng.next_below(params.procs as u64) as u32,
                    site: rng.next_below(params.sites as u64) as u32,
                    resource: if rng.next_below(5) == 0 {
                        Resource::MemBandwidth
                    } else {
                        Resource::Llc
                    },
                    // Up to 1.5× capacity: fits, contends, or trips the
                    // audit / oversized guard.
                    amount: rng.next_below(cfg.llc_capacity * 3 / 2),
                }
            }
            55..=81 => TraceEvent::End {
                // A little past the allocated range, so unknown ids and
                // double ends occur naturally.
                pp: rng.next_below(allocatable + 2),
                t,
            },
            82..=88 => TraceEvent::Exit {
                t,
                process: rng.next_below(params.procs as u64) as u32,
            },
            89..=91 => TraceEvent::Retry {
                t,
                process: rng.next_below(params.procs as u64) as u32,
                site: rng.next_below(params.sites as u64) as u32,
                resource: Resource::Llc,
            },
            _ => TraceEvent::Age { t },
        };
        events.push(ev);
    }
    TraceDoc { cfg, events }
}

/// Replay seeds `0..seeds` through the differential oracle. Returns the
/// first failing seed with its divergence and the **shrunk** repro, or
/// `None` when every seed replays clean.
pub fn fuzz(seeds: u64, params: &GenParams) -> Option<FuzzFailure> {
    for seed in 0..seeds {
        let doc = random_doc(seed, params);
        if replay(&doc).is_err() {
            let shrunk = shrink(&doc, |d| replay(d).is_err());
            let div = replay(&shrunk).expect_err("shrink preserves failure");
            return Some(FuzzFailure {
                seed,
                original_events: doc.events.len(),
                shrunk,
                divergence: *div,
            });
        }
    }
    None
}

/// A failing seed, minimised.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The seed that produced the failing trace.
    pub seed: u64,
    /// Event count before shrinking.
    pub original_events: usize,
    /// The minimised trace (commit this under `tests/corpus/`).
    pub shrunk: TraceDoc,
    /// The divergence the shrunk trace reproduces.
    pub divergence: Divergence,
}

/// Shrink `doc` to a locally minimal trace for which `still_fails`
/// holds: repeatedly delete single events (restarting after every
/// successful deletion) until no single deletion keeps it failing, then
/// try rounding each demand down to coarser values.
pub fn shrink<F: Fn(&TraceDoc) -> bool>(doc: &TraceDoc, still_fails: F) -> TraceDoc {
    debug_assert!(still_fails(doc), "shrinking a non-failing trace");
    let mut best = doc.clone();
    // Phase 1: event deletion to a fixpoint.
    'deletion: loop {
        for i in 0..best.events.len() {
            let mut candidate = best.clone();
            candidate.events.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                continue 'deletion;
            }
        }
        break;
    }
    // Phase 2: simplify surviving begins (smaller round demands).
    for i in 0..best.events.len() {
        if let TraceEvent::Begin { amount, .. } = best.events[i] {
            for coarser in [0, 1_000, amount / 2, amount / 10 * 10] {
                if coarser >= amount {
                    continue;
                }
                let mut candidate = best.clone();
                if let TraceEvent::Begin { amount: a, .. } = &mut candidate.events[i] {
                    *a = coarser;
                }
                if still_fails(&candidate) {
                    best = candidate;
                    break;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = GenParams::default();
        assert_eq!(random_doc(42, &p), random_doc(42, &p));
        assert_ne!(random_doc(42, &p).events, random_doc(43, &p).events);
    }

    #[test]
    fn random_seeds_replay_clean() {
        // The real fuzz gate; a divergence here is a scheduler (or
        // model) bug — shrink it and commit the repro to tests/corpus/.
        let p = GenParams::default();
        if let Some(fail) = fuzz(150, &p) {
            panic!(
                "seed {} diverged ({} events shrunk to {}):\n{}\n--- repro ---\n{}",
                fail.seed,
                fail.original_events,
                fail.shrunk.events.len(),
                fail.divergence,
                fail.shrunk.to_text()
            );
        }
    }

    #[test]
    fn shrinker_minimises_against_a_synthetic_predicate() {
        // Predicate: "fails" iff the trace still contains an exit of
        // process 3 AND an age tick — everything else is noise the
        // shrinker must delete.
        let p = GenParams {
            procs: 5,
            sites: 2,
            events: 60,
        };
        let mut doc = random_doc(7, &p);
        doc.events.push(TraceEvent::Exit { t: 1, process: 3 });
        doc.events.push(TraceEvent::Age { t: 2 });
        let fails = |d: &TraceDoc| {
            d.events
                .iter()
                .any(|e| matches!(e, TraceEvent::Exit { process: 3, .. }))
                && d.events.iter().any(|e| matches!(e, TraceEvent::Age { .. }))
        };
        let shrunk = shrink(&doc, fails);
        assert_eq!(shrunk.events.len(), 2, "exactly the two needed events");
        assert!(fails(&shrunk));
    }

    #[test]
    fn shrinker_rounds_demands_down() {
        let doc = TraceDoc::new(vec![TraceEvent::Begin {
            t: 0,
            process: 0,
            site: 0,
            resource: Resource::Llc,
            amount: 123_457,
        }]);
        // Failure only requires *some* begin to be present.
        let shrunk = shrink(&doc, |d| !d.events.is_empty());
        match shrunk.events[0] {
            TraceEvent::Begin { amount, .. } => assert_eq!(amount, 0),
            ref other => panic!("{other:?}"),
        }
    }
}
