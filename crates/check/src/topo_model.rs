//! A pure-functional reference model of the topology engine.
//!
//! The multi-node analogue of [`crate::model::RefModel`]: an
//! *executable specification* of [`rda_core::TopoExtension`] — demand
//! vectors, deterministic least-occupied placement, layered policies
//! with capacity guarantees, per-node waitlists/aging/overload — written
//! from DESIGN.md §9 and **deliberately sharing no logic with the
//! implementation**. Where the engine keeps incremental per-node and
//! per-layer books, this model *recomputes every quantity by summation
//! over the live periods* on every call: usage, overflow, layer usage,
//! and guarantee reservations are all derived, never cached. A missed
//! or double release in the implementation's incremental accounting
//! therefore cannot be mirrored here — it surfaces as a snapshot
//! divergence on the very next event.
//!
//! The model also carries a [`TopoMutation`] knob: a deliberately
//! injected predicate off-by-one (`>=` weakened to `>`) used by the
//! bounded explorer's self-test to prove the oracle *would* catch such
//! a bug (see `topo_explore`). Production checks run with
//! [`TopoMutation::None`].

#![allow(clippy::needless_range_loop)] // node/layer loops index several recomputed books at once

use rda_core::{
    Demand, DemandAudit, KIND_COUNT, LayerId, NodeId, PolicyKind, PpId, RdaStats, ResourceKind,
    ResourceSpace, ShedPolicy, TopoConfig, TopoError, TopoPpSnap, TopoSnapshot, TopoWaitSnap,
};
use rda_sched::ProcessId;
use rda_simcore::Fnv1a64;
use std::collections::BTreeMap;

/// The observable effect of one topology-engine call — shared
/// vocabulary between the model and the mapped outcomes of
/// [`rda_core::TopoExtension`]. The engine has no memoised fast path,
/// so unlike [`crate::model::Effect`] there are no `fast` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoEffect {
    /// `pp_begin` under a non-gating layer policy: nothing tracked.
    Bypass,
    /// `pp_begin` admitted the period onto a node.
    Run {
        /// The allocated period id.
        pp: PpId,
    },
    /// `pp_begin` waitlisted the period on its pinned node.
    Pause {
        /// The allocated (waitlisted) period id.
        pp: PpId,
        /// Under [`ShedPolicy::RejectOldest`] at the waitlist cap, the
        /// longest-queued waiter evicted to make room.
        shed: Option<PpId>,
    },
    /// `pp_end` completed a period.
    End {
        /// Waitlisted periods admitted by the completion, in order.
        resumed: Vec<(PpId, ProcessId)>,
    },
    /// `process_exit` or `age_waitlist` ran; these cannot fail.
    Woken {
        /// Waitlisted periods admitted by the call.
        resumed: Vec<(PpId, ProcessId)>,
        /// Waitlisted periods expired past their deadline.
        expired: Vec<(PpId, ProcessId)>,
    },
    /// `note_retry` ran: a client-side retry was counted.
    Retried,
    /// The call was rejected with a typed error.
    Rejected(TopoError),
}

/// A deliberately injected model bug, for oracle self-tests.
///
/// The satellite methodology of ISSUE 8: inject a classic predicate
/// off-by-one, watch the bounded explorer produce a counterexample,
/// and keep that as a permanent regression test of the *checker's*
/// sensitivity. [`TopoMutation::None`] is the production setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopoMutation {
    /// No mutation: the faithful model.
    #[default]
    None,
    /// Weaken the admission predicate's `usage + demand <= limit` to a
    /// strict `<` — exact-fit admissions are wrongly refused.
    StrictOffByOne,
}

/// A live period as the model tracks it. `declared` holds the
/// *audited* vector — what the implementation registers after the
/// demand audit — since that is what [`TopoSnapshot`] exposes.
#[derive(Debug, Clone, Copy)]
struct MPeriod {
    process: ProcessId,
    site: u32,
    layer: u32,
    node: usize,
    declared: Demand,
    accounted: Demand,
    admitted: bool,
    overflow: bool,
    begun: u64,
}

/// The topology reference model. Construct with the same
/// [`TopoConfig`] as the implementation under test and drive both with
/// identical calls.
#[derive(Debug, Clone)]
pub struct TopoRefModel {
    cfg: TopoConfig,
    mutation: TopoMutation,
    next_id: u64,
    periods: BTreeMap<u64, MPeriod>,
    /// Per-node FIFO of waitlisted period ids (everything else about a
    /// waiter is derived from its period record).
    waitlists: Vec<Vec<u64>>,
    stats: RdaStats,
    breaker_open: Vec<[bool; KIND_COUNT]>,
    breaker_above: Vec<[u32; KIND_COUNT]>,
    breaker_below: Vec<[u32; KIND_COUNT]>,
}

/// The usage ceiling a policy enforces on a resource of `capacity`
/// (restated flat, independent of `PolicyKind::usage_limit`).
fn usage_limit(policy: PolicyKind, capacity: u64) -> u64 {
    match policy {
        PolicyKind::DefaultOnly => u64::MAX,
        PolicyKind::Strict | PolicyKind::Partitioned { .. } => capacity,
        PolicyKind::Compromise { factor } => (capacity as f64 * factor) as u64,
    }
}

/// The amount actually accounted for a component declaring `demand`.
fn effective(policy: PolicyKind, demand: u64, capacity: u64) -> u64 {
    match policy {
        PolicyKind::Partitioned { quota_frac } => demand.min((capacity as f64 * quota_frac) as u64),
        _ => demand,
    }
}

impl TopoRefModel {
    /// A fresh, faithful model with the given configuration.
    pub fn new(cfg: TopoConfig) -> Self {
        Self::with_mutation(cfg, TopoMutation::None)
    }

    /// A model with a deliberately injected bug (oracle self-tests).
    pub fn with_mutation(cfg: TopoConfig, mutation: TopoMutation) -> Self {
        let nodes = cfg.spec.node_count();
        TopoRefModel {
            mutation,
            next_id: 0,
            periods: BTreeMap::new(),
            waitlists: vec![Vec::new(); nodes],
            stats: RdaStats::default(),
            breaker_open: vec![[false; KIND_COUNT]; nodes],
            breaker_above: vec![[0; KIND_COUNT]; nodes],
            breaker_below: vec![[0; KIND_COUNT]; nodes],
            cfg,
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &TopoConfig {
        &self.cfg
    }

    /// The active mutation knob.
    pub fn mutation(&self) -> TopoMutation {
        self.mutation
    }

    fn nodes(&self) -> usize {
        self.cfg.spec.node_count()
    }

    fn cap(&self, n: usize, k: ResourceKind) -> u64 {
        self.cfg.spec.caps[n][k.index()]
    }

    /// Nominal usage of a kind on a node, recomputed by summation.
    fn usage_of(&self, n: usize, k: ResourceKind) -> u64 {
        self.periods
            .values()
            .filter(|p| p.node == n && p.admitted && !p.overflow)
            .map(|p| p.accounted.get(k))
            .sum()
    }

    /// Overflow-bucket usage of a kind on a node, by summation.
    fn overflow_of(&self, n: usize, k: ResourceKind) -> u64 {
        self.periods
            .values()
            .filter(|p| p.node == n && p.admitted && p.overflow)
            .map(|p| p.accounted.get(k))
            .sum()
    }

    /// Nominal usage one layer holds of a kind on a node, by summation.
    fn layer_usage_of(&self, layer: u32, n: usize, k: ResourceKind) -> u64 {
        self.periods
            .values()
            .filter(|p| p.node == n && p.layer == layer && p.admitted && !p.overflow)
            .map(|p| p.accounted.get(k))
            .sum()
    }

    /// Capacity other layers' unconsumed guarantees reserve away from
    /// `layer` for kind `k` on node `n` (the formula of DESIGN.md §9,
    /// with the per-layer draw-down recomputed from the live periods).
    fn reserved_by_others(&self, n: usize, k: ResourceKind, layer: u32) -> u64 {
        let mut reserved = 0u64;
        for (li, spec) in self.cfg.layers.layers.iter().enumerate() {
            if li as u32 == layer {
                continue;
            }
            if let Some(g) = spec.guarantee {
                let unused = g
                    .get(k)
                    .saturating_sub(self.layer_usage_of(li as u32, n, k));
                reserved = reserved.saturating_add(unused);
            }
        }
        reserved
    }

    /// The vector accounted on node `n` for an audited demand under
    /// `policy` (Partitioned clamps each component to its quota).
    fn accounted_on(&self, n: usize, audited: &Demand, policy: PolicyKind) -> Demand {
        let mut acc = Demand::ZERO;
        for k in ResourceKind::ALL {
            acc = acc.with(k, effective(policy, audited.get(k), self.cap(n, k)));
        }
        acc
    }

    /// Whether node `n` can admit `acc` nominally for `layer` — every
    /// demanded component must fit below the policy limit net of
    /// guarantee reservations. `Err(kind)` flags a 64-bit book wrap;
    /// components above the limit are skipped (deadlock guard). The
    /// [`TopoMutation::StrictOffByOne`] knob tightens `<=` to `<` here.
    fn fits(&self, n: usize, layer: u32, acc: &Demand) -> Result<bool, ResourceKind> {
        let policy = self.cfg.layers.spec(LayerId(layer)).policy;
        for k in ResourceKind::ALL {
            let a = acc.get(k);
            if a == 0 {
                continue;
            }
            let used = self.usage_of(n, k);
            if used.checked_add(a).is_none() {
                return Err(k);
            }
            let lim = usage_limit(policy, self.cap(n, k));
            if a > lim {
                continue;
            }
            let limit = lim.saturating_sub(self.reserved_by_others(n, k, layer));
            let ok = match self.mutation {
                TopoMutation::None => used + a <= limit,
                TopoMutation::StrictOffByOne => used + a < limit,
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Placement score: the worst relative occupancy over the demanded
    /// kinds, scaled `2^32 / capacity`. Lower is better.
    fn score(&self, n: usize, demand: &Demand) -> u128 {
        let mut score = 0u128;
        for k in demand.touched() {
            let cap = self.cap(n, k);
            if cap == 0 {
                continue;
            }
            let occ = self.usage_of(n, k) as u128 + self.overflow_of(n, k) as u128;
            score = score.max((occ << 32) / cap as u128);
        }
        score
    }

    #[allow(clippy::too_many_arguments)]
    fn alloc(
        &mut self,
        process: ProcessId,
        site: u32,
        layer: u32,
        node: usize,
        declared: Demand,
        accounted: Demand,
        admitted: bool,
        overflow: bool,
        now: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.periods.insert(
            id,
            MPeriod {
                process,
                site,
                layer,
                node,
                declared,
                accounted,
                admitted,
                overflow,
                begun: now,
            },
        );
        id
    }

    /// Model of `pp_begin` with a demand vector.
    pub fn pp_begin(&mut self, process: ProcessId, site: u32, demand: Demand, now: u64) -> TopoEffect {
        let layer = self.cfg.layers.layer_of(process.0).0;
        let policy = self.cfg.layers.spec(LayerId(layer)).policy;
        if matches!(policy, PolicyKind::DefaultOnly) {
            return TopoEffect::Bypass;
        }
        self.stats.begins += 1;

        // Per-component demand audit against the machine-wide maximum
        // capacity of each kind.
        let mut audited = demand;
        let mut clamped = false;
        for k in ResourceKind::ALL {
            let a = demand.get(k);
            let capmax = self.cfg.spec.max_capacity(k);
            if a <= capmax {
                continue;
            }
            match self.cfg.demand_audit {
                DemandAudit::Trust => {}
                DemandAudit::Clamp => {
                    audited = audited.with(k, capmax);
                    clamped = true;
                }
                DemandAudit::Reject => {
                    self.stats.clamped += 1;
                    return TopoEffect::Rejected(TopoError::DemandOverflow {
                        kind: k,
                        declared: a,
                        capacity: capmax,
                    });
                }
            }
        }
        if clamped {
            self.stats.clamped += 1;
        }

        // Open breakers exclude nodes; all nodes blocked sheds outright.
        let nodes = self.nodes();
        let mut eligible = vec![true; nodes];
        if let Some(b) = self.cfg.overload.and_then(|o| o.breaker) {
            let mut first_block = None;
            for n in 0..nodes {
                for k in ResourceKind::ALL {
                    if self.breaker_open[n][k.index()] && audited.get(k) >= b.shed_min_demand {
                        eligible[n] = false;
                        if first_block.is_none() {
                            first_block = Some((NodeId(n as u32), k));
                        }
                    }
                }
            }
            if eligible.iter().all(|&e| !e) {
                let (node, kind) = first_block.expect("a blocker exists");
                self.stats.shed += 1;
                return TopoEffect::Rejected(TopoError::BreakerOpen { node, kind });
            }
        }

        // Placement: least-occupied feasible node, ties to the lowest
        // node id; wrapping nodes are disqualified.
        let mut best: Option<(u128, usize)> = None;
        let mut all_wrap = true;
        let mut wrap_kind = None;
        for n in 0..nodes {
            if !eligible[n] {
                continue;
            }
            let acc = self.accounted_on(n, &audited, policy);
            match self.fits(n, layer, &acc) {
                Err(k) => {
                    if wrap_kind.is_none() {
                        wrap_kind = Some(k);
                    }
                }
                Ok(feasible) => {
                    all_wrap = false;
                    if feasible {
                        let score = self.score(n, &audited);
                        if best.is_none_or(|(s, _)| score < s) {
                            best = Some((score, n));
                        }
                    }
                }
            }
        }
        if all_wrap {
            let k = wrap_kind.expect("an eligible node exists");
            self.stats.clamped += 1;
            return TopoEffect::Rejected(TopoError::DemandOverflow {
                kind: k,
                declared: audited.get(k),
                capacity: self.cfg.spec.max_capacity(k),
            });
        }

        if let Some((_, n)) = best {
            let acc = self.accounted_on(n, &audited, policy);
            if acc
                .touched()
                .any(|k| acc.get(k) > usage_limit(policy, self.cap(n, k)))
            {
                self.stats.oversized_admits += 1;
            }
            let pp = self.alloc(process, site, layer, n, audited, acc, true, false, now);
            self.stats.admitted += 1;
            return TopoEffect::Run { pp: PpId(pp) };
        }

        // No node fits: pin to the least-occupied eligible node's
        // waitlist, behind that node's overload gate.
        let target = (0..nodes)
            .filter(|&n| eligible[n])
            .min_by_key(|&n| (self.score(n, &audited), n))
            .expect("at least one eligible node");
        let acc = self.accounted_on(target, &audited, policy);
        let mut shed = None;
        if let Some(ov) = self.cfg.overload {
            if self.waitlists[target].len() >= ov.waitlist_cap {
                match ov.shed_policy {
                    ShedPolicy::RejectOldest if !self.waitlists[target].is_empty() => {
                        let victim = self.waitlists[target].remove(0);
                        self.periods.remove(&victim);
                        self.stats.shed += 1;
                        shed = Some(PpId(victim));
                    }
                    ShedPolicy::DegradeToOverflow => {
                        let pp =
                            self.alloc(process, site, layer, target, audited, acc, true, true, now);
                        self.stats.shed += 1;
                        return TopoEffect::Run { pp: PpId(pp) };
                    }
                    _ => {
                        self.stats.shed += 1;
                        return TopoEffect::Rejected(TopoError::WaitlistFull {
                            node: NodeId(target as u32),
                        });
                    }
                }
            }
        }
        let pp = self.alloc(process, site, layer, target, audited, acc, false, false, now);
        self.waitlists[target].push(pp);
        self.stats.paused += 1;
        self.stats.max_waitlist = self
            .stats
            .max_waitlist
            .max(self.waitlists[target].len() as u64);
        TopoEffect::Pause { pp: PpId(pp), shed }
    }

    /// Model of `pp_end`.
    pub fn pp_end(&mut self, pp: PpId, now: u64) -> TopoEffect {
        self.stats.ends += 1;
        let Some(rec) = self.periods.get(&pp.0) else {
            self.stats.rejected_ends += 1;
            return TopoEffect::Rejected(if pp.0 < self.next_id {
                TopoError::DoubleEnd(pp)
            } else {
                TopoError::UnknownPp(pp)
            });
        };
        if !rec.admitted {
            self.stats.rejected_ends += 1;
            return TopoEffect::Rejected(TopoError::EndWhileWaitlisted(pp));
        }
        let rec = self.periods.remove(&pp.0).expect("checked live above");
        let resumed = self.drain(rec.node, now);
        TopoEffect::End { resumed }
    }

    /// Model of `process_exit`: reclaim every live period of the
    /// process, then drain every touched node (node-granular — a
    /// reclaimed vector can unblock waiters on any of its components).
    pub fn process_exit(&mut self, process: ProcessId, now: u64) -> TopoEffect {
        let live: Vec<u64> = self
            .periods
            .iter()
            .filter(|(_, r)| r.process == process)
            .map(|(&id, _)| id)
            .collect();
        let had_any = !live.is_empty();
        let mut touched = vec![false; self.nodes()];
        for id in live {
            let rec = self.periods.remove(&id).expect("collected above");
            touched[rec.node] = true;
            if !rec.admitted {
                self.waitlists[rec.node].retain(|&w| w != id);
            }
            self.stats.reclaimed += 1;
        }
        if !had_any {
            return TopoEffect::Woken {
                resumed: Vec::new(),
                expired: Vec::new(),
            };
        }
        let mut resumed = Vec::new();
        for n in 0..self.nodes() {
            if touched[n] || self.has_expired_waiter(n, now) {
                resumed.extend(self.drain(n, now));
            }
        }
        TopoEffect::Woken {
            resumed,
            expired: Vec::new(),
        }
    }

    /// Model of `age_waitlist`: per-node deadline expiry, then
    /// aging-triggered drains, then the per-node breakers.
    pub fn age_waitlist(&mut self, now: u64) -> TopoEffect {
        if self.cfg.waitlist_timeout_cycles.is_none() && self.cfg.overload.is_none() {
            return TopoEffect::Woken {
                resumed: Vec::new(),
                expired: Vec::new(),
            };
        }
        let mut expired = Vec::new();
        let mut expired_touched = vec![false; self.nodes()];
        if let Some(deadline) = self.cfg.overload.and_then(|o| o.deadline_cycles) {
            for n in 0..self.nodes() {
                // Enqueue times are monotone per queue: expired waiters
                // form a prefix.
                while let Some(&front) = self.waitlists[n].first() {
                    let enq = self.periods[&front].begun;
                    if now.saturating_sub(enq) < deadline {
                        break;
                    }
                    self.waitlists[n].remove(0);
                    let rec = self.periods.remove(&front).expect("waiter is live");
                    self.stats.expired += 1;
                    expired_touched[n] = true;
                    expired.push((PpId(front), rec.process));
                }
            }
        }
        let mut resumed = Vec::new();
        for n in 0..self.nodes() {
            if expired_touched[n] || self.has_expired_waiter(n, now) {
                resumed.extend(self.drain(n, now));
            }
        }
        self.evaluate_breaker();
        TopoEffect::Woken { resumed, expired }
    }

    /// Model of `note_retry`.
    pub fn note_retry(&mut self) -> TopoEffect {
        self.stats.retried += 1;
        TopoEffect::Retried
    }

    /// True when node `n` holds a waiter past the aging timeout.
    fn has_expired_waiter(&self, n: usize, now: u64) -> bool {
        let Some(timeout) = self.cfg.waitlist_timeout_cycles else {
            return false;
        };
        self.waitlists[n]
            .iter()
            .map(|pp| self.periods[pp].begun)
            .min()
            .is_some_and(|oldest| now.saturating_sub(oldest) >= timeout)
    }

    /// Per-node, per-kind breaker hysteresis over summed occupancy.
    fn evaluate_breaker(&mut self) {
        let Some(b) = self.cfg.overload.and_then(|o| o.breaker) else {
            return;
        };
        for n in 0..self.nodes() {
            for k in ResourceKind::ALL {
                let i = k.index();
                let occupancy = self.usage_of(n, k).saturating_add(self.overflow_of(n, k));
                if self.breaker_open[n][i] {
                    if occupancy < b.low_water {
                        self.breaker_below[n][i] += 1;
                        if self.breaker_below[n][i] >= b.recover_after {
                            self.breaker_open[n][i] = false;
                            self.breaker_below[n][i] = 0;
                        }
                    } else {
                        self.breaker_below[n][i] = 0;
                    }
                } else if occupancy >= b.high_water {
                    self.breaker_above[n][i] += 1;
                    if self.breaker_above[n][i] >= b.trip_after {
                        self.breaker_open[n][i] = true;
                        self.breaker_above[n][i] = 0;
                        self.stats.breaker_trips += 1;
                    }
                } else {
                    self.breaker_above[n][i] = 0;
                }
            }
        }
    }

    /// Whether the modelled breaker is open for a kind on a node —
    /// compared against the implementation by the oracle (breaker state
    /// is deliberately not part of the snapshot).
    pub fn breaker_is_open(&self, node: NodeId, k: ResourceKind) -> bool {
        self.breaker_open[node.0 as usize][k.index()]
    }

    /// Walk one node's FIFO: admit while the head fits (every demanded
    /// component re-checked), then force-admit a timed-out head into
    /// the overflow bucket and re-walk.
    fn drain(&mut self, n: usize, now: u64) -> Vec<(PpId, ProcessId)> {
        let mut resumed = Vec::new();
        loop {
            while let Some(&head) = self.waitlists[n].first() {
                let (layer, acc) = {
                    let rec = &self.periods[&head];
                    (rec.layer, rec.accounted)
                };
                if !matches!(self.fits(n, layer, &acc), Ok(true)) {
                    break;
                }
                self.waitlists[n].remove(0);
                let rec = self.periods.get_mut(&head).expect("waiter is live");
                rec.admitted = true;
                let process = rec.process;
                self.stats.resumed += 1;
                resumed.push((PpId(head), process));
            }
            let Some(timeout) = self.cfg.waitlist_timeout_cycles else {
                break;
            };
            let Some(&head) = self.waitlists[n].first() else {
                break;
            };
            if now.saturating_sub(self.periods[&head].begun) < timeout {
                break;
            }
            self.waitlists[n].remove(0);
            let rec = self.periods.get_mut(&head).expect("waiter is live");
            rec.admitted = true;
            rec.overflow = true;
            let process = rec.process;
            self.stats.aged_admissions += 1;
            resumed.push((PpId(head), process));
        }
        resumed
    }

    /// The model's observable state in the implementation's
    /// [`TopoSnapshot`] vocabulary, for direct comparison. The books
    /// are recomputed by summation here — the whole point of the model.
    pub fn snapshot(&self) -> TopoSnapshot {
        let nodes = self.nodes();
        let mut usage = vec![[0u64; KIND_COUNT]; nodes];
        let mut overflow = vec![[0u64; KIND_COUNT]; nodes];
        for n in 0..nodes {
            for k in ResourceKind::ALL {
                usage[n][k.index()] = self.usage_of(n, k);
                overflow[n][k.index()] = self.overflow_of(n, k);
            }
        }
        TopoSnapshot {
            usage,
            overflow,
            waitlists: self
                .waitlists
                .iter()
                .map(|q| {
                    q.iter()
                        .map(|pp| {
                            let rec = &self.periods[pp];
                            TopoWaitSnap {
                                pp: PpId(*pp),
                                accounted: rec.accounted,
                                enqueued_cycles: rec.begun,
                            }
                        })
                        .collect()
                })
                .collect(),
            periods: self
                .periods
                .iter()
                .map(|(&id, r)| TopoPpSnap {
                    id: PpId(id),
                    process: r.process,
                    site: rda_core::SiteId(r.site),
                    layer: LayerId(r.layer),
                    node: NodeId(r.node as u32),
                    declared: r.declared,
                    accounted: r.accounted,
                    admitted: r.admitted,
                    overflow: r.overflow,
                })
                .collect(),
            stats: self.stats,
            allocated: self.next_id,
        }
    }

    /// Digest of the per-node breaker state (open flags and hysteresis
    /// streaks) — folded into the explorer's memo key, since breaker
    /// state is not part of [`TopoSnapshot`].
    pub fn breaker_digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        for n in 0..self.nodes() {
            for i in 0..KIND_COUNT {
                h.write_u64(self.breaker_open[n][i] as u64)
                    .write_u64(self.breaker_above[n][i] as u64)
                    .write_u64(self.breaker_below[n][i] as u64);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::{LayerSet, LayerSpec, TopoSpec};

    fn two_node_cfg() -> TopoConfig {
        TopoConfig::new(
            TopoSpec::uniform(2, 100, 50, 1000),
            LayerSet::single(PolicyKind::Strict),
        )
    }

    #[test]
    fn placement_and_vector_gating_mirror_the_engine() {
        let mut m = TopoRefModel::new(two_node_cfg());
        let a = m.pp_begin(ProcessId(0), 0, Demand::llc(60), 0);
        assert!(matches!(a, TopoEffect::Run { .. }));
        let b = m.pp_begin(ProcessId(1), 1, Demand::llc(60), 1);
        assert!(matches!(b, TopoEffect::Run { .. }));
        // Both nodes at 60/100; a third 60 must wait.
        let c = m.pp_begin(ProcessId(2), 2, Demand::llc(60), 2);
        assert!(matches!(c, TopoEffect::Pause { .. }));
        let s = m.snapshot();
        assert_eq!(s.usage[0][0], 60);
        assert_eq!(s.usage[1][0], 60);
        assert_eq!(s.waitlists.iter().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn exit_drains_all_components_on_the_node() {
        let mut m = TopoRefModel::new(two_node_cfg());
        // Fill both nodes' membw so the waiter below has one target.
        m.pp_begin(ProcessId(0), 0, Demand::new(90, 45, 0), 0);
        m.pp_begin(ProcessId(1), 1, Demand::new(90, 45, 0), 1);
        let w = m.pp_begin(ProcessId(2), 2, Demand::new(0, 10, 0), 2);
        let TopoEffect::Pause { pp, .. } = w else {
            panic!("expected Pause, got {w:?}");
        };
        // The holder's exit frees llc AND membw; the membw-only waiter
        // must resume even though its own vector never mentions llc.
        let eff = m.process_exit(ProcessId(0), 3);
        let TopoEffect::Woken { resumed, .. } = eff else {
            panic!("expected Woken");
        };
        assert_eq!(resumed, vec![(pp, ProcessId(2))]);
    }

    #[test]
    fn mutation_refuses_exact_fits() {
        let cfg = TopoConfig::new(
            TopoSpec::single(100, 50, 1000),
            LayerSet::single(PolicyKind::Strict),
        );
        let mut honest = TopoRefModel::new(cfg.clone());
        let mut mutated = TopoRefModel::with_mutation(cfg, TopoMutation::StrictOffByOne);
        assert!(matches!(
            honest.pp_begin(ProcessId(0), 0, Demand::llc(100), 0),
            TopoEffect::Run { .. }
        ));
        assert!(matches!(
            mutated.pp_begin(ProcessId(0), 0, Demand::llc(100), 0),
            TopoEffect::Pause { .. }
        ));
    }

    #[test]
    fn guarantee_reservation_is_recomputed_from_periods() {
        let layers = LayerSet::new(vec![
            LayerSpec::new("batch", PolicyKind::Strict),
            LayerSpec::new("latency", PolicyKind::Strict).with_guarantee(Demand::llc(40)),
        ])
        .with_assignment(9, LayerId(1));
        let mut m = TopoRefModel::new(TopoConfig::new(TopoSpec::single(100, 50, 1000), layers));
        // Batch can only use 100 - 40 = 60 while the guarantee is idle.
        assert!(matches!(
            m.pp_begin(ProcessId(0), 0, Demand::llc(61), 0),
            TopoEffect::Pause { .. }
        ));
        // The guaranteed layer draws its slice down ...
        assert!(matches!(
            m.pp_begin(ProcessId(9), 1, Demand::llc(30), 1),
            TopoEffect::Run { .. }
        ));
        // ... leaving 100 - 30(used) - 10(still reserved) = 60 for batch.
        assert!(matches!(
            m.pp_begin(ProcessId(1), 2, Demand::llc(60), 2),
            TopoEffect::Run { .. }
        ));
    }
}
