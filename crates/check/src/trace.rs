//! The `.trace` text format: replayable event traces for the
//! differential oracle.
//!
//! A trace file is a configuration header followed by one event per
//! line, `#` comments and blank lines ignored:
//!
//! ```text
//! # Two processes contending for a 15 MB LLC under RDA:Strict.
//! policy strict
//! audit trust
//! timeout 1000000
//!
//! begin 0      0 0 llc 10mb
//! begin 1000   1 1 llc 10mb
//! end   2000   0
//! ```
//!
//! Header keys (each optional; defaults are the Xeon E5-2420 machine
//! under `policy strict`, `audit trust`, no aging):
//!
//! * `policy default | strict | compromise <factor> | partitioned <frac>`
//! * `llc <bytes>` / `membw <bytes>` — resource capacities
//! * `audit trust | clamp | reject`
//! * `timeout none | <cycles>` — waitlist aging timeout
//! * `interval <cycles>` — fast-path re-evaluation interval
//! * `overload <cap> <reject_newest|reject_oldest|degrade>` — bounded
//!   waitlist gate with its shedding policy
//! * `deadline <cycles>` — per-request waitlist deadline (requires a
//!   preceding `overload` line)
//! * `breaker <high> <low> <trip> <recover> <min>` — saturation
//!   circuit breaker: high/low occupancy water marks and minimum shed
//!   demand as amounts, trip/recover hysteresis in ticks (requires a
//!   preceding `overload` line)
//!
//! Events (all times in cycles; amounts accept a raw byte count or a
//! decimal with an `mb` suffix):
//!
//! * `begin <t> <process> <site> <llc|membw> <amount>`
//! * `end <t> <pp>` — pp ids are allocated sequentially from 0 in
//!   begin order, so traces reference them by index
//! * `exit <t> <process>`
//! * `age <t>`
//! * `retry <t> <process> <site> <llc|membw>` — a client-side retry of
//!   a shed or expired arrival
//!
//! Shrunk counterexamples from the random generator are written in this
//! format under `tests/corpus/` and replayed by CI forever after.

use rda_core::{BreakerConfig, DemandAudit, OverloadConfig, PolicyKind, RdaConfig, Resource, ShedPolicy};
use rda_machine::MachineConfig;
use std::fmt::Write as _;

/// One replayable extension call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `pp_begin(process, site, {resource, amount})` at cycle `t`.
    Begin {
        /// Call time, cycles.
        t: u64,
        /// Calling process.
        process: u32,
        /// Static call site.
        site: u32,
        /// Targeted resource.
        resource: Resource,
        /// Declared demand (pre-audit), bytes.
        amount: u64,
    },
    /// `pp_end(pp)` at cycle `t`.
    End {
        /// Call time, cycles.
        t: u64,
        /// The period id to end (sequential from 0 in begin order).
        pp: u64,
    },
    /// `process_exit(process)` at cycle `t`.
    Exit {
        /// Call time, cycles.
        t: u64,
        /// The exiting process.
        process: u32,
    },
    /// `age_waitlist()` at cycle `t`.
    Age {
        /// Call time, cycles.
        t: u64,
    },
    /// `note_retry(process, site, resource)` at cycle `t`.
    Retry {
        /// Call time, cycles.
        t: u64,
        /// The retrying process.
        process: u32,
        /// Static call site of the retried demand.
        site: u32,
        /// The resource the retried demand targets.
        resource: Resource,
    },
}

/// A parsed trace: the extension configuration plus the event sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDoc {
    /// Configuration both the model and the implementation replay under.
    pub cfg: RdaConfig,
    /// The events, in call order.
    pub events: Vec<TraceEvent>,
}

/// The header defaults: the paper's machine under RDA:Strict.
pub fn default_config() -> RdaConfig {
    RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), PolicyKind::Strict)
}

impl TraceDoc {
    /// A trace over the default header with the given events.
    pub fn new(events: Vec<TraceEvent>) -> Self {
        TraceDoc {
            cfg: default_config(),
            events,
        }
    }

    /// Parse the text format. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut cfg = default_config();
        let mut events = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let no = no + 1;
            let mut words = line.split_whitespace();
            let key = words.next().expect("non-empty line has a first word");
            let fields: Vec<&str> = words.collect();
            let fail = |msg: &str| format!("line {no}: {msg}: `{raw}`");
            let is_event = matches!(key, "begin" | "end" | "exit" | "age" | "retry");
            if !is_event && !events.is_empty() {
                return Err(fail("header line after the first event"));
            }
            match key {
                "policy" => {
                    cfg.policy = match fields.as_slice() {
                        ["default"] => PolicyKind::DefaultOnly,
                        ["strict"] => PolicyKind::Strict,
                        ["compromise", f] => PolicyKind::Compromise {
                            factor: f.parse().map_err(|_| fail("bad factor"))?,
                        },
                        ["partitioned", f] => PolicyKind::Partitioned {
                            quota_frac: f.parse().map_err(|_| fail("bad quota"))?,
                        },
                        _ => return Err(fail("unknown policy")),
                    }
                }
                "llc" => cfg.llc_capacity = parse_amount(fields.first(), &fail)?,
                "membw" => cfg.membw_capacity = parse_amount(fields.first(), &fail)?,
                "audit" => {
                    cfg.demand_audit = match fields.as_slice() {
                        ["trust"] => DemandAudit::Trust,
                        ["clamp"] => DemandAudit::Clamp,
                        ["reject"] => DemandAudit::Reject,
                        _ => return Err(fail("unknown audit mode")),
                    }
                }
                "timeout" => {
                    cfg.waitlist_timeout_cycles = match fields.as_slice() {
                        ["none"] => None,
                        [n] => Some(n.parse().map_err(|_| fail("bad timeout"))?),
                        _ => return Err(fail("expected `timeout none|<cycles>`")),
                    }
                }
                "interval" => {
                    cfg.min_eval_interval_cycles = match fields.as_slice() {
                        [n] => n.parse().map_err(|_| fail("bad interval"))?,
                        _ => return Err(fail("expected `interval <cycles>`")),
                    }
                }
                "overload" => {
                    cfg.overload = match fields.as_slice() {
                        [cap, policy] => Some(OverloadConfig {
                            waitlist_cap: cap.parse().map_err(|_| fail("bad waitlist cap"))?,
                            shed_policy: match *policy {
                                "reject_newest" => ShedPolicy::RejectNewest,
                                "reject_oldest" => ShedPolicy::RejectOldest,
                                "degrade" => ShedPolicy::DegradeToOverflow,
                                _ => {
                                    return Err(fail(
                                        "shed policy must be reject_newest|reject_oldest|degrade",
                                    ))
                                }
                            },
                            deadline_cycles: None,
                            breaker: None,
                        }),
                        _ => return Err(fail("expected `overload <cap> <policy>`")),
                    }
                }
                "deadline" => {
                    let ov = cfg
                        .overload
                        .as_mut()
                        .ok_or_else(|| fail("deadline requires a preceding overload line"))?;
                    ov.deadline_cycles = match fields.as_slice() {
                        [n] => Some(n.parse().map_err(|_| fail("bad deadline"))?),
                        _ => return Err(fail("expected `deadline <cycles>`")),
                    }
                }
                "breaker" => {
                    let breaker = match fields.as_slice() {
                        [high, low, trip, recover, min] => BreakerConfig {
                            high_water: parse_amount(Some(high), &fail)?,
                            low_water: parse_amount(Some(low), &fail)?,
                            trip_after: trip.parse().map_err(|_| fail("bad trip count"))?,
                            recover_after: recover
                                .parse()
                                .map_err(|_| fail("bad recover count"))?,
                            shed_min_demand: parse_amount(Some(min), &fail)?,
                        },
                        _ => {
                            return Err(fail(
                                "expected `breaker <high> <low> <trip> <recover> <min>`",
                            ))
                        }
                    };
                    cfg.overload
                        .as_mut()
                        .ok_or_else(|| fail("breaker requires a preceding overload line"))?
                        .breaker = Some(breaker);
                }
                "begin" => match fields.as_slice() {
                    [t, process, site, resource, amount] => events.push(TraceEvent::Begin {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                        process: process.parse().map_err(|_| fail("bad process"))?,
                        site: site.parse().map_err(|_| fail("bad site"))?,
                        resource: match *resource {
                            "llc" => Resource::Llc,
                            "membw" => Resource::MemBandwidth,
                            _ => return Err(fail("resource must be llc|membw")),
                        },
                        amount: parse_amount(Some(amount), &fail)?,
                    }),
                    _ => return Err(fail("expected `begin <t> <proc> <site> <res> <amount>`")),
                },
                "end" => match fields.as_slice() {
                    [t, pp] => events.push(TraceEvent::End {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                        pp: pp.parse().map_err(|_| fail("bad pp id"))?,
                    }),
                    _ => return Err(fail("expected `end <t> <pp>`")),
                },
                "exit" => match fields.as_slice() {
                    [t, process] => events.push(TraceEvent::Exit {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                        process: process.parse().map_err(|_| fail("bad process"))?,
                    }),
                    _ => return Err(fail("expected `exit <t> <process>`")),
                },
                "age" => match fields.as_slice() {
                    [t] => events.push(TraceEvent::Age {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                    }),
                    _ => return Err(fail("expected `age <t>`")),
                },
                "retry" => match fields.as_slice() {
                    [t, process, site, resource] => events.push(TraceEvent::Retry {
                        t: t.parse().map_err(|_| fail("bad time"))?,
                        process: process.parse().map_err(|_| fail("bad process"))?,
                        site: site.parse().map_err(|_| fail("bad site"))?,
                        resource: match *resource {
                            "llc" => Resource::Llc,
                            "membw" => Resource::MemBandwidth,
                            _ => return Err(fail("resource must be llc|membw")),
                        },
                    }),
                    _ => return Err(fail("expected `retry <t> <proc> <site> <res>`")),
                },
                _ => return Err(fail("unknown directive")),
            }
        }
        Ok(TraceDoc { cfg, events })
    }

    /// Serialize to the text format. `parse(to_text(d)) == d` for any
    /// document (amounts are written as raw bytes).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let c = &self.cfg;
        match c.policy {
            PolicyKind::DefaultOnly => out.push_str("policy default\n"),
            PolicyKind::Strict => out.push_str("policy strict\n"),
            PolicyKind::Compromise { factor } => {
                let _ = writeln!(out, "policy compromise {factor}");
            }
            PolicyKind::Partitioned { quota_frac } => {
                let _ = writeln!(out, "policy partitioned {quota_frac}");
            }
        }
        let _ = writeln!(out, "llc {}", c.llc_capacity);
        let _ = writeln!(out, "membw {}", c.membw_capacity);
        let audit = match c.demand_audit {
            DemandAudit::Trust => "trust",
            DemandAudit::Clamp => "clamp",
            DemandAudit::Reject => "reject",
        };
        let _ = writeln!(out, "audit {audit}");
        match c.waitlist_timeout_cycles {
            None => out.push_str("timeout none\n"),
            Some(t) => {
                let _ = writeln!(out, "timeout {t}");
            }
        }
        let _ = writeln!(out, "interval {}", c.min_eval_interval_cycles);
        if let Some(ov) = c.overload {
            let policy = match ov.shed_policy {
                ShedPolicy::RejectNewest => "reject_newest",
                ShedPolicy::RejectOldest => "reject_oldest",
                ShedPolicy::DegradeToOverflow => "degrade",
            };
            let _ = writeln!(out, "overload {} {policy}", ov.waitlist_cap);
            if let Some(d) = ov.deadline_cycles {
                let _ = writeln!(out, "deadline {d}");
            }
            if let Some(b) = ov.breaker {
                let _ = writeln!(
                    out,
                    "breaker {} {} {} {} {}",
                    b.high_water, b.low_water, b.trip_after, b.recover_after, b.shed_min_demand
                );
            }
        }
        for ev in &self.events {
            match *ev {
                TraceEvent::Begin {
                    t,
                    process,
                    site,
                    resource,
                    amount,
                } => {
                    let r = match resource {
                        Resource::Llc => "llc",
                        Resource::MemBandwidth => "membw",
                    };
                    let _ = writeln!(out, "begin {t} {process} {site} {r} {amount}");
                }
                TraceEvent::End { t, pp } => {
                    let _ = writeln!(out, "end {t} {pp}");
                }
                TraceEvent::Exit { t, process } => {
                    let _ = writeln!(out, "exit {t} {process}");
                }
                TraceEvent::Age { t } => {
                    let _ = writeln!(out, "age {t}");
                }
                TraceEvent::Retry {
                    t,
                    process,
                    site,
                    resource,
                } => {
                    let r = match resource {
                        Resource::Llc => "llc",
                        Resource::MemBandwidth => "membw",
                    };
                    let _ = writeln!(out, "retry {t} {process} {site} {r}");
                }
            }
        }
        out
    }
}

/// An amount field: a raw byte count, or a decimal with an `mb` suffix
/// (`10mb`, `6.3mb`). Shared with the topology trace format.
pub(crate) fn parse_amount(
    field: Option<&&str>,
    fail: &dyn Fn(&str) -> String,
) -> Result<u64, String> {
    let s = field.ok_or_else(|| fail("missing amount"))?;
    if let Some(mbs) = s.strip_suffix("mb") {
        let v: f64 = mbs.parse().map_err(|_| fail("bad mb amount"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(fail("mb amount must be finite and non-negative"));
        }
        Ok(rda_core::mb(v))
    } else {
        s.parse().map_err(|_| fail("bad amount"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_header_and_events() {
        let doc = TraceDoc::parse(
            "# demo\npolicy compromise 2\nllc 1000\naudit clamp\ntimeout 500\n\
             begin 0 0 0 llc 600\nbegin 10 1 1 membw 5mb\nend 20 0\nexit 30 1\nage 40\n",
        )
        .unwrap();
        assert_eq!(doc.cfg.policy, PolicyKind::Compromise { factor: 2.0 });
        assert_eq!(doc.cfg.llc_capacity, 1000);
        assert_eq!(doc.cfg.demand_audit, DemandAudit::Clamp);
        assert_eq!(doc.cfg.waitlist_timeout_cycles, Some(500));
        assert_eq!(doc.events.len(), 5);
        assert_eq!(
            doc.events[1],
            TraceEvent::Begin {
                t: 10,
                process: 1,
                site: 1,
                resource: Resource::MemBandwidth,
                amount: rda_core::mb(5.0),
            }
        );
    }

    #[test]
    fn roundtrips_through_text() {
        let mut doc = TraceDoc::new(vec![
            TraceEvent::Begin {
                t: 0,
                process: 0,
                site: 3,
                resource: Resource::Llc,
                amount: 123_456,
            },
            TraceEvent::Age { t: 7 },
            TraceEvent::End { t: 9, pp: 0 },
            TraceEvent::Exit { t: 11, process: 0 },
            TraceEvent::Retry {
                t: 13,
                process: 2,
                site: 1,
                resource: Resource::MemBandwidth,
            },
        ]);
        doc.cfg.policy = PolicyKind::Partitioned { quota_frac: 0.25 };
        doc.cfg.waitlist_timeout_cycles = Some(999);
        doc.cfg.overload = Some(OverloadConfig {
            waitlist_cap: 8,
            shed_policy: ShedPolicy::RejectOldest,
            deadline_cycles: Some(12_000),
            breaker: Some(BreakerConfig {
                high_water: 14_000_000,
                low_water: 7_000_000,
                trip_after: 3,
                recover_after: 5,
                shed_min_demand: 1_000,
            }),
        });
        let reparsed = TraceDoc::parse(&doc.to_text()).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn parses_overload_headers() {
        let doc = TraceDoc::parse(
            "overload 4 degrade\ndeadline 500\nbreaker 10mb 5mb 2 3 1000\nage 1\n",
        )
        .unwrap();
        let ov = doc.cfg.overload.expect("overload parsed");
        assert_eq!(ov.waitlist_cap, 4);
        assert_eq!(ov.shed_policy, ShedPolicy::DegradeToOverflow);
        assert_eq!(ov.deadline_cycles, Some(500));
        let b = ov.breaker.expect("breaker parsed");
        assert_eq!(b.high_water, rda_core::mb(10.0));
        assert_eq!(b.low_water, rda_core::mb(5.0));
        assert_eq!((b.trip_after, b.recover_after), (2, 3));
        assert_eq!(b.shed_min_demand, 1000);
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle) in [
            ("begin 0 0 0 llc", "line 1"),
            ("policy sloppy", "unknown policy"),
            ("end 0 0\npolicy strict", "header line after the first event"),
            ("frobnicate 1 2 3", "unknown directive"),
            ("begin 0 0 0 disk 10", "llc|membw"),
            ("deadline 500", "requires a preceding overload"),
            ("breaker 1 2 3 4 5", "requires a preceding overload"),
            ("overload 4 sloppy", "reject_newest|reject_oldest|degrade"),
            ("overload 4 degrade\nbreaker 1 2 3", "expected `breaker"),
            ("retry 0 0 0 disk", "llc|membw"),
        ] {
            let err = TraceDoc::parse(text).unwrap_err();
            assert!(err.contains(needle), "`{text}` gave `{err}`");
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let doc = TraceDoc::parse("\n# hi\n  # indented\nage 5 # trailing\n").unwrap();
        assert_eq!(doc.events, vec![TraceEvent::Age { t: 5 }]);
    }
}
