//! A pure-functional reference model of the RDA extension.
//!
//! This is an *executable specification*: Algorithm 1 plus the
//! waitlist, aging, demand-audit, fast-path-memoisation, and
//! process-exit semantics, written from DESIGN.md and the paper —
//! **deliberately sharing no logic with `rda-core`**. Where the
//! implementation routes a decision through `predicate::try_schedule`,
//! `PolicyKind::apply`, or `FastPathCache::try_admit`, the model
//! re-derives the same rule from flat arithmetic over plain vectors and
//! maps. The differential oracle ([`crate::diff`]) replays identical
//! event sequences through both and demands bit-identical observable
//! state after every event, so a bug must be introduced *twice,
//! identically, through two unrelated code paths* before it can hide.
//!
//! The model values obviousness over speed: `Vec` scans instead of
//! queues, recomputed limits instead of cached ones, one flat function
//! per API call. Everything observable — both accounting buckets,
//! waitlist order, live periods, counters, the id allocator, and the
//! memoised decision cache — is reproduced exactly.

use rda_core::{
    DemandAudit, PolicyKind, PpId, PpSnap, RdaConfig, RdaError, RdaStats, Resource, ShedPolicy,
    Snapshot, WaitSnap,
};
use rda_sched::ProcessId;
use rda_simcore::Fnv1a64;
use std::collections::BTreeMap;

/// The observable effect of one extension call, shared vocabulary
/// between the model and the mapped outcomes of [`rda_core::RdaExtension`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// `pp_begin` under a non-gating policy: nothing tracked.
    Bypass,
    /// `pp_begin` admitted the period.
    Run {
        /// The allocated period id.
        pp: PpId,
        /// Whether the memoised fast path served the call.
        fast: bool,
    },
    /// `pp_begin` waitlisted the period.
    Pause {
        /// The allocated (waitlisted) period id.
        pp: PpId,
        /// Under [`ShedPolicy::RejectOldest`] at the waitlist cap, the
        /// longest-queued waiter evicted to make room.
        shed: Option<PpId>,
    },
    /// `pp_end` completed a period.
    End {
        /// Whether the fast path served the call.
        fast: bool,
        /// Waitlisted periods admitted by the completion.
        resumed: Vec<(PpId, ProcessId)>,
    },
    /// `process_exit` or `age_waitlist` ran; these cannot fail.
    Woken {
        /// Waitlisted periods admitted by the call.
        resumed: Vec<(PpId, ProcessId)>,
        /// Waitlisted periods expired past their deadline (only
        /// `age_waitlist` under an overload deadline; empty otherwise).
        expired: Vec<(PpId, ProcessId)>,
    },
    /// `note_retry` ran: a client-side retry was counted.
    Retried,
    /// The call was rejected with a typed error.
    Rejected(RdaError),
}

/// A live period as the model tracks it. `declared` holds the
/// *audited* amount — what the implementation registers after the
/// demand audit — since that is what [`Snapshot`] exposes.
#[derive(Debug, Clone, Copy)]
struct Period {
    process: ProcessId,
    site: u32,
    resource: Resource,
    declared: u64,
    accounted: u64,
    admitted: bool,
    overflow: bool,
}

/// One waitlisted period.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    pp: u64,
    accounted: u64,
    enqueued: u64,
}

/// One memoised admission decision for a (process, site) pair.
#[derive(Debug, Clone, Copy)]
struct Cached {
    resource: Resource,
    amount: u64,
    threshold: u64,
    refreshed: u64,
}

/// The reference model. Construct with the same [`RdaConfig`] as the
/// implementation under test and drive both with identical calls.
#[derive(Debug, Clone)]
pub struct RefModel {
    cfg: RdaConfig,
    next_id: u64,
    periods: BTreeMap<u64, Period>,
    waiters: [Vec<Waiter>; 2],
    usage: [u64; 2],
    overflow: [u64; 2],
    cache: BTreeMap<(u32, u32), Cached>,
    stats: RdaStats,
    breaker_open: [bool; 2],
    breaker_above: [u32; 2],
    breaker_below: [u32; 2],
}

fn idx(r: Resource) -> usize {
    match r {
        Resource::Llc => 0,
        Resource::MemBandwidth => 1,
    }
}

/// The usage ceiling a policy enforces on a resource of `capacity`.
fn usage_limit(policy: PolicyKind, capacity: u64) -> u64 {
    match policy {
        PolicyKind::DefaultOnly => u64::MAX,
        PolicyKind::Strict | PolicyKind::Partitioned { .. } => capacity,
        PolicyKind::Compromise { factor } => (capacity as f64 * factor) as u64,
    }
}

/// The demand actually accounted for a period declaring `demand`.
fn effective(policy: PolicyKind, demand: u64, capacity: u64) -> u64 {
    match policy {
        PolicyKind::Partitioned { quota_frac } => demand.min((capacity as f64 * quota_frac) as u64),
        _ => demand,
    }
}

/// Algorithm 1 as flat arithmetic: `outcome = (capacity − usage) −
/// accounted`, admitted when the policy accepts the outcome. Includes
/// the oversized-demand deadlock guard (a demand that can never pass
/// is admitted immediately rather than waitlisted forever).
fn runnable(policy: PolicyKind, capacity: u64, usage: u64, accounted: u64) -> bool {
    if accounted > usage_limit(policy, capacity) {
        return true;
    }
    let outcome = capacity as i128 - usage as i128 - accounted as i128;
    match policy {
        PolicyKind::DefaultOnly => true,
        PolicyKind::Strict | PolicyKind::Partitioned { .. } => outcome >= 0,
        PolicyKind::Compromise { factor } => outcome >= -((capacity as f64 * (factor - 1.0)) as i128),
    }
}

impl RefModel {
    /// A fresh model with the given configuration.
    pub fn new(cfg: RdaConfig) -> Self {
        RefModel {
            cfg,
            next_id: 0,
            periods: BTreeMap::new(),
            waiters: [Vec::new(), Vec::new()],
            usage: [0, 0],
            overflow: [0, 0],
            cache: BTreeMap::new(),
            stats: RdaStats::default(),
            breaker_open: [false; 2],
            breaker_above: [0; 2],
            breaker_below: [0; 2],
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &RdaConfig {
        &self.cfg
    }

    fn capacity(&self, r: Resource) -> u64 {
        match r {
            Resource::Llc => self.cfg.llc_capacity,
            Resource::MemBandwidth => self.cfg.membw_capacity,
        }
    }

    fn alloc(
        &mut self,
        process: ProcessId,
        site: u32,
        resource: Resource,
        declared: u64,
        accounted: u64,
        admitted: bool,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.periods.insert(
            id,
            Period {
                process,
                site,
                resource,
                declared,
                accounted,
                admitted,
                overflow: false,
            },
        );
        id
    }

    /// The memoised fast-path check: hit when a cached decision for
    /// this (process, site) is fresh, matches resource and demand, and
    /// current usage still satisfies the threshold. A hit refreshes the
    /// entry; a demand/resource mismatch evicts it.
    fn cache_admit(
        &mut self,
        process: ProcessId,
        site: u32,
        resource: Resource,
        amount: u64,
        usage: u64,
        now: u64,
    ) -> bool {
        let key = (process.0, site);
        let Some(c) = self.cache.get_mut(&key) else {
            return false;
        };
        let fresh = now.saturating_sub(c.refreshed) < self.cfg.min_eval_interval_cycles;
        let matches = c.resource == resource && c.amount == amount;
        if fresh && matches && usage <= c.threshold {
            c.refreshed = now;
            true
        } else {
            if !matches {
                self.cache.remove(&key);
            }
            false
        }
    }

    /// Model of `pp_begin`.
    pub fn pp_begin(
        &mut self,
        process: ProcessId,
        site: u32,
        resource: Resource,
        declared: u64,
        now: u64,
    ) -> Effect {
        if matches!(self.cfg.policy, PolicyKind::DefaultOnly) {
            return Effect::Bypass;
        }
        self.stats.begins += 1;
        let capacity = self.capacity(resource);

        // Demand audit.
        let audited = match self.cfg.demand_audit {
            DemandAudit::Trust => declared,
            DemandAudit::Clamp => {
                if declared > capacity {
                    self.stats.clamped += 1;
                    capacity
                } else {
                    declared
                }
            }
            DemandAudit::Reject => {
                if declared > capacity {
                    self.stats.clamped += 1;
                    return Effect::Rejected(RdaError::DemandOverflow {
                        resource,
                        declared,
                        capacity,
                    });
                }
                declared
            }
        };
        let accounted = effective(self.cfg.policy, audited, capacity);
        let i = idx(resource);
        // 64-bit load-table overflow guard; reports the audited amount.
        if self.usage[i].checked_add(accounted).is_none() {
            self.stats.clamped += 1;
            return Effect::Rejected(RdaError::DemandOverflow {
                resource,
                declared: audited,
                capacity,
            });
        }

        // Saturation circuit breaker: while open, the configured demand
        // class is shed before touching the predicate or waitlist.
        if let Some(b) = self.cfg.overload.and_then(|o| o.breaker) {
            if self.breaker_open[i] && audited >= b.shed_min_demand {
                self.stats.shed += 1;
                return Effect::Rejected(RdaError::BreakerOpen { resource });
            }
        }

        // Fast path: only consulted while nothing waits on the resource
        // (so a repeat admission cannot jump ahead of a waiter).
        if self.waiters[i].is_empty()
            && self.cache_admit(process, site, resource, audited, self.usage[i], now)
        {
            self.usage[i] += accounted;
            let pp = self.alloc(process, site, resource, audited, accounted, true);
            self.stats.admitted += 1;
            self.stats.fast_begins += 1;
            return Effect::Run {
                pp: PpId(pp),
                fast: true,
            };
        }

        // Slow path: Algorithm 1.
        let limit = usage_limit(self.cfg.policy, capacity);
        if runnable(self.cfg.policy, capacity, self.usage[i], accounted) {
            if accounted > limit {
                self.stats.oversized_admits += 1;
            }
            self.usage[i] += accounted;
            let pp = self.alloc(process, site, resource, audited, accounted, true);
            self.stats.admitted += 1;
            self.cache.insert(
                (process.0, site),
                Cached {
                    resource,
                    amount: audited,
                    threshold: limit.saturating_sub(accounted),
                    refreshed: now,
                },
            );
            Effect::Run {
                pp: PpId(pp),
                fast: false,
            }
        } else {
            // Bounded-waitlist admission gate: at the cap one side of
            // the queue is shed per the configured policy.
            let mut shed = None;
            if let Some(ov) = self.cfg.overload {
                if self.waiters[i].len() >= ov.waitlist_cap {
                    match ov.shed_policy {
                        ShedPolicy::RejectOldest if !self.waiters[i].is_empty() => {
                            // Head drop: the longest-queued waiter is
                            // evicted and its period completed.
                            let victim = self.waiters[i].remove(0);
                            self.periods.remove(&victim.pp);
                            self.stats.shed += 1;
                            shed = Some(PpId(victim.pp));
                        }
                        ShedPolicy::DegradeToOverflow => {
                            // Degraded admit straight into the overflow
                            // bucket, like an aged force-admission;
                            // counted as shed, not admitted.
                            let pp =
                                self.alloc(process, site, resource, audited, accounted, true);
                            self.periods.get_mut(&pp).expect("just inserted").overflow = true;
                            self.overflow[i] += accounted;
                            self.stats.shed += 1;
                            return Effect::Run {
                                pp: PpId(pp),
                                fast: false,
                            };
                        }
                        _ => {
                            // Tail drop (RejectNewest, or RejectOldest
                            // with nothing to evict): no id allocated.
                            self.stats.shed += 1;
                            return Effect::Rejected(RdaError::WaitlistFull { resource });
                        }
                    }
                }
            }
            let pp = self.alloc(process, site, resource, audited, accounted, false);
            self.waiters[i].push(Waiter {
                pp,
                accounted,
                enqueued: now,
            });
            self.stats.paused += 1;
            self.stats.max_waitlist = self.stats.max_waitlist.max(self.waiters[i].len() as u64);
            Effect::Pause { pp: PpId(pp), shed }
        }
    }

    /// Model of `pp_end`.
    pub fn pp_end(&mut self, pp: PpId, now: u64) -> Effect {
        self.stats.ends += 1;
        let Some(rec) = self.periods.get(&pp.0) else {
            self.stats.rejected_ends += 1;
            return Effect::Rejected(if pp.0 < self.next_id {
                RdaError::DoubleEnd(pp)
            } else {
                RdaError::UnknownPp(pp)
            });
        };
        if !rec.admitted {
            self.stats.rejected_ends += 1;
            return Effect::Rejected(RdaError::EndWhileWaitlisted(pp));
        }
        let rec = self.periods.remove(&pp.0).expect("checked live above");
        let i = idx(rec.resource);
        if rec.overflow {
            self.overflow[i] -= rec.accounted;
        } else {
            self.usage[i] -= rec.accounted;
        }

        if self.waiters[i].is_empty() {
            // Fast completion: no one to wake and the site's decision is
            // still fresh (freshness is read, not refreshed, here).
            let fresh = self
                .cache
                .get(&(rec.process.0, rec.site))
                .is_some_and(|c| now.saturating_sub(c.refreshed) < self.cfg.min_eval_interval_cycles);
            if fresh {
                self.stats.fast_ends += 1;
            }
            return Effect::End {
                fast: fresh,
                resumed: Vec::new(),
            };
        }
        let resumed = self.drain(rec.resource, now);
        Effect::End {
            fast: false,
            resumed,
        }
    }

    /// Model of `process_exit`: reclaim every live period of `process`
    /// (release admitted demand, cancel waiters), drop its memoised
    /// decisions, then re-walk the waitlists if anything was reclaimed.
    pub fn process_exit(&mut self, process: ProcessId, now: u64) -> Effect {
        let live: Vec<u64> = self
            .periods
            .iter()
            .filter(|(_, r)| r.process == process)
            .map(|(&id, _)| id)
            .collect();
        let had_any = !live.is_empty();
        let mut touched = [false; 2];
        for id in live {
            let rec = self.periods.remove(&id).expect("collected above");
            let i = idx(rec.resource);
            touched[i] = true;
            if rec.admitted {
                if rec.overflow {
                    self.overflow[i] -= rec.accounted;
                } else {
                    self.usage[i] -= rec.accounted;
                }
            } else {
                self.waiters[i].retain(|w| w.pp != id);
            }
            self.stats.reclaimed += 1;
        }
        self.cache.retain(|&(p, _), _| p != process.0);
        if !had_any {
            return Effect::Woken {
                resumed: Vec::new(),
                expired: Vec::new(),
            };
        }
        // Only queues this exit touched (or queues holding an
        // aged-past-timeout waiter) can admit anyone.
        let mut resumed = Vec::new();
        for r in Resource::ALL {
            if touched[idx(r)] || self.has_expired_waiter(r, now) {
                resumed.extend(self.drain(r, now));
            }
        }
        Effect::Woken {
            resumed,
            expired: Vec::new(),
        }
    }

    /// Model of `age_waitlist`: deadline expiry, then aging-triggered
    /// drains, then the saturation breaker. A no-op when neither aging
    /// nor overload control is configured.
    pub fn age_waitlist(&mut self, now: u64) -> Effect {
        if self.cfg.waitlist_timeout_cycles.is_none() && self.cfg.overload.is_none() {
            return Effect::Woken {
                resumed: Vec::new(),
                expired: Vec::new(),
            };
        }
        // Deadline expiry first: repeatedly remove the waiter with the
        // minimal enqueue time (first in queue order among equals) while
        // it has waited past the deadline, completing its period.
        let mut expired = Vec::new();
        let mut expired_touched = [false; 2];
        if let Some(deadline) = self.cfg.overload.and_then(|o| o.deadline_cycles) {
            for r in Resource::ALL {
                let i = idx(r);
                while let Some(pos) = self.waiters[i]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.enqueued)
                    .filter(|(_, w)| now.saturating_sub(w.enqueued) >= deadline)
                    .map(|(p, _)| p)
                {
                    let w = self.waiters[i].remove(pos);
                    let rec = self.periods.remove(&w.pp).expect("waiter is live");
                    self.stats.expired += 1;
                    expired_touched[i] = true;
                    expired.push((PpId(w.pp), rec.process));
                }
            }
        }
        // No capacity was released since the last drain, so only queues
        // an expiry touched (which may have exposed a fitting entry) or
        // queues holding an aged-past-timeout waiter can admit anyone.
        let mut resumed = Vec::new();
        for r in Resource::ALL {
            if expired_touched[idx(r)] || self.has_expired_waiter(r, now) {
                resumed.extend(self.drain(r, now));
            }
        }
        self.evaluate_breaker();
        Effect::Woken { resumed, expired }
    }

    /// Model of `note_retry`: count the client-side retry.
    pub fn note_retry(&mut self) -> Effect {
        self.stats.retried += 1;
        Effect::Retried
    }

    /// True when resource `r` holds a waiter past the aging timeout.
    fn has_expired_waiter(&self, r: Resource, now: u64) -> bool {
        let Some(timeout) = self.cfg.waitlist_timeout_cycles else {
            return false;
        };
        self.waiters[idx(r)]
            .iter()
            .map(|w| w.enqueued)
            .min()
            .is_some_and(|oldest| now.saturating_sub(oldest) >= timeout)
    }

    /// The saturation circuit breaker, advanced once per aging tick:
    /// trip after `trip_after` consecutive ticks at or above the
    /// high-water occupancy (nominal + overflow), reset after
    /// `recover_after` consecutive ticks strictly below the low-water
    /// mark; any off-streak tick resets its counter.
    fn evaluate_breaker(&mut self) {
        let Some(b) = self.cfg.overload.and_then(|o| o.breaker) else {
            return;
        };
        for i in 0..2 {
            let occupancy = self.usage[i].saturating_add(self.overflow[i]);
            if self.breaker_open[i] {
                if occupancy < b.low_water {
                    self.breaker_below[i] += 1;
                    if self.breaker_below[i] >= b.recover_after {
                        self.breaker_open[i] = false;
                        self.breaker_below[i] = 0;
                    }
                } else {
                    self.breaker_below[i] = 0;
                }
            } else if occupancy >= b.high_water {
                self.breaker_above[i] += 1;
                if self.breaker_above[i] >= b.trip_after {
                    self.breaker_open[i] = true;
                    self.breaker_above[i] = 0;
                    self.stats.breaker_trips += 1;
                }
            } else {
                self.breaker_above[i] = 0;
            }
        }
    }

    /// Walk one resource's FIFO: admit nominally while the head fits,
    /// then force-admit the *oldest* expired waiter into the overflow
    /// bucket and re-walk (removing a blocker can unblock queued
    /// periods behind it).
    fn drain(&mut self, resource: Resource, now: u64) -> Vec<(PpId, ProcessId)> {
        let i = idx(resource);
        let capacity = self.capacity(resource);
        let limit = usage_limit(self.cfg.policy, capacity);
        let mut resumed = Vec::new();
        loop {
            while let Some(&head) = self.waiters[i].first() {
                let accounted = self.periods[&head.pp].accounted;
                if !runnable(self.cfg.policy, capacity, self.usage[i], accounted) {
                    break;
                }
                self.waiters[i].remove(0);
                self.usage[i] += head.accounted;
                let rec = self.periods.get_mut(&head.pp).expect("waiter is live");
                rec.admitted = true;
                let (process, site, amount) = (rec.process, rec.site, rec.declared);
                self.cache.insert(
                    (process.0, site),
                    Cached {
                        resource,
                        amount,
                        threshold: limit.saturating_sub(head.accounted),
                        refreshed: now,
                    },
                );
                self.stats.resumed += 1;
                resumed.push((PpId(head.pp), process));
            }
            let Some(timeout) = self.cfg.waitlist_timeout_cycles else {
                break;
            };
            // Oldest expired waiter, by enqueue time (not queue position).
            let Some(pos) = self.waiters[i]
                .iter()
                .enumerate()
                .filter(|(_, w)| now.saturating_sub(w.enqueued) >= timeout)
                .min_by_key(|(_, w)| w.enqueued)
                .map(|(p, _)| p)
            else {
                break;
            };
            let aged = self.waiters[i].remove(pos);
            let rec = self.periods.get_mut(&aged.pp).expect("waiter is live");
            rec.admitted = true;
            rec.overflow = true;
            let process = rec.process;
            self.overflow[i] += aged.accounted;
            self.stats.aged_admissions += 1;
            resumed.push((PpId(aged.pp), process));
        }
        resumed
    }

    /// The model's observable state in the implementation's
    /// [`Snapshot`] vocabulary, for direct comparison.
    pub fn snapshot(&self) -> Snapshot {
        let waitlists = [0, 1].map(|i: usize| {
            self.waiters[i]
                .iter()
                .map(|w| WaitSnap {
                    pp: PpId(w.pp),
                    accounted: w.accounted,
                    enqueued_cycles: w.enqueued,
                })
                .collect()
        });
        Snapshot {
            usage: self.usage,
            overflow: self.overflow,
            waitlists,
            periods: self
                .periods
                .iter()
                .map(|(&id, r)| PpSnap {
                    id: PpId(id),
                    process: r.process,
                    site: rda_core::SiteId(r.site),
                    resource: r.resource,
                    declared: r.declared,
                    accounted: r.accounted,
                    admitted: r.admitted,
                    overflow: r.overflow,
                })
                .collect(),
            stats: self.stats,
            allocated: self.next_id,
        }
    }

    /// Order-independent digest of the memoised decision cache, built
    /// with the same per-entry hash as
    /// [`rda_core::extension::RdaExtension::fastpath_digest`] so the two
    /// can be compared directly.
    pub fn cache_digest(&self) -> u64 {
        let mut acc = 0u64;
        for (&(process, site), c) in &self.cache {
            let mut h = Fnv1a64::new();
            h.write_u64(process as u64)
                .write_u64(site as u64)
                .write_u64(idx(c.resource) as u64)
                .write_u64(c.amount)
                .write_u64(c.threshold)
                .write_u64(c.refreshed);
            acc ^= h.finish();
        }
        acc ^ self.cache.len() as u64
    }

    /// Digest of the saturation-breaker state (open flags and
    /// hysteresis streak counters). The breaker is deliberately not
    /// part of [`Snapshot`], so the explorer folds this into its memo
    /// key — two DFS paths with identical snapshots but different
    /// breaker streaks must not share a subtree.
    pub fn breaker_digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        for i in 0..2 {
            h.write_u64(self.breaker_open[i] as u64)
                .write_u64(self.breaker_above[i] as u64)
                .write_u64(self.breaker_below[i] as u64);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_machine::MachineConfig;

    fn cfg(policy: PolicyKind) -> RdaConfig {
        RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), policy)
    }

    fn mb(v: f64) -> u64 {
        rda_core::mb(v)
    }

    #[test]
    fn strict_pauses_when_full_and_resumes_on_end() {
        let mut m = RefModel::new(cfg(PolicyKind::Strict));
        let p = ProcessId(0);
        let a = match m.pp_begin(p, 0, Resource::Llc, mb(10.0), 0) {
            Effect::Run { pp, fast: false } => pp,
            other => panic!("expected slow Run, got {other:?}"),
        };
        let b = match m.pp_begin(ProcessId(1), 1, Resource::Llc, mb(10.0), 10) {
            Effect::Pause { pp, .. } => pp,
            other => panic!("expected Pause, got {other:?}"),
        };
        match m.pp_end(a, 20) {
            Effect::End { fast: false, resumed } => {
                assert_eq!(resumed, vec![(b, ProcessId(1))]);
            }
            other => panic!("expected slow End, got {other:?}"),
        }
        let s = m.snapshot();
        assert_eq!(s.usage[0], mb(10.0));
        assert_eq!(s.stats.resumed, 1);
    }

    #[test]
    fn repeat_site_hits_the_fast_path() {
        let mut m = RefModel::new(cfg(PolicyKind::Strict));
        let p = ProcessId(0);
        let a = match m.pp_begin(p, 7, Resource::Llc, mb(2.0), 0) {
            Effect::Run { pp, fast: false } => pp,
            other => panic!("{other:?}"),
        };
        assert!(matches!(m.pp_end(a, 100), Effect::End { fast: true, .. }));
        assert!(matches!(
            m.pp_begin(p, 7, Resource::Llc, mb(2.0), 200),
            Effect::Run { fast: true, .. }
        ));
        assert_eq!(m.snapshot().stats.fast_begins, 1);
    }

    #[test]
    fn rejected_end_leaves_books_untouched() {
        let mut m = RefModel::new(cfg(PolicyKind::Strict));
        let before = m.snapshot().without_stats();
        assert!(matches!(
            m.pp_end(PpId(4), 0),
            Effect::Rejected(RdaError::UnknownPp(PpId(4)))
        ));
        assert_eq!(m.snapshot().without_stats(), before);
        assert_eq!(m.snapshot().stats.rejected_ends, 1);
    }

    #[test]
    fn default_only_bypasses_everything() {
        let mut m = RefModel::new(cfg(PolicyKind::DefaultOnly));
        assert_eq!(m.pp_begin(ProcessId(0), 0, Resource::Llc, mb(99.0), 0), Effect::Bypass);
        assert!(m.snapshot().is_idle());
        assert_eq!(m.snapshot().stats, RdaStats::default());
    }
}
