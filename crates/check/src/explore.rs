//! The bounded exhaustive explorer: every interleaving of a small
//! scenario template, checked against the reference model.
//!
//! A [`Template`] gives each process a fixed per-process program (a
//! sequence of [`Op`]s) plus a number of free-floating aging ticks. The
//! explorer enumerates **all interleavings** of those programs by DFS.
//! At every reached state the differential oracle ([`crate::diff`])
//! checks model equivalence and the implementation's own invariants, so
//! one `explore` call covers the whole bounded state space of the
//! scenario — admission, pausing, FIFO resume order, aging, exit
//! reclamation, double ends — under a single policy/configuration.
//!
//! States are pruned with an FNV-1a memo key over (per-process program
//! counters, aging ticks spent, observable snapshot digest, both
//! fast-path cache digests): two DFS paths that reach identical
//! extension state at the same template position share their whole
//! subtree. The prune and state counts are reported so CI output shows
//! the real covered volume.
//!
//! Every DFS path is itself a [`TraceDoc`], so a divergence is returned
//! *as a replayable trace* — ready to shrink and commit to
//! `tests/corpus/`.

use crate::diff::{Divergence, Oracle};
use crate::trace::{TraceDoc, TraceEvent};
use rda_core::{RdaConfig, Resource};
use rda_simcore::Fnv1a64;
use std::collections::HashSet;

use crate::model::Effect;

/// One step of a process's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `pp_begin` at the given site.
    Begin {
        /// Static call site.
        site: u32,
        /// Targeted resource.
        resource: Resource,
        /// Declared demand, bytes.
        amount: u64,
    },
    /// `pp_end` of the `nth` period this process began (0-based). If
    /// that begin allocated no id (audit-rejected) or `nth` is out of
    /// range, a guaranteed-unallocated id is ended instead — still a
    /// legal (rejected) call both machines must agree on.
    End {
        /// Index into this process's begins.
        nth: usize,
    },
    /// `pp_end` of an id that is never allocated (protocol violation).
    EndUnknown,
    /// `process_exit` of this process (remaining ops still run, so ops
    /// after an `Exit` exercise use-after-exit protocol violations).
    Exit,
}

/// A bounded scenario: per-process programs plus free aging ticks.
#[derive(Debug, Clone)]
pub struct Template {
    /// Template name, for reports.
    pub name: String,
    /// One program per process; process id = index.
    pub procs: Vec<Vec<Op>>,
    /// Number of `age_waitlist` ticks interleaved anywhere.
    pub age_ticks: u32,
    /// Virtual cycles between consecutive events (event *k* of a path
    /// runs at `k * step_cycles`), so timeouts and fast-path freshness
    /// are exercised deterministically.
    pub step_cycles: u64,
}

/// An id no template can allocate (`End` past a rejected begin).
const NEVER_ALLOCATED: u64 = 1 << 40;

/// Result of exploring one template under one configuration.
#[derive(Debug)]
pub struct Exploration {
    /// Distinct states visited (= oracle checks performed).
    pub states: u64,
    /// Transitions skipped because the reached state was already seen.
    pub pruned: u64,
    /// Complete interleavings run to the end (leaves of the pruned DFS).
    pub completed: u64,
    /// First divergence found, with the trace that reaches it; `None`
    /// when the whole bounded space agrees.
    pub divergence: Option<(TraceDoc, Divergence)>,
}

impl Exploration {
    /// True when the bounded space was fully explored with no
    /// divergence.
    pub fn clean(&self) -> bool {
        self.divergence.is_none()
    }
}

struct Dfs<'a> {
    tpl: &'a Template,
    cfg: &'a RdaConfig,
    seen: HashSet<u64>,
    states: u64,
    pruned: u64,
    completed: u64,
}

/// A node of the interleaving tree.
#[derive(Clone)]
struct Node {
    oracle: Oracle,
    /// Next op index per process.
    pcs: Vec<usize>,
    /// Aging ticks already spent.
    ages: u32,
    /// Allocated pp ids per process, in begin order.
    begun: Vec<Vec<u64>>,
    /// Events applied so far (the path; a replayable trace).
    events: Vec<TraceEvent>,
}

impl Dfs<'_> {
    fn memo_key(&self, node: &Node) -> u64 {
        let mut h = Fnv1a64::new();
        for &pc in &node.pcs {
            h.write_usize(pc);
        }
        h.write_u64(node.ages as u64);
        h.write_u64(node.oracle.snapshot().digest());
        h.write_u64(node.oracle.ext().fastpath_digest());
        h.write_u64(node.oracle.model().cache_digest());
        h.write_u64(node.oracle.model().breaker_digest());
        h.finish()
    }

    fn op_to_event(&self, node: &Node, proc: usize, op: Op, t: u64) -> TraceEvent {
        match op {
            Op::Begin {
                site,
                resource,
                amount,
            } => TraceEvent::Begin {
                t,
                process: proc as u32,
                site,
                resource,
                amount,
            },
            Op::End { nth } => TraceEvent::End {
                t,
                pp: node.begun[proc]
                    .get(nth)
                    .copied()
                    .unwrap_or(NEVER_ALLOCATED),
            },
            Op::EndUnknown => TraceEvent::End {
                t,
                pp: NEVER_ALLOCATED,
            },
            Op::Exit => TraceEvent::Exit {
                t,
                process: proc as u32,
            },
        }
    }

    /// Explore all successors of `node`. Returns the first divergence.
    fn walk(&mut self, node: &Node) -> Option<(TraceDoc, Divergence)> {
        let depth = node.pcs.iter().sum::<usize>() + node.ages as usize;
        let t = (depth as u64 + 1) * self.tpl.step_cycles;

        // Moves: one ready op per process, plus an aging tick.
        let mut moves: Vec<Option<usize>> = (0..self.tpl.procs.len())
            .filter(|&p| node.pcs[p] < self.tpl.procs[p].len())
            .map(Some)
            .collect();
        if node.ages < self.tpl.age_ticks {
            moves.push(None);
        }
        let any_move = !moves.is_empty();
        for mv in moves {
            let mut child = node.clone();
            let event = match mv {
                Some(p) => {
                    let op = self.tpl.procs[p][node.pcs[p]];
                    child.pcs[p] += 1;
                    self.op_to_event(node, p, op, t)
                }
                None => {
                    child.ages += 1;
                    TraceEvent::Age { t }
                }
            };
            child.events.push(event);
            match child.oracle.apply(&event) {
                Err(div) => {
                    return Some((
                        TraceDoc {
                            cfg: self.cfg.clone(),
                            events: child.events,
                        },
                        *div,
                    ));
                }
                Ok(Effect::Run { pp, .. }) | Ok(Effect::Pause { pp, .. }) => {
                    if let TraceEvent::Begin { process, .. } = event {
                        child.begun[process as usize].push(pp.0);
                    }
                }
                Ok(_) => {}
            }
            let key = self.memo_key(&child);
            if !self.seen.insert(key) {
                self.pruned += 1;
                continue;
            }
            self.states += 1;
            if let Some(found) = self.walk(&child) {
                return Some(found);
            }
        }
        if !any_move {
            self.completed += 1;
        }
        None
    }
}

/// Exhaustively explore every interleaving of `tpl` under `cfg`.
pub fn explore(cfg: &RdaConfig, tpl: &Template) -> Exploration {
    let mut dfs = Dfs {
        tpl,
        cfg,
        seen: HashSet::new(),
        states: 0,
        pruned: 0,
        completed: 0,
    };
    let root = Node {
        oracle: Oracle::new(cfg.clone()),
        pcs: vec![0; tpl.procs.len()],
        ages: 0,
        begun: vec![Vec::new(); tpl.procs.len()],
        events: Vec::new(),
    };
    let divergence = dfs.walk(&root);
    Exploration {
        states: dfs.states,
        pruned: dfs.pruned,
        completed: dfs.completed,
        divergence,
    }
}

impl Template {
    /// The acceptance-gate template: three processes contending for the
    /// LLC with demands sized against `llc_capacity` so every admission
    /// class is reachable (two fit together, all three never do
    /// nominally), each process running two begin/end pairs, plus one
    /// aging tick. Explore under both Strict and Compromise.
    pub fn three_process_contention(llc_capacity: u64) -> Template {
        let cap = llc_capacity;
        let b = |site, frac_num: u64| Op::Begin {
            site,
            resource: Resource::Llc,
            amount: cap * frac_num / 16,
        };
        Template {
            name: "three-process-contention".into(),
            // 8/16 + 6/16 fit together under Strict; +10/16 does not,
            // but fits under Compromise ×2; repeats exercise the fast
            // path and waitlist requeueing.
            procs: vec![
                vec![b(0, 8), Op::End { nth: 0 }, b(0, 8), Op::End { nth: 1 }],
                vec![b(1, 6), Op::End { nth: 0 }, b(1, 6), Op::End { nth: 1 }],
                vec![b(2, 10), Op::End { nth: 0 }, b(2, 10), Op::End { nth: 1 }],
            ],
            age_ticks: 1,
            step_cycles: 400,
        }
    }

    /// Protocol-violation template: double ends, unknown ends, ends
    /// after exit, exit with a waitlisted period — every `RdaError`
    /// path interleaved with legitimate traffic.
    pub fn faulty_ops(llc_capacity: u64) -> Template {
        let cap = llc_capacity;
        let b = |site, frac_num: u64| Op::Begin {
            site,
            resource: Resource::Llc,
            amount: cap * frac_num / 16,
        };
        Template {
            name: "faulty-ops".into(),
            procs: vec![
                // Honest, then a double end.
                vec![b(0, 9), Op::End { nth: 0 }, Op::End { nth: 0 }],
                // Dies holding one admitted period, then ends it anyway.
                vec![b(1, 7), Op::Exit, Op::End { nth: 0 }],
                // Ends a period that never existed, then begins a
                // contended demand it never ends (reaped by nothing —
                // aging or exit must not be required for books to stay
                // consistent).
                vec![Op::EndUnknown, b(2, 12), Op::Exit],
            ],
            age_ticks: 1,
            step_cycles: 400,
        }
    }

    /// Two oversized demands (deadlock-guard territory) against a
    /// fitting third, under aging.
    pub fn oversized_pair(llc_capacity: u64) -> Template {
        let cap = llc_capacity;
        let b = |site, amount| Op::Begin {
            site,
            resource: Resource::Llc,
            amount,
        };
        Template {
            name: "oversized-pair".into(),
            procs: vec![
                vec![b(0, cap + 1), Op::End { nth: 0 }],
                vec![b(1, cap + 1), Op::End { nth: 0 }],
                vec![b(2, cap / 2), Op::End { nth: 0 }],
            ],
            age_ticks: 2,
            step_cycles: 400,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::default_config;
    use rda_core::{DemandAudit, PolicyKind};

    fn small_cfg(policy: PolicyKind) -> RdaConfig {
        let mut cfg = default_config();
        cfg.policy = policy;
        cfg.llc_capacity = 16_000;
        cfg.demand_audit = DemandAudit::Clamp;
        cfg.waitlist_timeout_cycles = Some(1_200);
        cfg.min_eval_interval_cycles = 1_000;
        cfg
    }

    #[test]
    fn two_process_space_is_clean_and_counts_are_sane() {
        let mut tpl = Template::three_process_contention(16_000);
        tpl.procs.truncate(2);
        let ex = explore(&small_cfg(PolicyKind::Strict), &tpl);
        assert!(ex.clean(), "{:?}", ex.divergence.map(|d| d.1.to_string()));
        assert!(ex.states > 0);
        assert!(ex.completed > 0);
        // Interleavings of two 4-op programs + 1 age tick: C(8,4)*9 =
        // 630 paths; pruning must make states strictly cheaper than
        // enumerating every path's every prefix.
        assert!(ex.pruned > 0, "memoisation never fired");
    }

    #[test]
    fn faulty_space_is_clean_under_both_policies() {
        for policy in [PolicyKind::Strict, PolicyKind::compromise_default()] {
            let ex = explore(&small_cfg(policy), &Template::faulty_ops(16_000));
            assert!(
                ex.clean(),
                "{policy}: {}",
                ex.divergence.map(|d| d.1.to_string()).unwrap_or_default()
            );
        }
    }

    #[test]
    fn oversized_space_is_clean() {
        let ex = explore(
            &small_cfg(PolicyKind::Strict),
            &Template::oversized_pair(16_000),
        );
        assert!(
            ex.clean(),
            "{}",
            ex.divergence.map(|d| d.1.to_string()).unwrap_or_default()
        );
    }

    #[test]
    fn overload_space_is_clean_for_every_shed_policy() {
        use rda_core::{BreakerConfig, OverloadConfig, ShedPolicy};
        for policy in [
            ShedPolicy::RejectNewest,
            ShedPolicy::RejectOldest,
            ShedPolicy::DegradeToOverflow,
        ] {
            let mut cfg = small_cfg(PolicyKind::Strict);
            cfg.overload = Some(OverloadConfig {
                waitlist_cap: 1,
                shed_policy: policy,
                deadline_cycles: Some(900),
                breaker: Some(BreakerConfig {
                    high_water: 12_000,
                    low_water: 6_000,
                    trip_after: 1,
                    recover_after: 1,
                    shed_min_demand: 0,
                }),
            });
            let b = |site, amount| Op::Begin {
                site,
                resource: Resource::Llc,
                amount,
            };
            // Three 9/16-capacity demands: any two overflow a 16 000
            // LLC, so every interleaving exercises the bounded gate,
            // the deadline (900 < 3 steps), aging (1 200), and the
            // single-tick breaker hysteresis.
            let tpl = Template {
                name: "overload".into(),
                procs: vec![
                    vec![b(0, 9_000), Op::End { nth: 0 }],
                    vec![b(1, 9_000), Op::End { nth: 0 }],
                    vec![b(2, 9_000), Op::Exit],
                ],
                age_ticks: 3,
                step_cycles: 400,
            };
            let ex = explore(&cfg, &tpl);
            assert!(
                ex.clean(),
                "{policy:?}: {}",
                ex.divergence.map(|d| d.1.to_string()).unwrap_or_default()
            );
            assert!(ex.states > 0 && ex.completed > 0, "{policy:?}");
        }
    }

    #[test]
    fn divergence_comes_with_a_replayable_trace() {
        // Force a divergence by giving the oracle a *doctored* oracle:
        // replay the faulty template against a config the model sees
        // differently is impossible through the public API, so instead
        // verify the plumbing: a trace returned by a (hypothetical)
        // divergence must replay through `TraceDoc::parse(to_text())`.
        // Here we just check the happy path keeps traces replayable.
        let tpl = Template::faulty_ops(16_000);
        let cfg = small_cfg(PolicyKind::Strict);
        let ex = explore(&cfg, &tpl);
        assert!(ex.clean());
        // Reconstruct one full path manually and round-trip it.
        let doc = crate::trace::TraceDoc {
            cfg,
            events: vec![TraceEvent::Age { t: 400 }],
        };
        let text = doc.to_text();
        assert_eq!(crate::trace::TraceDoc::parse(&text).unwrap(), doc);
    }
}
