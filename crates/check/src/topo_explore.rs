//! Bounded exhaustive exploration of the topology engine: every
//! interleaving of small multi-node, multi-layer scenario templates,
//! checked against the recompute-by-summation model.
//!
//! The multi-node analogue of [`crate::explore`]: a [`TopoTemplate`]
//! gives each process a fixed program of [`TopoOp`]s (vector begins,
//! indexed ends, protocol violations, exits) plus free-floating aging
//! ticks, and [`explore_topo`] enumerates **all interleavings** by DFS
//! with FNV state-hash pruning. Every reached state passes through the
//! full [`crate::topo_diff::TopoOracle`] check — so placement ties,
//! guarantee reservations, per-node FIFO order, vector drains, and
//! breaker hysteresis are verified across the whole bounded space, not
//! one lucky schedule.
//!
//! The explorer doubles as the oracle's own regression test: run with
//! [`TopoMutation::StrictOffByOne`] it must *find* a counterexample
//! (the injected exact-fit off-by-one), proving the harness has the
//! sensitivity to catch a single-comparison admission bug. That
//! self-test is permanent — see `mutated_model_is_caught_by_the_space`.

use crate::topo_diff::{TopoDivergence, TopoOracle};
use crate::topo_model::{TopoEffect, TopoMutation};
use crate::topo_trace::{TopoDoc, TopoEvent};
use rda_core::{Demand, LayerId, LayerSet, LayerSpec, PolicyKind, TopoConfig, TopoSpec};
use rda_simcore::Fnv1a64;
use std::collections::HashSet;

/// One step of a process's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoOp {
    /// `pp_begin` of a demand vector at the given site.
    Begin {
        /// Static call site.
        site: u32,
        /// Declared demand vector.
        demand: Demand,
    },
    /// `pp_end` of the `nth` period this process began (0-based); out
    /// of range ends a guaranteed-unallocated id instead.
    End {
        /// Index into this process's begins.
        nth: usize,
    },
    /// `pp_end` of an id that is never allocated.
    EndUnknown,
    /// `process_exit` of this process.
    Exit,
}

/// A bounded topology scenario: per-process programs plus aging ticks.
#[derive(Debug, Clone)]
pub struct TopoTemplate {
    /// Template name, for reports.
    pub name: String,
    /// One program per process; process id = index.
    pub procs: Vec<Vec<TopoOp>>,
    /// Number of `age_waitlist` ticks interleaved anywhere.
    pub age_ticks: u32,
    /// Virtual cycles between consecutive events.
    pub step_cycles: u64,
}

/// An id no template can allocate.
const NEVER_ALLOCATED: u64 = 1 << 40;

/// Result of exploring one topology template under one configuration.
#[derive(Debug)]
pub struct TopoExploration {
    /// Distinct states visited (= oracle checks performed).
    pub states: u64,
    /// Transitions skipped because the reached state was already seen.
    pub pruned: u64,
    /// Complete interleavings run to the end.
    pub completed: u64,
    /// First divergence found, with the trace that reaches it; `None`
    /// when the whole bounded space agrees.
    pub divergence: Option<(TopoDoc, TopoDivergence)>,
}

impl TopoExploration {
    /// True when the bounded space was fully explored with no
    /// divergence.
    pub fn clean(&self) -> bool {
        self.divergence.is_none()
    }
}

struct Dfs<'a> {
    tpl: &'a TopoTemplate,
    cfg: &'a TopoConfig,
    seen: HashSet<u64>,
    states: u64,
    pruned: u64,
    completed: u64,
}

#[derive(Clone)]
struct Node {
    oracle: TopoOracle,
    pcs: Vec<usize>,
    ages: u32,
    begun: Vec<Vec<u64>>,
    events: Vec<TopoEvent>,
}

impl Dfs<'_> {
    fn memo_key(&self, node: &Node) -> u64 {
        let mut h = Fnv1a64::new();
        for &pc in &node.pcs {
            h.write_usize(pc);
        }
        h.write_u64(node.ages as u64);
        h.write_u64(node.oracle.snapshot().digest());
        h.write_u64(node.oracle.model().breaker_digest());
        h.finish()
    }

    fn op_to_event(&self, node: &Node, proc: usize, op: TopoOp, t: u64) -> TopoEvent {
        match op {
            TopoOp::Begin { site, demand } => TopoEvent::Begin {
                t,
                process: proc as u32,
                site,
                demand,
            },
            TopoOp::End { nth } => TopoEvent::End {
                t,
                pp: node.begun[proc]
                    .get(nth)
                    .copied()
                    .unwrap_or(NEVER_ALLOCATED),
            },
            TopoOp::EndUnknown => TopoEvent::End {
                t,
                pp: NEVER_ALLOCATED,
            },
            TopoOp::Exit => TopoEvent::Exit {
                t,
                process: proc as u32,
            },
        }
    }

    fn walk(&mut self, node: &Node) -> Option<(TopoDoc, TopoDivergence)> {
        let depth = node.pcs.iter().sum::<usize>() + node.ages as usize;
        let t = (depth as u64 + 1) * self.tpl.step_cycles;

        let mut moves: Vec<Option<usize>> = (0..self.tpl.procs.len())
            .filter(|&p| node.pcs[p] < self.tpl.procs[p].len())
            .map(Some)
            .collect();
        if node.ages < self.tpl.age_ticks {
            moves.push(None);
        }
        let any_move = !moves.is_empty();
        for mv in moves {
            let mut child = node.clone();
            let event = match mv {
                Some(p) => {
                    let op = self.tpl.procs[p][node.pcs[p]];
                    child.pcs[p] += 1;
                    self.op_to_event(node, p, op, t)
                }
                None => {
                    child.ages += 1;
                    TopoEvent::Age { t }
                }
            };
            child.events.push(event);
            match child.oracle.apply(&event) {
                Err(div) => {
                    return Some((
                        TopoDoc {
                            cfg: self.cfg.clone(),
                            events: child.events,
                        },
                        *div,
                    ));
                }
                Ok(TopoEffect::Run { pp }) | Ok(TopoEffect::Pause { pp, .. }) => {
                    if let TopoEvent::Begin { process, .. } = event {
                        child.begun[process as usize].push(pp.0);
                    }
                }
                Ok(_) => {}
            }
            let key = self.memo_key(&child);
            if !self.seen.insert(key) {
                self.pruned += 1;
                continue;
            }
            self.states += 1;
            if let Some(found) = self.walk(&child) {
                return Some(found);
            }
        }
        if !any_move {
            self.completed += 1;
        }
        None
    }
}

/// Exhaustively explore every interleaving of `tpl` under `cfg`, with
/// the model optionally carrying an injected [`TopoMutation`] (pass
/// [`TopoMutation::None`] for real checking).
pub fn explore_topo(cfg: &TopoConfig, tpl: &TopoTemplate, mutation: TopoMutation) -> TopoExploration {
    let mut dfs = Dfs {
        tpl,
        cfg,
        seen: HashSet::new(),
        states: 0,
        pruned: 0,
        completed: 0,
    };
    let root = Node {
        oracle: TopoOracle::with_mutation(cfg.clone(), mutation),
        pcs: vec![0; tpl.procs.len()],
        ages: 0,
        begun: vec![Vec::new(); tpl.procs.len()],
        events: Vec::new(),
    };
    let divergence = dfs.walk(&root);
    TopoExploration {
        states: dfs.states,
        pruned: dfs.pruned,
        completed: dfs.completed,
        divergence,
    }
}

impl TopoTemplate {
    /// The acceptance-gate scenario of ISSUE 8's satellite: **2 nodes ×
    /// 2 layers × 3 processes**. A guaranteed Strict "latency" layer
    /// shares two small nodes with a best-effort "batch" layer; the
    /// batch demands are sized so exactly one fits per node *net of the
    /// guarantee* (exact-fit admissions — the class of state the
    /// off-by-one mutation corrupts), while the latency process issues
    /// a vector demand spanning two resource kinds and dies holding it.
    pub fn two_node_two_layer() -> (TopoConfig, TopoTemplate) {
        let layers = LayerSet::new(vec![
            LayerSpec::new("batch", PolicyKind::Strict),
            LayerSpec::new("latency", PolicyKind::Strict).with_guarantee(Demand::llc(40)),
        ])
        .with_assignment(2, LayerId(1));
        let cfg = TopoConfig::new(TopoSpec::uniform(2, 100, 50, 1000), layers)
            .with_waitlist_timeout_cycles(1_200);
        let tpl = TopoTemplate {
            name: "two-node-two-layer".into(),
            procs: vec![
                // Batch: 60 = exactly the 100 − 40 guarantee remainder.
                vec![
                    TopoOp::Begin {
                        site: 0,
                        demand: Demand::llc(60),
                    },
                    TopoOp::End { nth: 0 },
                ],
                // Batch: a second exact fit plus a double end.
                vec![
                    TopoOp::Begin {
                        site: 1,
                        demand: Demand::llc(60),
                    },
                    TopoOp::End { nth: 0 },
                    TopoOp::End { nth: 0 },
                ],
                // Latency: a two-kind vector drawn from its guarantee,
                // reclaimed by exit (the multi-resource drain path).
                vec![
                    TopoOp::Begin {
                        site: 2,
                        demand: Demand::new(30, 45, 0),
                    },
                    TopoOp::Exit,
                ],
            ],
            age_ticks: 1,
            step_cycles: 400,
        };
        (cfg, tpl)
    }

    /// Overload on a topology: tiny waitlist caps, deadline, and a
    /// single-tick breaker over two nodes, driven by demands that
    /// always collide.
    pub fn two_node_overload(shed: rda_core::ShedPolicy) -> (TopoConfig, TopoTemplate) {
        let cfg = TopoConfig::new(
            TopoSpec::uniform(2, 100, 50, 1000),
            LayerSet::single(PolicyKind::Strict),
        )
        .with_waitlist_timeout_cycles(1_200)
        .with_overload(rda_core::OverloadConfig {
            waitlist_cap: 1,
            shed_policy: shed,
            deadline_cycles: Some(900),
            breaker: Some(rda_core::BreakerConfig {
                high_water: 80,
                low_water: 40,
                trip_after: 1,
                recover_after: 1,
                shed_min_demand: 0,
            }),
        });
        let b = |site, demand| TopoOp::Begin { site, demand };
        let tpl = TopoTemplate {
            name: "two-node-overload".into(),
            procs: vec![
                vec![b(0, Demand::llc(90)), TopoOp::End { nth: 0 }],
                vec![b(1, Demand::llc(90)), TopoOp::End { nth: 0 }],
                vec![b(2, Demand::new(0, 45, 0)), TopoOp::Exit],
            ],
            age_ticks: 3,
            step_cycles: 400,
        };
        (cfg, tpl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::ShedPolicy;

    #[test]
    fn two_node_two_layer_space_is_clean() {
        let (cfg, tpl) = TopoTemplate::two_node_two_layer();
        let ex = explore_topo(&cfg, &tpl, TopoMutation::None);
        assert!(
            ex.clean(),
            "{}",
            ex.divergence.map(|d| d.1.to_string()).unwrap_or_default()
        );
        assert!(ex.states > 0 && ex.completed > 0);
        assert!(ex.pruned > 0, "memoisation never fired");
    }

    #[test]
    fn overload_space_is_clean_for_every_shed_policy() {
        for shed in [
            ShedPolicy::RejectNewest,
            ShedPolicy::RejectOldest,
            ShedPolicy::DegradeToOverflow,
        ] {
            let (cfg, tpl) = TopoTemplate::two_node_overload(shed);
            let ex = explore_topo(&cfg, &tpl, TopoMutation::None);
            assert!(
                ex.clean(),
                "{shed:?}: {}",
                ex.divergence.map(|d| d.1.to_string()).unwrap_or_default()
            );
            assert!(ex.states > 0 && ex.completed > 0, "{shed:?}");
        }
    }

    /// The permanent mutation self-test (ISSUE 8 satellite): with the
    /// `>=`→`>` off-by-one injected into the model's admission
    /// predicate, the explorer must surface a counterexample — and the
    /// counterexample must be a replayable trace that pinpoints an
    /// exact-fit admission. If this test ever starts passing with
    /// `clean() == true`, the checker has lost the sensitivity that
    /// justifies trusting its green runs.
    #[test]
    fn mutated_model_is_caught_by_the_space() {
        let (cfg, tpl) = TopoTemplate::two_node_two_layer();
        let ex = explore_topo(&cfg, &tpl, TopoMutation::StrictOffByOne);
        let (doc, div) = ex
            .divergence
            .expect("the injected off-by-one must produce a counterexample");
        assert!(div.detail.contains("mismatch"), "{div}");
        // The counterexample is a replayable artifact: it round-trips
        // through the text format and ends on the diverging event.
        let reparsed = TopoDoc::parse(&doc.to_text()).expect("counterexample parses");
        assert_eq!(reparsed, doc);
        assert_eq!(doc.events.len(), div.step + 1, "trace ends at the divergence");
    }
}
