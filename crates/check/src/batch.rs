//! Differential properties of the batched admission path.
//!
//! [`RdaExtension::pp_begin_batch`] promises *fixed serial order*
//! semantics: a batch of same-tick `pp_begin`s must leave the engine in
//! exactly the state — outcomes, both accounting buckets, waitlist
//! order, every stats counter, the memoised-decision cache — that the
//! same calls issued one at a time would. [`check_batch_equivalence`]
//! checks that promise bit-for-bit over random fault + overload
//! schedules (the overload third of the seed space exercises the
//! serial fallback inside the batch call; the rest exercises the real
//! one-table-read fast path).
//!
//! Separately, the waitlist drain in `rda-core` was rewritten to gate
//! on each entry's *stored accounted demand* instead of a registry
//! lookup per probe. [`check_headscan_property`] re-implements the
//! classical head scan from snapshot data alone and demands the drain
//! wake exactly the entries it predicts, in the same order.

use crate::trace::{TraceDoc, TraceEvent};
use rda_core::predicate::{decide, Decision};
use rda_core::{
    BeginRequest, PpDemand, PpId, RdaConfig, RdaExtension, Resource, SiteId,
};
use rda_machine::ReuseLevel;
use rda_sched::ProcessId;
use rda_simcore::SimTime;

/// Quantise every event time onto multiples of `tick`, so consecutive
/// begins genuinely share a tick — the batched path needs same-`t`
/// runs to form batches longer than one.
pub fn quantize_ticks(doc: &TraceDoc, tick: u64) -> TraceDoc {
    let mut out = doc.clone();
    for ev in &mut out.events {
        let t = match ev {
            TraceEvent::Begin { t, .. }
            | TraceEvent::End { t, .. }
            | TraceEvent::Exit { t, .. }
            | TraceEvent::Age { t }
            | TraceEvent::Retry { t, .. } => t,
        };
        *t = *t / tick * tick;
    }
    out
}

fn demand_of(resource: Resource, amount: u64) -> PpDemand {
    PpDemand {
        resource,
        amount,
        reuse: ReuseLevel::High,
    }
}

fn apply_other(ext: &mut RdaExtension, ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::End { t, pp } => {
            format!("{:?}", ext.pp_end(PpId(pp), SimTime::from_cycles(t)))
        }
        TraceEvent::Exit { t, process } => format!(
            "{:?}",
            ext.process_exit(ProcessId(process), SimTime::from_cycles(t))
        ),
        TraceEvent::Age { t } => format!("{:?}", ext.age_waitlist(SimTime::from_cycles(t))),
        TraceEvent::Retry {
            t,
            process,
            site,
            resource,
        } => {
            ext.note_retry(
                ProcessId(process),
                SiteId(site),
                resource,
                SimTime::from_cycles(t),
            );
            String::new()
        }
        TraceEvent::Begin { .. } => unreachable!("begins are batched by the caller"),
    }
}

fn compare_states(serial: &RdaExtension, batched: &RdaExtension) -> Result<(), String> {
    let (sa, sb) = (serial.snapshot(), batched.snapshot());
    if sa != sb || sa.digest() != sb.digest() {
        return Err(format!(
            "snapshot mismatch (digests {:#x} vs {:#x}):\n  serial:  {sa:?}\n  batched: {sb:?}",
            sa.digest(),
            sb.digest()
        ));
    }
    if serial.fastpath_digest() != batched.fastpath_digest() {
        return Err(format!(
            "fast-path cache mismatch: serial {:#x}, batched {:#x}",
            serial.fastpath_digest(),
            batched.fastpath_digest()
        ));
    }
    if let Err(e) = batched.check_invariants() {
        return Err(format!("batched run violated invariants: {e}"));
    }
    Ok(())
}

/// Replay `doc` twice — once call-by-call, once with every maximal run
/// of consecutive same-tick begins grouped through
/// [`RdaExtension::pp_begin_batch`] — and demand bit-identical per-call
/// outcomes and observable state after every step.
pub fn check_batch_equivalence(doc: &TraceDoc) -> Result<(), String> {
    let mut serial = RdaExtension::new(doc.cfg.clone());
    let mut batched = RdaExtension::new(doc.cfg.clone());
    let events = &doc.events;
    let mut i = 0;
    while i < events.len() {
        match events[i] {
            TraceEvent::Begin { t, .. } => {
                let mut reqs = Vec::new();
                let mut j = i;
                while j < events.len() {
                    let TraceEvent::Begin {
                        t: tj,
                        process,
                        site,
                        resource,
                        amount,
                    } = events[j]
                    else {
                        break;
                    };
                    if tj != t {
                        break;
                    }
                    reqs.push(BeginRequest {
                        process: ProcessId(process),
                        site: SiteId(site),
                        demand: demand_of(resource, amount),
                    });
                    j += 1;
                }
                let now = SimTime::from_cycles(t);
                let serial_out: Vec<_> = reqs
                    .iter()
                    .map(|r| serial.pp_begin(r.process, r.site, r.demand, now))
                    .collect();
                let batch_out = batched.pp_begin_batch(&reqs, now);
                if serial_out != batch_out {
                    return Err(format!(
                        "outcome mismatch for batch at events {i}..{j}:\n  serial:  {serial_out:?}\n  batched: {batch_out:?}"
                    ));
                }
                i = j;
            }
            ev => {
                let got_serial = apply_other(&mut serial, &ev);
                let got_batched = apply_other(&mut batched, &ev);
                if got_serial != got_batched {
                    return Err(format!(
                        "outcome mismatch at event {i} ({ev:?}):\n  serial:  {got_serial}\n  batched: {got_batched}"
                    ));
                }
                i += 1;
            }
        }
        compare_states(&serial, &batched).map_err(|e| format!("after event {i}: {e}"))?;
    }
    Ok(())
}

/// Predict, by the classical head scan, which waiters `pp_end(pp)`
/// would wake: release the period's accounted demand, then admit from
/// the queue front while the predicate passes, stopping at the first
/// entry that pauses. Built from snapshot data alone, so it shares no
/// state with the drain under test. Returns `None` where the
/// prediction is undefined: aging enabled (force-admissions interleave
/// with the scan) or an end that will be rejected.
pub fn headscan_prediction(ext: &RdaExtension, cfg: &RdaConfig, pp: PpId) -> Option<Vec<PpId>> {
    if cfg.waitlist_timeout_cycles.is_some() {
        return None;
    }
    let snap = ext.snapshot();
    let rec = snap.periods.iter().find(|p| p.id == pp)?;
    if !rec.admitted {
        return None;
    }
    let (ri, capacity) = match rec.resource {
        Resource::Llc => (0, cfg.llc_capacity),
        Resource::MemBandwidth => (1, cfg.membw_capacity),
    };
    let mut usage = snap.usage[ri];
    if !rec.overflow {
        usage -= rec.accounted;
    }
    let mut woken = Vec::new();
    for e in &snap.waitlists[ri] {
        let remaining = capacity as i128 - usage as i128;
        match decide(e.accounted, capacity, remaining, &cfg.policy) {
            Decision::Run => {
                usage += e.accounted;
                woken.push(e.pp);
            }
            Decision::Pause => break,
        }
    }
    Some(woken)
}

/// Replay `doc` through one extension and, before every `pp_end`,
/// check the accounted-gate drain wakes exactly the entries the
/// head-scan prediction names, in the same order.
pub fn check_headscan_property(doc: &TraceDoc) -> Result<(), String> {
    let mut ext = RdaExtension::new(doc.cfg.clone());
    for (idx, ev) in doc.events.iter().enumerate() {
        match *ev {
            TraceEvent::Begin {
                t,
                process,
                site,
                resource,
                amount,
            } => {
                let _ = ext.pp_begin(
                    ProcessId(process),
                    SiteId(site),
                    demand_of(resource, amount),
                    SimTime::from_cycles(t),
                );
            }
            TraceEvent::End { t, pp } => {
                let predicted = headscan_prediction(&ext, &doc.cfg, PpId(pp));
                let got = ext.pp_end(PpId(pp), SimTime::from_cycles(t));
                if let (Some(want), Ok(out)) = (predicted, got) {
                    let woken: Vec<PpId> = out.resumed.iter().map(|&(id, _)| id).collect();
                    if woken != want {
                        return Err(format!(
                            "wake-set mismatch at event {idx}: head scan predicts {want:?}, drain woke {woken:?}"
                        ));
                    }
                }
            }
            ref other => {
                apply_other(&mut ext, other);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_doc, GenParams};

    #[test]
    fn quantization_preserves_event_count_and_order_kinds() {
        let doc = random_doc(1, &GenParams::default());
        let q = quantize_ticks(&doc, 512);
        assert_eq!(doc.events.len(), q.events.len());
    }

    #[test]
    fn batched_begin_is_bit_identical_to_serial() {
        let p = GenParams::default();
        for seed in 0..150 {
            // Coarse ticks force multi-begin batches; the raw doc also
            // runs to keep singleton batches covered.
            for doc in [
                quantize_ticks(&random_doc(seed, &p), 512),
                random_doc(seed, &p),
            ] {
                if let Err(e) = check_batch_equivalence(&doc) {
                    panic!("seed {seed}: {e}");
                }
            }
        }
    }

    #[test]
    fn accounted_gate_drain_matches_the_head_scan() {
        let p = GenParams {
            procs: 4,
            sites: 3,
            events: 60,
        };
        for seed in 0..150 {
            if let Err(e) = check_headscan_property(&random_doc(seed, &p)) {
                panic!("seed {seed}: {e}");
            }
        }
    }
}
