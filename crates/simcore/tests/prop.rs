//! Property-based tests for the simulation core.

use proptest::prelude::*;
use rda_simcore::{EventQueue, Histogram, RunningStats, SimDuration, SimTime, Xoshiro256};

proptest! {
    /// Events always pop in non-decreasing time order, and equal-time
    /// events pop in insertion order.
    #[test]
    fn event_queue_is_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_cycles(t), i);
        }
        let mut popped = Vec::new();
        while let Some(ev) = q.pop() {
            popped.push((ev.time.cycles(), ev.payload));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Welford merge is equivalent to pushing all samples into one
    /// accumulator, at any split point.
    #[test]
    fn stats_merge_associative(
        data in prop::collection::vec(-1e6f64..1e6, 2..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut whole = RunningStats::new();
        for &x in &data { whole.push(x); }

        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..split] { a.push(x); }
        for &x in &data[split..] { b.push(x); }
        a.merge(&b);

        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
    }

    /// Histogram count/sum invariants hold for arbitrary inputs.
    #[test]
    fn histogram_conserves_mass(values in prop::collection::vec(0u64..u64::MAX / 2, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values { h.record(v); }
        prop_assert_eq!(h.count(), values.len() as u64);
        let expected_mean = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - expected_mean).abs() < 1e-3 * (1.0 + expected_mean));
        // Every value is <= the p=1.0 bucket upper bound.
        let ub = h.quantile_upper_bound(1.0);
        prop_assert!(values.iter().all(|&v| v <= ub));
    }

    /// Time arithmetic: (t + d) - d == t and since() inverts addition.
    #[test]
    fn time_add_sub_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_cycles(t);
        let dur = SimDuration::from_cycles(d);
        prop_assert_eq!((time + dur) - dur, time);
        prop_assert_eq!((time + dur).since(time), dur);
    }

    /// RNG determinism: identical seeds yield identical streams.
    #[test]
    fn rng_streams_deterministic(seed in any::<u64>()) {
        let mut a = Xoshiro256::new(seed);
        let mut b = Xoshiro256::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Bounded sampling never exceeds the bound.
    #[test]
    fn rng_bounded(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut r = Xoshiro256::new(seed);
        for _ in 0..100 {
            prop_assert!(r.next_below(bound) < bound);
        }
    }
}
