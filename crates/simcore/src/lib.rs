//! # rda-simcore
//!
//! Foundation of the RDA reproduction: a small, deterministic
//! discrete-event simulation core.
//!
//! The crate provides four building blocks used by every higher layer:
//!
//! * [`SimTime`] / [`SimDuration`] — simulated time measured in CPU
//!   cycles, convertible to wall-clock seconds at a given frequency.
//! * [`EventQueue`] — a priority queue of timestamped events with
//!   deterministic FIFO tie-breaking, so simulations are exactly
//!   reproducible run-to-run.
//! * [`rng::SplitMix64`] / [`rng::Xoshiro256`] — tiny, seedable PRNGs for
//!   workload generation that do not depend on platform entropy.
//! * [`stats`] — streaming statistics (Welford mean/variance, min/max,
//!   histograms) used by the measurement layer.
//!
//! Everything here is intentionally free of I/O and OS dependencies: the
//! same engine drives unit tests, property tests, and the full-system
//! experiments in `rda-sim`.

#![warn(missing_docs)]

pub mod event;
pub mod hash;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventQueue, ScheduledEvent};
pub use hash::Fnv1a64;
pub use rng::{SplitMix64, Xoshiro256};
pub use stats::{Histogram, RunningStats};
pub use time::{SimDuration, SimTime};
