//! Simulated time.
//!
//! All simulation components agree on a single clock domain: **CPU
//! cycles** of the simulated machine. Cycles are exact integers, so event
//! ordering never suffers floating-point drift; conversion to seconds
//! happens only at reporting time, parameterised by the core frequency
//! (1.9 GHz for the paper's Xeon E5-2420).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute point in simulated time, in CPU cycles since simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in CPU cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (cycle zero).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a raw cycle count.
    #[inline]
    pub const fn from_cycles(cycles: u64) -> Self {
        SimTime(cycles)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier`. Saturates at zero rather than
    /// panicking, so callers comparing racing events never underflow.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Convert to seconds at the given core frequency in Hz.
    #[inline]
    pub fn as_secs(self, freq_hz: f64) -> f64 {
        self.0 as f64 / freq_hz
    }

    /// Saturating addition of a duration (stays at [`SimTime::MAX`]).
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from a raw cycle count.
    #[inline]
    pub const fn from_cycles(cycles: u64) -> Self {
        SimDuration(cycles)
    }

    /// Construct from microseconds of wall time at the given frequency.
    #[inline]
    pub fn from_micros(us: f64, freq_hz: f64) -> Self {
        SimDuration((us * 1e-6 * freq_hz).round() as u64)
    }

    /// The raw cycle count.
    #[inline]
    pub const fn cycles(self) -> u64 {
        self.0
    }

    /// Convert to seconds at the given core frequency in Hz.
    #[inline]
    pub fn as_secs(self, freq_hz: f64) -> f64 {
        self.0 as f64 / freq_hz
    }

    /// True if this duration is zero cycles long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale the duration by a non-negative factor, rounding to the
    /// nearest cycle.
    #[inline]
    pub fn scale(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_cycles(100);
        let d = SimDuration::from_cycles(40);
        assert_eq!((t + d).cycles(), 140);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let early = SimTime::from_cycles(10);
        let late = SimTime::from_cycles(50);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn seconds_conversion_uses_frequency() {
        let t = SimTime::from_cycles(1_900_000_000);
        assert!((t.as_secs(1.9e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_micros_rounds_to_cycles() {
        // 3 us at 1 GHz = 3000 cycles.
        assert_eq!(SimDuration::from_micros(3.0, 1e9).cycles(), 3000);
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(SimDuration::from_cycles(10).scale(0.25).cycles(), 3);
        assert_eq!(SimDuration::from_cycles(10).scale(0.0).cycles(), 0);
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_cycles(1)), SimTime::MAX);
    }

    #[test]
    fn display_formats_cycles() {
        assert_eq!(SimTime::from_cycles(7).to_string(), "7cy");
        assert_eq!(SimDuration::from_cycles(9).to_string(), "9cy");
    }
}
