//! Deterministic 64-bit digests of simulation results.
//!
//! The parallel experiment engine proves serial and multi-threaded
//! sweeps bit-identical by digesting every `RunResult`; golden-trace
//! regression tests pin a digest in the repository so behavioural
//! changes of the simulator show up as explicit diffs. [`Fnv1a64`] is
//! FNV-1a — not cryptographic, but stable across platforms, releases,
//! and compiler versions, which is the property a checked-in golden
//! value needs.

/// Incremental FNV-1a hasher over primitive fields.
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a64 {
            state: Self::OFFSET,
        }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Absorb a `usize` (widened to `u64` so digests match across
    /// pointer widths).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Absorb an `f64` by bit pattern. `-0.0` is canonicalised to `0.0`
    /// and any NaN to the quiet NaN, so semantically equal results hash
    /// equal.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        let canonical = if v == 0.0 {
            0.0f64
        } else if v.is_nan() {
            f64::NAN
        } else {
            v
        };
        self.write_u64(canonical.to_bits())
    }

    /// Absorb a string (length-prefixed, so `"ab"+"c"` ≠ `"a"+"bc"`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fnv1a_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        let digest = |s: &str| {
            let mut h = Fnv1a64::new();
            h.write_bytes(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf29ce484222325);
        assert_eq!(digest("a"), 0xaf63dc4c8601ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_order_matters() {
        let mut a = Fnv1a64::new();
        a.write_u64(1).write_u64(2);
        let mut b = Fnv1a64::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_canonicalisation() {
        let bits = |v: f64| {
            let mut h = Fnv1a64::new();
            h.write_f64(v);
            h.finish()
        };
        assert_eq!(bits(0.0), bits(-0.0));
        assert_eq!(bits(f64::NAN), bits(-f64::NAN));
        assert_ne!(bits(1.0), bits(1.0 + f64::EPSILON));
    }

    #[test]
    fn string_framing_prevents_concatenation_collisions() {
        let two = |a: &str, b: &str| {
            let mut h = Fnv1a64::new();
            h.write_str(a).write_str(b);
            h.finish()
        };
        assert_ne!(two("ab", "c"), two("a", "bc"));
    }
}
