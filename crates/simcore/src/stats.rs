//! Streaming statistics.
//!
//! Measurement code in the experiment harness never buffers raw samples;
//! it feeds them into [`RunningStats`] (Welford's online algorithm) or a
//! power-of-two [`Histogram`]. Both are exact single-pass accumulators.


/// Online mean / variance / min / max accumulator (Welford).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Relative standard deviation (stddev / |mean|); 0 when mean is 0.
    pub fn rel_stddev(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m.abs()
        }
    }

    /// Smallest sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel-combine).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over `u64` values with power-of-two bucket boundaries:
/// bucket `k` counts values whose highest set bit is `k` (value 0 lands
/// in bucket 0). Useful for latency and working-set distributions that
/// span many orders of magnitude.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram covering the full `u64` range (65 buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the top edge of
    /// the bucket containing that rank.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if k == 0 { 0 } else { (1u128 << k).saturating_sub(1).min(u64::MAX as u128) as u64 };
            }
        }
        u64::MAX
    }

    /// Count in the bucket for values with highest set bit `k`.
    pub fn bucket(&self, k: usize) -> u64 {
        self.buckets[k]
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0];
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(5.0);
        let before = a.mean();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before);

        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn histogram_buckets_by_leading_bit() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.bucket(11), 1);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 206.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantile_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        // 90% of samples are 1 → p50 bound well below 1000.
        assert!(h.quantile_upper_bound(0.5) <= 1);
        assert!(h.quantile_upper_bound(1.0) >= 1000);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(3), 3); // 4..=7 all in bucket 3
    }

    #[test]
    fn rel_stddev_zero_mean() {
        let mut s = RunningStats::new();
        s.push(-1.0);
        s.push(1.0);
        assert_eq!(s.rel_stddev(), 0.0);
    }
}
