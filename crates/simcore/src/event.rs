//! Deterministic event queue.
//!
//! A discrete-event simulation is only as reproducible as its event
//! ordering. [`EventQueue`] orders events primarily by timestamp and
//! secondarily by an insertion sequence number, so two events scheduled
//! for the same cycle always pop in the order they were pushed —
//! regardless of heap internals or payload contents.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event extracted from the queue: when it fires and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The simulated time at which the event fires.
    pub time: SimTime,
    /// Monotonically increasing insertion sequence (unique per queue).
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: E,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A timestamped priority queue with deterministic FIFO tie-breaking.
///
/// ```
/// use rda_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_cycles(20), "late");
/// q.push(SimTime::from_cycles(10), "early");
/// q.push(SimTime::from_cycles(10), "early-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
    /// Timestamp of the most recently popped event; used to enforce the
    /// no-time-travel invariant in debug builds.
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at `time`. Returns the sequence number
    /// assigned to the event (useful for logical cancellation).
    ///
    /// Scheduling into the past (before the last popped event) is a
    /// simulation bug; it is rejected with a panic in debug builds.
    pub fn push(&mut self, time: SimTime, payload: E) -> u64 {
        debug_assert!(
            time >= self.last_popped,
            "event scheduled into the past: {time} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, payload });
        seq
    }

    /// Remove and return the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.heap.pop()?;
        self.last_popped = entry.time;
        Some(ScheduledEvent {
            time: entry.time,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events, keeping allocation and sequence counter.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(30), 3);
        q.push(SimTime::from_cycles(10), 1);
        q.push(SimTime::from_cycles(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_cycles(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(42), ());
        q.push(SimTime::from_cycles(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_cycles(7)));
        assert_eq!(q.pop().unwrap().time, SimTime::from_cycles(7));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    #[cfg(debug_assertions)]
    fn rejects_time_travel() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(100), ());
        q.pop();
        q.push(SimTime::from_cycles(50), ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_cycles(10), "a");
        q.push(SimTime::from_cycles(30), "c");
        assert_eq!(q.pop().unwrap().payload, "a");
        q.push(SimTime::from_cycles(20), "b");
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.pop().unwrap().payload, "c");
    }
}
