//! Seedable pseudo-random number generators.
//!
//! Simulation reproducibility requires RNGs whose entire state is the
//! seed. We provide two standard generators:
//!
//! * [`SplitMix64`] — a tiny 64-bit mixer; used to expand one `u64` seed
//!   into larger state, and adequate on its own for workload jitter.
//! * [`Xoshiro256`] — xoshiro256++, a fast general-purpose generator
//!   with 256-bit state, seeded via SplitMix64 as its authors recommend.
//!
//! Neither is cryptographic; both are deterministic on every platform.

/// SplitMix64: Steele, Lea & Flood's 64-bit mixing generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 and
        // irrelevant for workload generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Derive the seed of an independent child stream from a root seed.
    ///
    /// Parallel sweeps give every run `derive_stream(root, index)` so
    /// that (a) no RNG state is shared between concurrent runs and
    /// (b) a run's stream depends only on `(root, index)` — never on
    /// which worker thread executed it or in what order — which is what
    /// makes serial and multi-threaded sweeps bit-identical.
    ///
    /// Two full SplitMix64 scrambles separate the root/stream inputs so
    /// that consecutive indices yield statistically unrelated streams.
    pub const fn derive_stream(root: u64, stream: u64) -> u64 {
        const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut sm = SplitMix64::new(stream ^ GOLDEN.wrapping_mul(root.rotate_left(17)));
        let a = sm.const_next();
        let mut sm2 = SplitMix64::new(root ^ a);
        sm2.const_next()
    }

    /// `next_u64` usable in const contexts (used by `derive_stream`).
    const fn const_next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 by Blackman & Vigna.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion of a single `u64`, per the
    /// generator authors' recommendation.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Sample a normally distributed value (Box–Muller, mean `mu`,
    /// standard deviation `sigma`).
    pub fn next_gaussian(&mut self, mu: f64, sigma: f64) -> f64 {
        // Avoid ln(0) by sampling u1 from (0,1].
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mu + sigma * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_sequence() {
        // Reference values from the public-domain reference
        // implementation seeded with 1234567.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn derive_stream_is_pure_and_spreads() {
        // Pure function of (root, index).
        assert_eq!(
            SplitMix64::derive_stream(42, 7),
            SplitMix64::derive_stream(42, 7)
        );
        // Distinct indices and distinct roots give distinct streams.
        let mut seeds: Vec<u64> = (0..1000)
            .map(|i| SplitMix64::derive_stream(0xDEAD_BEEF, i))
            .collect();
        seeds.extend((0..1000).map(|i| SplitMix64::derive_stream(0xFEED_FACE, i)));
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 2000, "derived stream seeds collided");
    }

    #[test]
    fn derived_streams_are_statistically_independent() {
        // Adjacent stream indices must not produce correlated output:
        // compare first values bit-by-bit over many indices.
        let mut agree = 0u32;
        let mut total = 0u32;
        for i in 0..64 {
            let a = SplitMix64::new(SplitMix64::derive_stream(1, i)).next_u64();
            let b = SplitMix64::new(SplitMix64::derive_stream(1, i + 1)).next_u64();
            agree += (!(a ^ b)).count_ones();
            total += 64;
        }
        let frac = agree as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "bit agreement {frac}");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256::new(42);
        let mut b = Xoshiro256::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_sampling_respects_bound() {
        let mut r = Xoshiro256::new(9);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn bounded_sampling_covers_range() {
        let mut r = Xoshiro256::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_mean_and_spread_are_plausible() {
        let mut r = Xoshiro256::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }
}
