//! The eight workloads of Table 2.
//!
//! | Workload   | #Proc | #Thr/Proc | Work-set sizes (MB)    | Reuse |
//! |------------|-------|-----------|------------------------|-------|
//! | BLAS-1     | 96    | 1         | 0.6                    | low   |
//! | BLAS-2     | 96    | 1         | 0.6                    | med   |
//! | BLAS-3     | 96    | 1         | 1.6, 2.4, 2.4, 3.2     | high  |
//! | Water_sp   | 12    | 2         | 1.6, 1.3, 1.3, 1.6     | low   |
//! | Water_nsq  | 12    | 2         | 3.6, 3.6, 3.7          | high  |
//! | Ocean_cp   | 48    | 2         | 2.1, 0.76, 1.5, 0.59   | high/med mix |
//! | Raytrace   | 48    | 4         | 5.1, 5.2               | high  |
//! | Volrend    | 48    | 4         | 1.8, 1.7               | high  |
//!
//! Instruction budgets are not in the paper; they are calibrated so each
//! workload runs for seconds of simulated time (hundreds of scheduler
//! timeslices), long enough for steady-state contention to dominate.
//! SPLASH workloads repeat their per-timestep phase sequence several
//! times with short untracked synchronisation phases in between
//! (progress periods must not contain blocking synchronisation, §3.4).

use rda_metrics::TextTable;
use crate::phases::{Phase, ProcessProgram, WorkloadSpec};
use rda_core::{mb, SiteId};
use rda_machine::ReuseLevel;

/// Instructions per BLAS level-1/2 kernel invocation.
const BLAS12_INSTR: u64 = 150_000_000;
/// Instructions per BLAS level-3 kernel invocation.
const BLAS3_INSTR: u64 = 500_000_000;
/// Instructions per SPLASH phase per thread.
const SPLASH_PHASE_INSTR: u64 = 120_000_000;
/// Instructions in an untracked synchronisation phase per thread.
const SYNC_INSTR: u64 = 2_000_000;
/// Timesteps a SPLASH process executes.
const SPLASH_TIMESTEPS: usize = 4;

fn blas_workload(name: &str, procs: usize, ws_mb: &[f64], reuse: ReuseLevel, instr: u64) -> WorkloadSpec {
    let processes = (0..procs)
        .map(|i| {
            let ws = mb(ws_mb[i % ws_mb.len()]);
            ProcessProgram {
                threads: 1,
                phases: vec![Phase::tracked(
                    format!("{name}-kernel{}", i % ws_mb.len()),
                    instr,
                    ws,
                    reuse,
                    SiteId((i % ws_mb.len()) as u32),
                )],
            }
        })
        .collect();
    WorkloadSpec {
        name: name.to_string(),
        processes,
    }
}

fn splash_workload(
    name: &str,
    procs: usize,
    threads: usize,
    phase_ws_mb: &[f64],
    phase_reuse: &[ReuseLevel],
    timesteps: usize,
) -> WorkloadSpec {
    assert_eq!(phase_ws_mb.len(), phase_reuse.len());
    let processes = (0..procs)
        .map(|_| {
            let mut phases = Vec::new();
            for ts in 0..timesteps {
                for (k, (&ws, &reuse)) in phase_ws_mb.iter().zip(phase_reuse).enumerate() {
                    phases.push(Phase::tracked(
                        format!("{name}-pp{k}-ts{ts}"),
                        SPLASH_PHASE_INSTR,
                        mb(ws),
                        reuse,
                        SiteId(k as u32),
                    ));
                }
                // Barrier / reduction phase between timesteps: contains
                // blocking synchronisation, so it is left untracked and
                // scheduled by the default policy (§3.4).
                phases.push(Phase::untracked(
                    format!("{name}-sync-ts{ts}"),
                    SYNC_INSTR,
                    mb(0.05),
                    ReuseLevel::Low,
                ));
            }
            ProcessProgram { threads, phases }
        })
        .collect();
    WorkloadSpec {
        name: name.to_string(),
        processes,
    }
}

/// BLAS-1: daxpy, dcopy, dscal, dswap (vector-vector, minimal reuse).
pub fn blas1() -> WorkloadSpec {
    blas_workload("BLAS-1", 96, &[0.6], ReuseLevel::Low, BLAS12_INSTR)
}

/// BLAS-2: dgemvN, dgemvT, dtrmv, dtrsv (matrix-vector, medium reuse).
pub fn blas2() -> WorkloadSpec {
    blas_workload("BLAS-2", 96, &[0.6], ReuseLevel::Medium, BLAS12_INSTR)
}

/// BLAS-3: dgemm, dsyrk, dtrmm(ru), dtrsm(ru) (matrix-matrix, high
/// reuse; the four kernels have working sets 1.6/2.4/2.4/3.2 MB).
pub fn blas3() -> WorkloadSpec {
    blas_workload(
        "BLAS-3",
        96,
        &[1.6, 2.4, 2.4, 3.2],
        ReuseLevel::High,
        BLAS3_INSTR,
    )
}

/// Water-spatial: 12 × 2 threads, low-reuse phases.
pub fn water_sp() -> WorkloadSpec {
    splash_workload(
        "Water_sp",
        12,
        2,
        &[1.6, 1.3, 1.3, 1.6],
        &[ReuseLevel::Low; 4],
        SPLASH_TIMESTEPS,
    )
}

/// Water-nsquared: 12 × 2 threads, high-reuse phases.
pub fn water_nsq() -> WorkloadSpec {
    splash_workload(
        "Water_nsq",
        12,
        2,
        &[3.6, 3.6, 3.7],
        &[ReuseLevel::High; 3],
        SPLASH_TIMESTEPS,
    )
}

/// Ocean-cp: 48 × 2 threads, mixed high/medium reuse phases.
pub fn ocean_cp() -> WorkloadSpec {
    splash_workload(
        "Ocean_cp",
        48,
        2,
        &[2.1, 0.76, 1.5, 0.59],
        &[
            ReuseLevel::High,
            ReuseLevel::Medium,
            ReuseLevel::High,
            ReuseLevel::Medium,
        ],
        SPLASH_TIMESTEPS,
    )
}

/// Raytrace: 48 × 4 threads, two large high-reuse phases.
pub fn raytrace() -> WorkloadSpec {
    splash_workload(
        "Raytrace",
        48,
        4,
        &[5.1, 5.2],
        &[ReuseLevel::High; 2],
        SPLASH_TIMESTEPS,
    )
}

/// Volrend: 48 × 4 threads, two smaller high-reuse phases.
pub fn volrend() -> WorkloadSpec {
    splash_workload(
        "Volrend",
        48,
        4,
        &[1.8, 1.7],
        &[ReuseLevel::High; 2],
        SPLASH_TIMESTEPS,
    )
}

/// All eight workloads in the order the figures present them.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    vec![
        blas1(),
        blas2(),
        blas3(),
        water_sp(),
        water_nsq(),
        ocean_cp(),
        raytrace(),
        volrend(),
    ]
}

/// Render Table 2 from the actual specs.
pub fn table2() -> String {
    let mut t = rda_metrics_table();
    for w in all_workloads() {
        let procs = w.num_processes();
        let threads = w.processes[0].threads;
        let wss: Vec<String> = w
            .declared_working_sets()
            .iter()
            .map(|&b| format!("{:.2}", b as f64 / (1024.0 * 1024.0)))
            .collect();
        let reuse: Vec<String> = {
            let mut seen = Vec::new();
            for ph in &w.processes[0].phases {
                if let Some(pp) = &ph.pp {
                    let s = pp.demand.reuse.to_string();
                    if !seen.contains(&s) {
                        seen.push(s);
                    }
                }
            }
            seen
        };
        t.add_row(vec![
            w.name.clone(),
            procs.to_string(),
            threads.to_string(),
            wss.join(", "),
            reuse.join(", "),
        ]);
    }
    t.render()
}

fn rda_metrics_table() -> TextTable {
    TextTable::new(vec![
        "Workload".into(),
        "#Proc".into(),
        "#Threads/Proc".into(),
        "Work-set sizes (MB)".into(),
        "Data Reuses".into(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_process_and_thread_counts_match_paper() {
        let cases = [
            ("BLAS-1", 96, 1),
            ("BLAS-2", 96, 1),
            ("BLAS-3", 96, 1),
            ("Water_sp", 12, 2),
            ("Water_nsq", 12, 2),
            ("Ocean_cp", 48, 2),
            ("Raytrace", 48, 4),
            ("Volrend", 48, 4),
        ];
        let all = all_workloads();
        assert_eq!(all.len(), cases.len());
        for ((name, procs, threads), w) in cases.iter().zip(&all) {
            assert_eq!(&w.name, name);
            assert_eq!(w.num_processes(), *procs, "{name}");
            assert_eq!(w.processes[0].threads, *threads, "{name}");
        }
    }

    #[test]
    fn working_sets_match_table2() {
        assert_eq!(blas3().declared_working_sets(), vec![mb(1.6), mb(2.4), mb(3.2)]);
        assert_eq!(
            water_nsq().declared_working_sets(),
            vec![mb(3.6), mb(3.7)]
        );
        assert_eq!(raytrace().declared_working_sets(), vec![mb(5.1), mb(5.2)]);
    }

    #[test]
    fn splash_programs_interleave_sync_phases() {
        let w = water_nsq();
        let phases = &w.processes[0].phases;
        // 3 tracked + 1 untracked per timestep.
        assert_eq!(phases.len(), 4 * SPLASH_TIMESTEPS);
        assert!(phases[0].pp.is_some());
        assert!(phases[3].pp.is_none(), "sync phase must be untracked");
    }

    #[test]
    fn blas3_mixes_four_kernels() {
        let w = blas3();
        let sites: std::collections::HashSet<u32> = w
            .processes
            .iter()
            .map(|p| p.phases[0].pp.unwrap().site.0)
            .collect();
        assert_eq!(sites.len(), 4);
    }

    #[test]
    fn reuse_levels_match_table2() {
        assert_eq!(
            blas1().processes[0].phases[0].pp.unwrap().demand.reuse,
            ReuseLevel::Low
        );
        assert_eq!(
            blas2().processes[0].phases[0].pp.unwrap().demand.reuse,
            ReuseLevel::Medium
        );
        assert_eq!(
            volrend().processes[0].phases[0].pp.unwrap().demand.reuse,
            ReuseLevel::High
        );
    }

    #[test]
    fn table2_renders_all_rows() {
        let s = table2();
        for name in [
            "BLAS-1", "BLAS-2", "BLAS-3", "Water_sp", "Water_nsq", "Ocean_cp", "Raytrace",
            "Volrend",
        ] {
            assert!(s.contains(name), "missing {name}:\n{s}");
        }
        assert!(s.contains("5.10, 5.20"), "raytrace working sets:\n{s}");
    }
}
