//! # rda-workloads
//!
//! Everything the paper runs *on* its scheduler, rebuilt in Rust:
//!
//! * [`blas`] — real implementations of the twelve BLAS kernels of
//!   Table 2 (level 1: daxpy/dcopy/dscal/dswap; level 2: dgemv-N/T,
//!   dtrmv, dtrsv; level 3: dgemm, dsyrk, dtrmm, dtrsm), each with an
//!   instrumented variant that records its memory trace.
//! * [`splash`] — mini-app re-implementations of the five SPLASH-2
//!   benchmarks the paper uses (water-nsquared, water-spatial,
//!   ocean-cp, raytrace, volrend): same algorithmic skeletons and phase
//!   structure, sized for trace-driven profiling.
//! * [`trace`] — the PIN stand-in: a memory-trace recorder and the
//!   [`trace::TracedBuf`] instrumented buffer the kernels run on.
//! * [`phases`] — the phase/program vocabulary the full-system
//!   simulator executes (a process = a sequence of phases, each
//!   optionally bracketed by a progress period).
//! * [`spec`] — the eight workloads of Table 2 as ready-to-run
//!   [`phases::WorkloadSpec`]s.

#![warn(missing_docs)]

pub mod blas;
pub mod phases;
pub mod spec;
pub mod splash;
pub mod trace;

pub use phases::{Phase, ProcessProgram, WorkloadSpec};
pub use trace::{MemoryTrace, TraceRecord, TracedBuf};
