//! BLAS level-3 kernels: matrix-matrix operations with high reuse.
//!
//! The BLAS-3 workload of Table 2 (dgemm, dsyrk, dtrmm-ru, dtrsm-ru).
//! [`dgemm_blocked`] applies the loop blocking the paper mentions
//! (*"optimized with loop blocking so that individually its working set
//! size fits within the last-level cache"*). [`dgemm_traced`] replays
//! the kernel on instrumented buffers with loop back-edge markers for
//! the three nest levels — the input of the Figure 11 granularity study
//! and of the profiler's loop mapping.

use super::at;
use crate::trace::{AddressSpace, TraceRecorder};

/// `C ← α·A·B + β·C`, naive triple loop, row-major `n × n`.
pub fn dgemm_naive(n: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[at(n, i, k)] * b[at(n, k, j)];
            }
            c[at(n, i, j)] = alpha * acc + beta * c[at(n, i, j)];
        }
    }
}

/// `C ← α·A·B + β·C` with `bs × bs` loop blocking.
pub fn dgemm_blocked(n: usize, bs: usize, alpha: f64, a: &[f64], b: &[f64], beta: f64, c: &mut [f64]) {
    assert!(bs > 0);
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    for ci in c.iter_mut() {
        *ci *= beta;
    }
    for ii in (0..n).step_by(bs) {
        for kk in (0..n).step_by(bs) {
            for jj in (0..n).step_by(bs) {
                let i_end = (ii + bs).min(n);
                let k_end = (kk + bs).min(n);
                let j_end = (jj + bs).min(n);
                for i in ii..i_end {
                    for k in kk..k_end {
                        let aik = alpha * a[at(n, i, k)];
                        for j in jj..j_end {
                            c[at(n, i, j)] += aik * b[at(n, k, j)];
                        }
                    }
                }
            }
        }
    }
}

/// `C ← α·A·Aᵀ + β·C` (symmetric rank-k update, full matrix stored).
pub fn dsyrk(n: usize, alpha: f64, a: &[f64], beta: f64, c: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(c.len(), n * n);
    for i in 0..n {
        for j in 0..=i {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[at(n, i, k)] * a[at(n, j, k)];
            }
            let v = alpha * acc;
            c[at(n, i, j)] = v + beta * c[at(n, i, j)];
            if i != j {
                c[at(n, j, i)] = v + beta * c[at(n, j, i)];
            }
        }
    }
}

/// `B ← B·U` (right-multiply by the upper triangle of `u`, diagonal
/// included) — dtrmm with side=right, uplo=upper.
pub fn dtrmm_ru(n: usize, b: &mut [f64], u: &[f64]) {
    assert_eq!(b.len(), n * n);
    assert_eq!(u.len(), n * n);
    for i in 0..n {
        // Process columns right-to-left so unread inputs stay intact.
        for j in (0..n).rev() {
            let mut acc = 0.0;
            for k in 0..=j {
                acc += b[at(n, i, k)] * u[at(n, k, j)];
            }
            b[at(n, i, j)] = acc;
        }
    }
}

/// Solve `X·U = B` in place (`b` enters holding `B`, leaves holding
/// `X`) — dtrsm with side=right, uplo=upper.
pub fn dtrsm_ru(n: usize, b: &mut [f64], u: &[f64]) {
    assert_eq!(b.len(), n * n);
    assert_eq!(u.len(), n * n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = b[at(n, i, j)];
            for k in 0..j {
                acc -= b[at(n, i, k)] * u[at(n, k, j)];
            }
            let d = u[at(n, j, j)];
            assert!(d != 0.0, "singular triangular matrix");
            b[at(n, i, j)] = acc / d;
        }
    }
}

/// Traced naive dgemm: three nested loops with back-edge markers
/// (loop ids 0 = outer `i`, 1 = middle `j`, 2 = inner `k`), every
/// element access recorded. Returns a checksum of `C`.
pub fn dgemm_traced(n: usize, rec: &TraceRecorder) -> f64 {
    let mut space = AddressSpace::new();
    let mut a = space.alloc(n * n, rec);
    let mut b = space.alloc(n * n, rec);
    let mut c = space.alloc(n * n, rec);
    for i in 0..n * n {
        a.init(i, (i % 7) as f64 * 0.25);
        b.init(i, (i % 5) as f64 * 0.5);
        c.init(i, 0.0);
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a.get(at(n, i, k)) * b.get(at(n, k, j));
                rec.loop_branch(2);
            }
            c.set(at(n, i, j), acc);
            rec.loop_branch(1);
        }
        rec.loop_branch(0);
    }
    (0..n * n).map(|i| c.peek(i)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::fill_test_data;

    fn rand_mat(n: usize, seed: u64) -> Vec<f64> {
        let mut m = vec![0.0; n * n];
        fill_test_data(&mut m, seed);
        m
    }

    fn upper_mat(n: usize, seed: u64) -> Vec<f64> {
        let mut u = rand_mat(n, seed);
        for i in 0..n {
            for j in 0..i {
                u[at(n, i, j)] = 0.0;
            }
            u[at(n, i, i)] = 2.0 + u[at(n, i, i)].abs();
        }
        u
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn dgemm_identity() {
        let n = 8;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[at(n, i, i)] = 1.0;
        }
        let b = rand_mat(n, 1);
        let mut c = vec![0.0; n * n];
        dgemm_naive(n, 1.0, &eye, &b, 0.0, &mut c);
        assert_close(&c, &b, 1e-12);
    }

    #[test]
    fn blocked_matches_naive_across_block_sizes() {
        let n = 37; // deliberately not a multiple of any block size
        let a = rand_mat(n, 2);
        let b = rand_mat(n, 3);
        let mut reference = rand_mat(n, 4);
        let orig_c = reference.clone();
        dgemm_naive(n, 1.3, &a, &b, 0.7, &mut reference);
        for bs in [1, 4, 8, 16, 64] {
            let mut c = orig_c.clone();
            dgemm_blocked(n, bs, 1.3, &a, &b, 0.7, &mut c);
            assert_close(&c, &reference, 1e-9);
        }
    }

    #[test]
    fn dsyrk_matches_explicit_a_at() {
        let n = 15;
        let a = rand_mat(n, 5);
        // Compute A·Aᵀ via dgemm with an explicit transpose.
        let mut t = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                t[at(n, j, i)] = a[at(n, i, j)];
            }
        }
        let mut expect = vec![0.0; n * n];
        dgemm_naive(n, 2.0, &a, &t, 0.0, &mut expect);
        let mut c = vec![0.0; n * n];
        dsyrk(n, 2.0, &a, 0.0, &mut c);
        assert_close(&c, &expect, 1e-9);
        // Result is symmetric.
        for i in 0..n {
            for j in 0..n {
                assert!((c[at(n, i, j)] - c[at(n, j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dtrmm_matches_explicit_multiply() {
        let n = 11;
        let u = upper_mat(n, 6);
        let b0 = rand_mat(n, 7);
        let mut expect = vec![0.0; n * n];
        dgemm_naive(n, 1.0, &b0, &u, 0.0, &mut expect);
        let mut b = b0;
        dtrmm_ru(n, &mut b, &u);
        assert_close(&b, &expect, 1e-9);
    }

    #[test]
    fn dtrsm_inverts_dtrmm() {
        let n = 19;
        let u = upper_mat(n, 8);
        let original = rand_mat(n, 9);
        let mut b = original.clone();
        dtrmm_ru(n, &mut b, &u); // B = X·U
        dtrsm_ru(n, &mut b, &u); // solve X back
        assert_close(&b, &original, 1e-7);
    }

    #[test]
    fn traced_dgemm_matches_plain() {
        let n = 12;
        let rec = TraceRecorder::new();
        let sum = dgemm_traced(n, &rec);
        // Recompute plainly with the same init pattern.
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n * n];
        for i in 0..n * n {
            a[i] = (i % 7) as f64 * 0.25;
            b[i] = (i % 5) as f64 * 0.5;
        }
        let mut c = vec![0.0; n * n];
        dgemm_naive(n, 1.0, &a, &b, 0.0, &mut c);
        let expect: f64 = c.iter().sum();
        assert!((sum - expect).abs() < 1e-9);
    }

    #[test]
    fn traced_dgemm_record_counts() {
        let n = 6;
        let rec = TraceRecorder::new();
        dgemm_traced(n, &rec);
        let t = rec.take();
        // Per (i,j,k): 2 loads; per (i,j): 1 store.
        assert_eq!(t.memory_ops(), 2 * n * n * n + n * n);
        use crate::trace::TraceRecord;
        let count = |id: u32| {
            t.records()
                .iter()
                .filter(|r| matches!(r, TraceRecord::LoopBranch(x) if *x == id))
                .count()
        };
        assert_eq!(count(0), n);
        assert_eq!(count(1), n * n);
        assert_eq!(count(2), n * n * n);
    }
}
