//! The twelve BLAS kernels of Table 2, implemented for real.
//!
//! * [`level1`] — daxpy, dcopy, dscal, dswap (vector-vector, low reuse)
//! * [`level2`] — dgemv (N/T), dtrmv, dtrsv (matrix-vector, medium reuse)
//! * [`level3`] — dgemm, dsyrk, dtrmm(ru), dtrsm(ru) (matrix-matrix,
//!   high reuse; blocked variants keep the working set LLC-resident,
//!   exactly as the paper tunes its kernels)
//!
//! All matrices are dense, row-major, `n × n`, `f64`. The plain-slice
//! functions are the reference implementations; [`level3::dgemm_traced`]
//! additionally replays dgemm on instrumented buffers, emitting the
//! load/store/loop-branch trace the profiler consumes (§2.4 and the
//! Figure 11 granularity study).

pub mod level1;
pub mod level2;
pub mod level3;

/// Row-major index helper.
#[inline]
pub(crate) fn at(n: usize, i: usize, j: usize) -> usize {
    i * n + j
}

/// Deterministic pseudo-random matrix/vector fill for tests and traces.
pub fn fill_test_data(data: &mut [f64], seed: u64) {
    let mut rng = rda_simcore::SplitMix64::new(seed);
    for x in data.iter_mut() {
        *x = rng.next_f64() * 2.0 - 1.0;
    }
}
