//! BLAS level-1 kernels: vector-vector operations with minimal reuse.
//!
//! These are the BLAS-1 workload of Table 2 (daxpy, dcopy, dscal,
//! dswap): each element is touched O(1) times, so the cache sees a pure
//! stream — the class of code the paper's scheduler should leave to the
//! default policy.

use crate::trace::{AddressSpace, TraceRecorder};

/// `y ← α·x + y`.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y ← x`.
pub fn dcopy(x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    y.copy_from_slice(x);
}

/// `x ← α·x`.
pub fn dscal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// `x ↔ y`.
pub fn dswap(x: &mut [f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(xi, yi);
    }
}

/// Traced daxpy on instrumented buffers: one loop (id 0), one load of
/// `x[i]`, one load + one store of `y[i]` per iteration.
pub fn daxpy_traced(n: usize, alpha: f64, rec: &TraceRecorder) -> f64 {
    let mut space = AddressSpace::new();
    let mut x = space.alloc(n, rec);
    let mut y = space.alloc(n, rec);
    for i in 0..n {
        x.init(i, i as f64 * 0.5);
        y.init(i, 1.0);
    }
    for i in 0..n {
        let v = y.get(i) + alpha * x.get(i);
        y.set(i, v);
        rec.loop_branch(0);
    }
    (0..n).map(|i| y.peek(i)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecord;

    #[test]
    fn daxpy_matches_definition() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn dcopy_copies() {
        let x = vec![5.0, 6.0];
        let mut y = vec![0.0, 0.0];
        dcopy(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn dscal_scales() {
        let mut x = vec![1.0, -2.0, 4.0];
        dscal(-0.5, &mut x);
        assert_eq!(x, vec![-0.5, 1.0, -2.0]);
    }

    #[test]
    fn dswap_swaps() {
        let mut x = vec![1.0, 2.0];
        let mut y = vec![3.0, 4.0];
        dswap(&mut x, &mut y);
        assert_eq!(x, vec![3.0, 4.0]);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn traced_daxpy_result_matches_plain() {
        let rec = TraceRecorder::new();
        let n = 64;
        let traced_sum = daxpy_traced(n, 2.0, &rec);
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let mut y = vec![1.0; n];
        daxpy(2.0, &x, &mut y);
        let plain_sum: f64 = y.iter().sum();
        assert!((traced_sum - plain_sum).abs() < 1e-9);
    }

    #[test]
    fn traced_daxpy_emits_three_memops_per_element() {
        let rec = TraceRecorder::new();
        let n = 32;
        daxpy_traced(n, 1.0, &rec);
        let t = rec.take();
        assert_eq!(t.memory_ops(), 3 * n);
        let branches = t
            .records()
            .iter()
            .filter(|r| matches!(r, TraceRecord::LoopBranch(0)))
            .count();
        assert_eq!(branches, n);
    }
}
