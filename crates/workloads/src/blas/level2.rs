//! BLAS level-2 kernels: matrix-vector operations with medium reuse.
//!
//! The BLAS-2 workload of Table 2 (dgemv-N, dgemv-T, dtrmv, dtrsv):
//! the vector operands are reused across matrix rows, giving the
//! medium temporal-locality class.

use super::at;

/// `y ← α·A·x + β·y` with row-major `A` (`n × n`).
pub fn dgemv_n(n: usize, alpha: f64, a: &[f64], x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    for i in 0..n {
        let mut acc = 0.0;
        for j in 0..n {
            acc += a[at(n, i, j)] * x[j];
        }
        y[i] = alpha * acc + beta * y[i];
    }
}

/// `y ← α·Aᵀ·x + β·y` with row-major `A` (`n × n`).
pub fn dgemv_t(n: usize, alpha: f64, a: &[f64], x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    for yi in y.iter_mut() {
        *yi *= beta;
    }
    for i in 0..n {
        let xi = alpha * x[i];
        for j in 0..n {
            y[j] += a[at(n, i, j)] * xi;
        }
    }
}

/// `x ← U·x` with `U` the upper triangle (incl. diagonal) of row-major
/// `a`.
pub fn dtrmv_upper(n: usize, a: &[f64], x: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(x.len(), n);
    for i in 0..n {
        let mut acc = 0.0;
        for j in i..n {
            acc += a[at(n, i, j)] * x[j];
        }
        x[i] = acc;
    }
}

/// Solve `U·x = b` in place (`x` enters holding `b`), `U` upper
/// triangular with non-zero diagonal.
pub fn dtrsv_upper(n: usize, a: &[f64], x: &mut [f64]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(x.len(), n);
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= a[at(n, i, j)] * x[j];
        }
        let d = a[at(n, i, i)];
        assert!(d != 0.0, "singular triangular matrix");
        x[i] = acc / d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::fill_test_data;

    fn upper(n: usize, seed: u64) -> Vec<f64> {
        let mut a = vec![0.0; n * n];
        fill_test_data(&mut a, seed);
        for i in 0..n {
            for j in 0..i {
                a[at(n, i, j)] = 0.0;
            }
            a[at(n, i, i)] = 2.0 + a[at(n, i, i)].abs(); // well-conditioned
        }
        a
    }

    #[test]
    fn dgemv_n_small_case() {
        // A = [[1,2],[3,4]], x = [1,1] → A·x = [3,7].
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let x = vec![1.0, 1.0];
        let mut y = vec![100.0, 100.0];
        dgemv_n(2, 1.0, &a, &x, 0.0, &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn dgemv_beta_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = vec![2.0, 3.0];
        let mut y = vec![10.0, 10.0];
        dgemv_n(2, 2.0, &a, &x, 0.5, &mut y);
        assert_eq!(y, vec![9.0, 11.0]); // 2*x + 0.5*y
    }

    #[test]
    fn dgemv_t_equals_n_on_transpose() {
        let n = 17;
        let mut a = vec![0.0; n * n];
        fill_test_data(&mut a, 1);
        let mut x = vec![0.0; n];
        fill_test_data(&mut x, 2);
        // Build Aᵀ explicitly.
        let mut at_mat = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                at_mat[at(n, j, i)] = a[at(n, i, j)];
            }
        }
        let mut y1 = vec![1.0; n];
        let mut y2 = vec![1.0; n];
        dgemv_t(n, 1.5, &a, &x, 0.25, &mut y1);
        dgemv_n(n, 1.5, &at_mat, &x, 0.25, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn dtrmv_matches_full_gemv_on_triangular_input() {
        let n = 13;
        let a = upper(n, 3);
        let mut x = vec![0.0; n];
        fill_test_data(&mut x, 4);
        let mut expect = vec![0.0; n];
        dgemv_n(n, 1.0, &a, &x, 0.0, &mut expect);
        dtrmv_upper(n, &a, &mut x);
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn dtrsv_inverts_dtrmv() {
        let n = 29;
        let a = upper(n, 5);
        let mut x = vec![0.0; n];
        fill_test_data(&mut x, 6);
        let original = x.clone();
        dtrmv_upper(n, &a, &mut x); // x = U·x0
        dtrsv_upper(n, &a, &mut x); // solve back
        for (u, v) in x.iter().zip(&original) {
            assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn dtrsv_rejects_zero_diagonal() {
        let mut a = upper(3, 7);
        a[at(3, 1, 1)] = 0.0;
        let mut x = vec![1.0; 3];
        dtrsv_upper(3, &a, &mut x);
    }
}
