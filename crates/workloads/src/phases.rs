//! The phase/program vocabulary the full-system simulator executes.
//!
//! A **process program** is a sequence of **phases**. Each phase gives
//! every thread of the process a quota of instructions with a common
//! access profile; phase boundaries are barriers (all threads finish a
//! phase before any enters the next — the SPLASH-2 timestep structure).
//! A phase may be bracketed by a **progress period**: the process calls
//! `pp_begin` with the phase's demand before the work and `pp_end`
//! after it. Untracked phases run directly on the default scheduler —
//! the paper's rule for regions with blocking synchronisation (§3.4).

use rda_core::{PpDemand, SiteId};
use rda_machine::{AccessProfile, ReuseLevel};

/// One phase of a process program.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Human-readable phase label (e.g. `"dgemm"`, `"intraf"`).
    pub name: String,
    /// Instructions each thread executes in this phase.
    pub instr_per_thread: u64,
    /// Memory behaviour of the phase.
    pub profile: AccessProfile,
    /// Progress-period declaration, if the phase is tracked.
    pub pp: Option<PpPhase>,
}

/// The progress-period declaration of a tracked phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpPhase {
    /// Static site id of the `pp_begin`/`pp_end` pair.
    pub site: SiteId,
    /// The declared demand.
    pub demand: PpDemand,
}

impl Phase {
    /// A tracked phase whose declared demand matches its true profile
    /// (the paper's instrumented benchmarks declare accurately).
    pub fn tracked(
        name: impl Into<String>,
        instr_per_thread: u64,
        ws_bytes: u64,
        reuse: ReuseLevel,
        site: SiteId,
    ) -> Self {
        Phase {
            name: name.into(),
            instr_per_thread,
            profile: AccessProfile::typical(ws_bytes, reuse),
            pp: Some(PpPhase {
                site,
                demand: PpDemand::llc(ws_bytes, reuse),
            }),
        }
    }

    /// An untracked phase (scheduled by the default policy only).
    pub fn untracked(
        name: impl Into<String>,
        instr_per_thread: u64,
        ws_bytes: u64,
        reuse: ReuseLevel,
    ) -> Self {
        Phase {
            name: name.into(),
            instr_per_thread,
            profile: AccessProfile::typical(ws_bytes, reuse),
            pp: None,
        }
    }

    /// FLOPs one thread retires in this phase.
    pub fn flops_per_thread(&self) -> u64 {
        (self.instr_per_thread as f64 * self.profile.flop_frac) as u64
    }
}

/// A process: its thread count and phase sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessProgram {
    /// Number of threads the process spawns.
    pub threads: usize,
    /// The phases, executed in order with barrier semantics.
    pub phases: Vec<Phase>,
}

impl ProcessProgram {
    /// Total instructions across all threads and phases.
    pub fn total_instructions(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.instr_per_thread * self.threads as u64)
            .sum()
    }

    /// Total FLOPs across all threads and phases.
    pub fn total_flops(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.flops_per_thread() * self.threads as u64)
            .sum()
    }
}

/// A complete workload: a named set of processes (one Table 2 row).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name as the figures label it (e.g. `"BLAS-3"`).
    pub name: String,
    /// The processes launched together.
    pub processes: Vec<ProcessProgram>,
}

impl WorkloadSpec {
    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// Total thread count.
    pub fn num_threads(&self) -> usize {
        self.processes.iter().map(|p| p.threads).sum()
    }

    /// Total FLOPs the workload retires.
    pub fn total_flops(&self) -> u64 {
        self.processes.iter().map(ProcessProgram::total_flops).sum()
    }

    /// Distinct working-set sizes declared by tracked phases, in first
    /// appearance order (Table 2's "Work-set sizes" column).
    pub fn declared_working_sets(&self) -> Vec<u64> {
        let mut seen = Vec::new();
        for proc in &self.processes {
            for ph in &proc.phases {
                if let Some(pp) = &ph.pp {
                    if !seen.contains(&pp.demand.amount) {
                        seen.push(pp.demand.amount);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::mb;

    fn program() -> ProcessProgram {
        ProcessProgram {
            threads: 2,
            phases: vec![
                Phase::tracked("a", 1000, mb(1.0), ReuseLevel::High, SiteId(0)),
                Phase::untracked("sync", 10, mb(0.1), ReuseLevel::Low),
                Phase::tracked("b", 2000, mb(2.0), ReuseLevel::Medium, SiteId(1)),
            ],
        }
    }

    #[test]
    fn totals_account_threads_and_phases() {
        let p = program();
        assert_eq!(p.total_instructions(), 2 * (1000 + 10 + 2000));
        let expected_flops = 2 * (p.phases[0].flops_per_thread()
            + p.phases[1].flops_per_thread()
            + p.phases[2].flops_per_thread());
        assert_eq!(p.total_flops(), expected_flops);
    }

    #[test]
    fn tracked_phase_declares_its_profile() {
        let ph = Phase::tracked("x", 100, mb(3.0), ReuseLevel::High, SiteId(4));
        let pp = ph.pp.unwrap();
        assert_eq!(pp.demand.amount, mb(3.0));
        assert_eq!(pp.site, SiteId(4));
        assert_eq!(ph.profile.ws_bytes, mb(3.0));
    }

    #[test]
    fn untracked_phase_has_no_pp() {
        assert!(Phase::untracked("s", 1, 1, ReuseLevel::Low).pp.is_none());
    }

    #[test]
    fn workload_aggregates() {
        let w = WorkloadSpec {
            name: "test".into(),
            processes: vec![program(), program(), program()],
        };
        assert_eq!(w.num_processes(), 3);
        assert_eq!(w.num_threads(), 6);
        assert_eq!(w.declared_working_sets(), vec![mb(1.0), mb(2.0)]);
    }
}
