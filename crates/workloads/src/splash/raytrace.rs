//! Raytrace: a sphere-scene ray caster.
//!
//! SPLASH-2's `raytrace` renders a scene by shooting a ray per pixel
//! through shared scene geometry; every ray re-reads the geometry, so
//! the scene is a *high-reuse* working set (Table 2 lists 5.1/5.2 MB).
//! We implement the same access pattern: a flat sphere list (no BVH —
//! every ray tests every sphere, maximising geometry reuse exactly like
//! the paper's high-reuse classification), Lambertian shading, one
//! bounce of shadow rays.

#![allow(clippy::needless_range_loop)] // ray loops index geometry and scene in parallel

use crate::trace::{AddressSpace, TraceRecorder};
use rda_simcore::Xoshiro256;

/// A scene sphere.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    /// Centre.
    pub c: [f64; 3],
    /// Radius.
    pub r: f64,
    /// Diffuse albedo.
    pub albedo: f64,
}

/// Render parameters.
#[derive(Debug, Clone, Copy)]
pub struct RaytraceParams {
    /// Image is `size × size` pixels.
    pub size: usize,
    /// Number of scene spheres.
    pub spheres: usize,
    /// RNG seed for scene generation.
    pub seed: u64,
}

impl RaytraceParams {
    /// A small, fast configuration for tests.
    pub fn test_small() -> Self {
        RaytraceParams {
            size: 32,
            spheres: 40,
            seed: 9,
        }
    }
}

/// Generate a deterministic random scene in the unit cube in front of
/// the camera.
pub fn make_scene(p: &RaytraceParams) -> Vec<Sphere> {
    let mut rng = Xoshiro256::new(p.seed);
    (0..p.spheres)
        .map(|_| Sphere {
            c: [
                rng.next_range_f64(-1.0, 1.0),
                rng.next_range_f64(-1.0, 1.0),
                rng.next_range_f64(2.0, 4.0),
            ],
            r: rng.next_range_f64(0.05, 0.3),
            albedo: rng.next_range_f64(0.2, 1.0),
        })
        .collect()
}

fn dot(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// Ray-sphere intersection: nearest positive `t`, if any.
fn hit(s: &Sphere, origin: &[f64; 3], dir: &[f64; 3]) -> Option<f64> {
    let oc = [origin[0] - s.c[0], origin[1] - s.c[1], origin[2] - s.c[2]];
    let b = dot(&oc, dir);
    let c = dot(&oc, &oc) - s.r * s.r;
    let disc = b * b - c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t = -b - sq;
    if t > 1e-6 {
        Some(t)
    } else {
        let t2 = -b + sq;
        (t2 > 1e-6).then_some(t2)
    }
}

const LIGHT: [f64; 3] = [0.577, 0.577, -0.577];

/// Shade one primary ray against the scene.
fn trace_ray(scene: &[Sphere], origin: &[f64; 3], dir: &[f64; 3]) -> f64 {
    let mut best: Option<(f64, usize)> = None;
    for (k, s) in scene.iter().enumerate() {
        if let Some(t) = hit(s, origin, dir) {
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, k));
            }
        }
    }
    let Some((t, k)) = best else {
        return 0.05; // background
    };
    let s = &scene[k];
    let p = [
        origin[0] + dir[0] * t,
        origin[1] + dir[1] * t,
        origin[2] + dir[2] * t,
    ];
    let mut n = [p[0] - s.c[0], p[1] - s.c[1], p[2] - s.c[2]];
    let inv = 1.0 / s.r;
    for x in n.iter_mut() {
        *x *= inv;
    }
    let ndotl = dot(&n, &LIGHT).max(0.0);
    // Shadow ray: any occluder toward the light?
    let shadow_origin = [
        p[0] + n[0] * 1e-4,
        p[1] + n[1] * 1e-4,
        p[2] + n[2] * 1e-4,
    ];
    let occluded = scene
        .iter()
        .any(|o| hit(o, &shadow_origin, &LIGHT).is_some());
    let direct = if occluded { 0.0 } else { ndotl };
    0.05 + s.albedo * direct
}

/// Render the image; returns the mean pixel intensity (checksum).
pub fn render(p: &RaytraceParams) -> f64 {
    let scene = make_scene(p);
    let mut acc = 0.0;
    let origin = [0.0, 0.0, 0.0];
    for py in 0..p.size {
        for px in 0..p.size {
            let x = (px as f64 + 0.5) / p.size as f64 * 2.0 - 1.0;
            let y = (py as f64 + 0.5) / p.size as f64 * 2.0 - 1.0;
            let mut dir = [x, y, 1.5];
            let norm = dot(&dir, &dir).sqrt().recip();
            for d in dir.iter_mut() {
                *d *= norm;
            }
            acc += trace_ray(&scene, &origin, &dir);
        }
    }
    acc / (p.size * p.size) as f64
}

/// Loop ids emitted by the traced renderer.
pub mod loops {
    /// Per-scanline loop.
    pub const SCANLINE: u32 = 30;
}

/// Traced render: scene spheres live in an instrumented buffer
/// (4 doubles each: centre + radius; albedo folded into radius sign
/// handling is avoided by a parallel untraced albedo list — geometry is
/// the hot, reused data). Returns the mean intensity.
pub fn render_traced(p: &RaytraceParams, rec: &TraceRecorder) -> f64 {
    let scene = make_scene(p);
    let mut space = AddressSpace::new();
    let mut geom = space.alloc(p.spheres * 4, rec);
    for (k, s) in scene.iter().enumerate() {
        geom.init(k * 4, s.c[0]);
        geom.init(k * 4 + 1, s.c[1]);
        geom.init(k * 4 + 2, s.c[2]);
        geom.init(k * 4 + 3, s.r);
    }
    let origin = [0.0, 0.0, 0.0];
    let mut acc = 0.0;
    for py in 0..p.size {
        for px in 0..p.size {
            let x = (px as f64 + 0.5) / p.size as f64 * 2.0 - 1.0;
            let y = (py as f64 + 0.5) / p.size as f64 * 2.0 - 1.0;
            let mut dir = [x, y, 1.5];
            let norm = dot(&dir, &dir).sqrt().recip();
            for d in dir.iter_mut() {
                *d *= norm;
            }
            // Nearest hit over the traced geometry.
            let mut best: Option<(f64, usize)> = None;
            for k in 0..p.spheres {
                let s = Sphere {
                    c: [geom.get(k * 4), geom.get(k * 4 + 1), geom.get(k * 4 + 2)],
                    r: geom.get(k * 4 + 3),
                    albedo: scene[k].albedo,
                };
                if let Some(t) = hit(&s, &origin, &dir) {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, k));
                    }
                }
            }
            acc += match best {
                None => 0.05,
                Some((t, k)) => {
                    let s = &scene[k];
                    let pnt = [dir[0] * t, dir[1] * t, dir[2] * t];
                    let mut n = [pnt[0] - s.c[0], pnt[1] - s.c[1], pnt[2] - s.c[2]];
                    let inv = 1.0 / s.r;
                    for v in n.iter_mut() {
                        *v *= inv;
                    }
                    0.05 + s.albedo * dot(&n, &LIGHT).max(0.0)
                }
            };
        }
        rec.loop_branch(loops::SCANLINE);
    }
    acc / (p.size * p.size) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_is_not_flat() {
        // A scene with spheres must produce more than background.
        let mean = render(&RaytraceParams::test_small());
        assert!(mean > 0.051, "mean {mean}");
        assert!(mean < 1.0);
    }

    #[test]
    fn empty_scene_is_pure_background() {
        let mean = render(&RaytraceParams {
            spheres: 0,
            ..RaytraceParams::test_small()
        });
        assert!((mean - 0.05).abs() < 1e-12);
    }

    #[test]
    fn render_is_deterministic() {
        let p = RaytraceParams::test_small();
        assert_eq!(render(&p), render(&p));
    }

    #[test]
    fn sphere_directly_ahead_is_hit() {
        let s = Sphere {
            c: [0.0, 0.0, 3.0],
            r: 0.5,
            albedo: 1.0,
        };
        let t = hit(&s, &[0.0, 0.0, 0.0], &[0.0, 0.0, 1.0]).unwrap();
        assert!((t - 2.5).abs() < 1e-12);
        assert!(hit(&s, &[0.0, 0.0, 0.0], &[0.0, 0.0, -1.0]).is_none());
    }

    #[test]
    fn traced_render_reuses_geometry_heavily() {
        let p = RaytraceParams::test_small();
        let rec = TraceRecorder::new();
        render_traced(&p, &rec);
        let t = rec.take();
        let ops = t.memory_ops();
        let distinct: std::collections::HashSet<u64> = t
            .records()
            .iter()
            .filter_map(|r| r.address())
            .collect();
        // Reuse ratio = accesses per distinct address: rays × spheres
        // scans make this large — the "high reuse" classification.
        let reuse = ops as f64 / distinct.len() as f64;
        assert!(reuse > 100.0, "reuse ratio only {reuse}");
    }

    #[test]
    fn traced_mean_close_to_plain() {
        // The traced renderer skips shadow rays, so the images differ,
        // but both must see the same geometry (non-background content).
        let p = RaytraceParams::test_small();
        let rec = TraceRecorder::new();
        let traced = render_traced(&p, &rec);
        assert!(traced > 0.051);
    }
}
