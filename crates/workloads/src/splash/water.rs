//! Water: molecular dynamics on water-like point molecules.
//!
//! Two variants, as in SPLASH-2:
//!
//! * **n-squared** — every pair of molecules within a cutoff interacts
//!   (`O(N²)` scans). Each molecule's state is re-read `N−1` times per
//!   timestep: *high* temporal reuse, the paper's flagship beneficiary.
//! * **spatial** — molecules are binned into cells and only neighbour
//!   cells interact: each molecule is touched a constant number of
//!   times per step, *low* reuse.
//!
//! The per-molecule state is 36 doubles (position/velocity/force and
//! two predictor-corrector derivative triples for three atoms' worth of
//! state — SPLASH water carries similar per-molecule arrays), i.e.
//! 288 bytes: 8 000 molecules ≈ 2.3 MB of hot data, in line with the
//! Table 2 working sets.
//!
//! Timestep phases (each a progress-period candidate): `predict` →
//! `interf` (forces) → `correct`. The traced variant brackets each with
//! a distinct loop id so the profiler can find them.

#![allow(clippy::needless_range_loop)] // forces (i, j, d) loops that index several arrays at once

use crate::trace::{AddressSpace, TraceRecorder, TracedBuf};
use rda_simcore::Xoshiro256;

/// Doubles of state per molecule.
pub const DOUBLES_PER_MOL: usize = 36;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WaterParams {
    /// Number of molecules.
    pub molecules: usize,
    /// Timesteps to integrate.
    pub steps: usize,
    /// Interaction cutoff radius (in box units; the box is 1³).
    pub cutoff: f64,
    /// RNG seed for the initial configuration.
    pub seed: u64,
}

impl WaterParams {
    /// A small, fast configuration for tests.
    pub fn test_small() -> Self {
        WaterParams {
            molecules: 64,
            steps: 2,
            cutoff: 0.5,
            seed: 42,
        }
    }
}

/// Plain (untraced) state: structure-of-arrays for positions,
/// velocities, forces, and auxiliary derivative state.
pub struct WaterSim {
    n: usize,
    cutoff2: f64,
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    force: Vec<[f64; 3]>,
    /// Auxiliary per-molecule state (fills out the 288-byte record).
    aux: Vec<[f64; 27]>,
}

const DT: f64 = 1e-3;

impl WaterSim {
    /// Initialise a random configuration.
    pub fn new(p: &WaterParams) -> Self {
        let mut rng = Xoshiro256::new(p.seed);
        let n = p.molecules;
        let pos = (0..n)
            .map(|_| [rng.next_f64(), rng.next_f64(), rng.next_f64()])
            .collect();
        let vel = (0..n)
            .map(|_| {
                [
                    rng.next_gaussian(0.0, 0.05),
                    rng.next_gaussian(0.0, 0.05),
                    rng.next_gaussian(0.0, 0.05),
                ]
            })
            .collect();
        WaterSim {
            n,
            cutoff2: p.cutoff * p.cutoff,
            pos,
            vel,
            force: vec![[0.0; 3]; n],
            aux: vec![[0.0; 27]; n],
        }
    }

    fn predict(&mut self) {
        for i in 0..self.n {
            for d in 0..3 {
                self.pos[i][d] += self.vel[i][d] * DT;
                // Periodic box.
                self.pos[i][d] -= self.pos[i][d].floor();
            }
        }
    }

    /// Lennard-Jones-flavoured pair force within the cutoff. The
    /// magnitude is capped symmetrically (same cap for both partners),
    /// which preserves Newton's third law while keeping the integrator
    /// stable at close approach.
    fn pair_force(dr: &[f64; 3], r2: f64) -> [f64; 3] {
        let inv = 1.0 / (r2 + 1e-4);
        let inv3 = inv * inv * inv;
        let mag = (24.0 * inv3 * (2.0 * inv3 - 1.0) * inv).clamp(-1e3, 1e3);
        [dr[0] * mag, dr[1] * mag, dr[2] * mag]
    }

    fn min_image(a: f64, b: f64) -> f64 {
        let mut d = a - b;
        if d > 0.5 {
            d -= 1.0;
        } else if d < -0.5 {
            d += 1.0;
        }
        d
    }

    fn interf_nsquared(&mut self) {
        for f in self.force.iter_mut() {
            *f = [0.0; 3];
        }
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let dr = [
                    Self::min_image(self.pos[i][0], self.pos[j][0]),
                    Self::min_image(self.pos[i][1], self.pos[j][1]),
                    Self::min_image(self.pos[i][2], self.pos[j][2]),
                ];
                let r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
                if r2 < self.cutoff2 {
                    let f = Self::pair_force(&dr, r2);
                    for d in 0..3 {
                        self.force[i][d] += f[d];
                        self.force[j][d] -= f[d];
                    }
                }
            }
        }
    }

    fn correct(&mut self) {
        for i in 0..self.n {
            for d in 0..3 {
                self.vel[i][d] += self.force[i][d] * DT;
                // Keep the system tame for long runs.
                self.vel[i][d] = self.vel[i][d].clamp(-1.0, 1.0);
                self.aux[i][d % 27] += self.force[i][d].abs() * 1e-6;
            }
        }
    }

    /// Run n-squared dynamics for `steps`; returns total kinetic energy
    /// (a stable checksum).
    pub fn run_nsquared(&mut self, steps: usize) -> f64 {
        for _ in 0..steps {
            self.predict();
            self.interf_nsquared();
            self.correct();
        }
        self.kinetic_energy()
    }

    /// Run spatial (cell-list) dynamics for `steps`.
    pub fn run_spatial(&mut self, steps: usize, cells_per_dim: usize) -> f64 {
        assert!(cells_per_dim >= 1);
        for _ in 0..steps {
            self.predict();
            self.interf_spatial(cells_per_dim);
            self.correct();
        }
        self.kinetic_energy()
    }

    fn interf_spatial(&mut self, m: usize) {
        for f in self.force.iter_mut() {
            *f = [0.0; 3];
        }
        // Bin molecules into an m³ grid.
        let cell_of = |p: &[f64; 3]| {
            let c = |x: f64| (((x * m as f64) as usize).min(m - 1)) as i64;
            (c(p[0]), c(p[1]), c(p[2]))
        };
        // BTreeMap so the force accumulation below visits cells in a
        // fixed order — f64 addition is not associative, and the sweep
        // runner's bit-identical-digest guarantee needs a fixed sum
        // order.
        let mut cells: std::collections::BTreeMap<(i64, i64, i64), Vec<usize>> =
            std::collections::BTreeMap::new();
        for i in 0..self.n {
            cells.entry(cell_of(&self.pos[i])).or_default().push(i);
        }
        let wrap = |x: i64| ((x % m as i64) + m as i64) % m as i64;
        for (&(cx, cy, cz), members) in &cells {
            for dz in -1..=1 {
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        let key = (wrap(cx + dx), wrap(cy + dy), wrap(cz + dz));
                        let Some(neigh) = cells.get(&key) else { continue };
                        for &i in members {
                            for &j in neigh {
                                if j <= i {
                                    continue;
                                }
                                let dr = [
                                    Self::min_image(self.pos[i][0], self.pos[j][0]),
                                    Self::min_image(self.pos[i][1], self.pos[j][1]),
                                    Self::min_image(self.pos[i][2], self.pos[j][2]),
                                ];
                                let r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
                                if r2 < self.cutoff2 {
                                    let f = Self::pair_force(&dr, r2);
                                    for d in 0..3 {
                                        self.force[i][d] += f[d];
                                        self.force[j][d] -= f[d];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Total kinetic energy `Σ ½|v|²`.
    pub fn kinetic_energy(&self) -> f64 {
        self.vel
            .iter()
            .map(|v| 0.5 * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }

    /// Number of molecules.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the system is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Loop ids emitted by the traced run (profiler anchors).
pub mod loops {
    /// Predict phase loop.
    pub const PREDICT: u32 = 10;
    /// Pairwise force phase outer loop.
    pub const INTERF: u32 = 11;
    /// Correct phase loop.
    pub const CORRECT: u32 = 12;
}

/// Traced n-squared water: one timestep over `molecules` molecules on
/// instrumented buffers (positions + velocities + forces + aux live in
/// one 36-doubles-per-molecule buffer). Returns a checksum.
///
/// The trace contains the three phase loops with distinct ids, so the
/// profiler's window detector plus loop mapper can recover the phase
/// structure (§2.4, Figure 12).
pub fn run_nsquared_traced(molecules: usize, cutoff: f64, rec: &TraceRecorder) -> f64 {
    let mut space = AddressSpace::new();
    let mut state = space.alloc(molecules * DOUBLES_PER_MOL, rec);
    // Layout per molecule: [0..3) pos, [3..6) vel, [6..9) force,
    // [9..36) aux.
    let mut rng = Xoshiro256::new(7);
    for i in 0..molecules {
        let b = i * DOUBLES_PER_MOL;
        for d in 0..3 {
            state.init(b + d, rng.next_f64());
            state.init(b + 3 + d, rng.next_gaussian(0.0, 0.05));
        }
    }
    let cutoff2 = cutoff * cutoff;

    // predict
    for i in 0..molecules {
        let b = i * DOUBLES_PER_MOL;
        for d in 0..3 {
            let p = state.get(b + d) + state.get(b + 3 + d) * DT;
            state.set(b + d, p - p.floor());
        }
        rec.loop_branch(loops::PREDICT);
    }
    // interf (n²)
    for i in 0..molecules {
        let bi = i * DOUBLES_PER_MOL;
        let pi = [state.get(bi), state.get(bi + 1), state.get(bi + 2)];
        for j in (i + 1)..molecules {
            let bj = j * DOUBLES_PER_MOL;
            let pj = [state.get(bj), state.get(bj + 1), state.get(bj + 2)];
            let dr = [
                WaterSim::min_image(pi[0], pj[0]),
                WaterSim::min_image(pi[1], pj[1]),
                WaterSim::min_image(pi[2], pj[2]),
            ];
            let r2 = dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2];
            if r2 < cutoff2 {
                let f = WaterSim::pair_force(&dr, r2);
                for d in 0..3 {
                    let fi = state.get(bi + 6 + d) + f[d];
                    state.set(bi + 6 + d, fi);
                    let fj = state.get(bj + 6 + d) - f[d];
                    state.set(bj + 6 + d, fj);
                }
            }
        }
        rec.loop_branch(loops::INTERF);
    }
    // correct
    let mut checksum = 0.0;
    for i in 0..molecules {
        let b = i * DOUBLES_PER_MOL;
        for d in 0..3 {
            let v = (state.get(b + 3 + d) + state.get(b + 6 + d) * DT).clamp(-1.0, 1.0);
            state.set(b + 3 + d, v);
            checksum += 0.5 * v * v;
        }
        rec.loop_branch(loops::CORRECT);
    }
    let _ = TracedBuf::len(&state);
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forces_balance_by_newtons_third_law() {
        let mut sim = WaterSim::new(&WaterParams {
            molecules: 50,
            steps: 0,
            cutoff: 0.6,
            seed: 1,
        });
        sim.interf_nsquared();
        let f: [f64; 3] = sim.force.iter().fold([0.0; 3], |mut acc, v| {
            for d in 0..3 {
                acc[d] += v[d];
            }
            acc
        });
        let scale: f64 = sim
            .force
            .iter()
            .map(|v| v[0].abs() + v[1].abs() + v[2].abs())
            .sum::<f64>()
            .max(1.0);
        for d in 0..3 {
            assert!(
                f[d].abs() / scale < 1e-12,
                "net force component {d} = {} (scale {scale})",
                f[d]
            );
        }
    }

    #[test]
    fn positions_stay_in_the_periodic_box() {
        let mut sim = WaterSim::new(&WaterParams::test_small());
        sim.run_nsquared(3);
        for p in &sim.pos {
            for d in 0..3 {
                assert!((0.0..1.0).contains(&p[d]));
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let p = WaterParams::test_small();
        let a = WaterSim::new(&p).run_nsquared(2);
        let b = WaterSim::new(&p).run_nsquared(2);
        assert_eq!(a, b);
    }

    #[test]
    fn spatial_approximates_nsquared_with_fine_cells() {
        // With cutoff <= 1/m, neighbour cells cover all interactions, so
        // spatial and n² give identical physics.
        let p = WaterParams {
            molecules: 80,
            steps: 2,
            cutoff: 0.24,
            seed: 3,
        };
        let e_n2 = WaterSim::new(&p).run_nsquared(p.steps);
        let e_sp = WaterSim::new(&p).run_spatial(p.steps, 4);
        assert!(
            (e_n2 - e_sp).abs() < 1e-9,
            "cell list diverged: {e_n2} vs {e_sp}"
        );
    }

    #[test]
    fn traced_run_emits_phase_loops_and_quadratic_interf() {
        let rec = TraceRecorder::new();
        let n = 24;
        run_nsquared_traced(n, 0.5, &rec);
        let t = rec.take();
        use crate::trace::TraceRecord;
        let count = |id: u32| {
            t.records()
                .iter()
                .filter(|r| matches!(r, TraceRecord::LoopBranch(x) if *x == id))
                .count()
        };
        assert_eq!(count(loops::PREDICT), n);
        assert_eq!(count(loops::INTERF), n);
        assert_eq!(count(loops::CORRECT), n);
        // The interf phase reads at least 3 position loads per pair.
        assert!(t.memory_ops() > 3 * n * (n - 1) / 2);
    }

    #[test]
    fn traced_footprint_scales_with_molecules() {
        // Distinct addresses touched should grow ~linearly in N — the
        // property Figure 12's WSS curves rest on.
        let distinct = |n: usize| {
            let rec = TraceRecorder::new();
            run_nsquared_traced(n, 0.5, &rec);
            let t = rec.take();
            let set: std::collections::HashSet<u64> = t
                .records()
                .iter()
                .filter_map(|r| r.address().map(|a| a / 64))
                .collect();
            set.len()
        };
        let d32 = distinct(32);
        let d64 = distinct(64);
        assert!(d64 > d32 + d32 / 2, "footprint didn't grow: {d32} → {d64}");
    }
}
