//! Ocean: red-black successive over-relaxation on a square grid.
//!
//! `ocean_cp` spends its time in multigrid relaxation sweeps over
//! several `n × n` fields. We implement the core relax/residual phases
//! on a single level: a red-black Gauss-Seidel (SOR) solver for
//! `∇²u = f` with Dirichlet boundaries. Phase structure per iteration:
//! `relax-red` → `relax-black` → `residual` — the `slave2`/`relax`
//! functions the paper's §6 discusses map onto exactly this kind of
//! phase sequence.

use crate::trace::{AddressSpace, TraceRecorder};

/// Solver parameters.
#[derive(Debug, Clone, Copy)]
pub struct OceanParams {
    /// Grid edge length (including boundary).
    pub n: usize,
    /// SOR over-relaxation factor (1.0 = Gauss-Seidel).
    pub omega: f64,
    /// Sweeps to run.
    pub iterations: usize,
}

impl OceanParams {
    /// A small, fast configuration for tests.
    pub fn test_small() -> Self {
        OceanParams {
            n: 34,
            omega: 1.5,
            iterations: 50,
        }
    }
}

/// The solver state: solution grid `u` and right-hand side `f`.
pub struct OceanSim {
    n: usize,
    omega: f64,
    u: Vec<f64>,
    f: Vec<f64>,
}

impl OceanSim {
    /// Initialise with zero interior, `sin`-bump RHS, and a hot west
    /// boundary (gives a non-trivial solution).
    pub fn new(p: &OceanParams) -> Self {
        let n = p.n;
        let mut u = vec![0.0; n * n];
        let mut f = vec![0.0; n * n];
        for i in 0..n {
            u[i * n] = 1.0; // west boundary
        }
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let x = i as f64 / n as f64;
                let y = j as f64 / n as f64;
                f[i * n + j] = (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin();
            }
        }
        OceanSim {
            n,
            omega: p.omega,
            u,
            f,
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        i * self.n + j
    }

    fn sweep_color(&mut self, color: usize) {
        let n = self.n;
        let h2 = 1.0 / ((n - 1) as f64 * (n - 1) as f64);
        for i in 1..n - 1 {
            let start = 1 + (i + color) % 2;
            let mut j = start;
            while j < n - 1 {
                let id = self.idx(i, j);
                let nb = self.u[self.idx(i - 1, j)]
                    + self.u[self.idx(i + 1, j)]
                    + self.u[self.idx(i, j - 1)]
                    + self.u[self.idx(i, j + 1)];
                let gs = 0.25 * (nb - h2 * self.f[id]);
                self.u[id] += self.omega * (gs - self.u[id]);
                j += 2;
            }
        }
    }

    /// L2 norm of the residual `∇²u − f` over the interior.
    pub fn residual(&self) -> f64 {
        let n = self.n;
        let inv_h2 = ((n - 1) as f64) * ((n - 1) as f64);
        let mut acc = 0.0;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let lap = (self.u[self.idx(i - 1, j)]
                    + self.u[self.idx(i + 1, j)]
                    + self.u[self.idx(i, j - 1)]
                    + self.u[self.idx(i, j + 1)]
                    - 4.0 * self.u[self.idx(i, j)])
                    * inv_h2;
                let r = lap - self.f[self.idx(i, j)];
                acc += r * r;
            }
        }
        acc.sqrt()
    }

    /// Run the configured sweeps; returns the final residual norm.
    pub fn run(&mut self, iterations: usize) -> f64 {
        for _ in 0..iterations {
            self.sweep_color(0); // red
            self.sweep_color(1); // black
        }
        self.residual()
    }

    /// Working-set bytes of the solver (two `n × n` f64 grids).
    pub fn working_set_bytes(&self) -> u64 {
        (2 * self.n * self.n * 8) as u64
    }
}

/// Loop ids emitted by the traced run.
pub mod loops {
    /// Red sweep row loop.
    pub const RED: u32 = 20;
    /// Black sweep row loop.
    pub const BLACK: u32 = 21;
    /// Residual row loop.
    pub const RESIDUAL: u32 = 22;
}

/// One traced red-black sweep + residual over an `n × n` grid on
/// instrumented buffers; returns the residual norm.
pub fn run_traced(n: usize, omega: f64, rec: &TraceRecorder) -> f64 {
    let mut space = AddressSpace::new();
    let mut u = space.alloc(n * n, rec);
    let mut f = space.alloc(n * n, rec);
    for i in 0..n {
        u.init(i * n, 1.0);
    }
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let x = i as f64 / n as f64;
            let y = j as f64 / n as f64;
            f.init(
                i * n + j,
                (std::f64::consts::PI * x).sin() * (std::f64::consts::PI * y).sin(),
            );
        }
    }
    let h2 = 1.0 / ((n - 1) as f64 * (n - 1) as f64);
    for (color, loop_id) in [(0usize, loops::RED), (1usize, loops::BLACK)] {
        for i in 1..n - 1 {
            let mut j = 1 + (i + color) % 2;
            while j < n - 1 {
                let id = i * n + j;
                let nb = u.get(id - n) + u.get(id + n) + u.get(id - 1) + u.get(id + 1);
                let gs = 0.25 * (nb - h2 * f.get(id));
                let cur = u.get(id);
                u.set(id, cur + omega * (gs - cur));
                j += 2;
            }
            rec.loop_branch(loop_id);
        }
    }
    let inv_h2 = ((n - 1) as f64) * ((n - 1) as f64);
    let mut acc = 0.0;
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let id = i * n + j;
            let lap = (u.get(id - n) + u.get(id + n) + u.get(id - 1) + u.get(id + 1)
                - 4.0 * u.get(id))
                * inv_h2;
            let r = lap - f.get(id);
            acc += r * r;
        }
        rec.loop_branch(loops::RESIDUAL);
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sor_reduces_the_residual() {
        let p = OceanParams::test_small();
        let mut sim = OceanSim::new(&p);
        let before = sim.residual();
        let after = sim.run(p.iterations);
        assert!(
            after < before * 0.2,
            "no convergence: {before} → {after}"
        );
    }

    #[test]
    fn boundaries_are_preserved() {
        let p = OceanParams::test_small();
        let mut sim = OceanSim::new(&p);
        sim.run(10);
        for i in 0..p.n {
            assert_eq!(sim.u[i * p.n], 1.0, "west boundary row {i}");
            assert_eq!(sim.u[i * p.n + p.n - 1], 0.0, "east boundary row {i}");
        }
    }

    #[test]
    fn more_iterations_converge_further() {
        let p = OceanParams::test_small();
        let r10 = OceanSim::new(&p).run(10);
        let r100 = OceanSim::new(&p).run(100);
        assert!(r100 < r10);
    }

    #[test]
    fn working_set_matches_grid_size() {
        let p = OceanParams { n: 512, ..OceanParams::test_small() };
        let sim = OceanSim::new(&p);
        assert_eq!(sim.working_set_bytes(), 2 * 512 * 512 * 8);
    }

    #[test]
    fn traced_sweep_touches_both_grids() {
        let rec = TraceRecorder::new();
        let n = 18;
        run_traced(n, 1.5, &rec);
        let t = rec.take();
        let distinct: std::collections::HashSet<u64> = t
            .records()
            .iter()
            .filter_map(|r| r.address())
            .collect();
        // Interior of u (read+written) + f (read) + boundary reads.
        assert!(distinct.len() > (n - 2) * (n - 2));
        use crate::trace::TraceRecord;
        let reds = t
            .records()
            .iter()
            .filter(|r| matches!(r, TraceRecord::LoopBranch(x) if *x == loops::RED))
            .count();
        assert_eq!(reds, n - 2);
    }

    #[test]
    fn traced_and_plain_residuals_agree() {
        let n = 20;
        let rec = TraceRecorder::new();
        let traced = run_traced(n, 1.5, &rec);
        let mut sim = OceanSim::new(&OceanParams {
            n,
            omega: 1.5,
            iterations: 1,
        });
        let plain = sim.run(1);
        assert!((traced - plain).abs() < 1e-9, "{traced} vs {plain}");
    }
}
