//! Mini-app re-implementations of the five SPLASH-2 benchmarks the
//! paper schedules (Table 2).
//!
//! Each app keeps the original's algorithmic skeleton and phase
//! structure — which is what matters to a scheduler that gates on
//! phase (progress-period) boundaries — at trace-friendly input sizes:
//!
//! * [`water`] — molecular dynamics: `water_nsquared` (all-pairs
//!   forces, high reuse) and `water_spatial` (cell lists, low reuse).
//! * [`ocean`] — red-black SOR relaxation of a square grid
//!   (`ocean_cp`'s multigrid relax step).
//! * [`raytrace`] — a sphere-scene ray caster (high reuse of scene
//!   data per ray).
//! * [`volrend`] — volume rendering by ray casting through a voxel
//!   grid.
//!
//! Every app exposes `run` (plain, returns a physical checksum used by
//! correctness tests) and `run_traced` (instrumented per §2.4, with
//! per-phase loop ids so the profiler can map detected periods back to
//! code structure).

pub mod ocean;
pub mod raytrace;
pub mod volrend;
pub mod water;
