//! Volrend: volume rendering by ray casting.
//!
//! SPLASH-2's `volrend` casts a ray per pixel through a voxel volume,
//! compositing opacity front-to-back. The volume is shared, re-read by
//! every ray — high reuse, working sets ~1.8 MB in Table 2. We
//! implement the same structure: a synthetic density volume, a
//! gradient-magnitude classification pass, and an orthographic
//! front-to-back compositing pass.

use crate::trace::{AddressSpace, TraceRecorder};

/// Render parameters.
#[derive(Debug, Clone, Copy)]
pub struct VolrendParams {
    /// Volume edge length (voxels).
    pub n: usize,
    /// Output image is `n × n`.
    pub seed: u64,
}

impl VolrendParams {
    /// A small, fast configuration for tests.
    pub fn test_small() -> Self {
        VolrendParams { n: 24, seed: 5 }
    }
}

/// A density volume with per-voxel opacity derived from gradients.
pub struct Volume {
    n: usize,
    density: Vec<f64>,
    opacity: Vec<f64>,
}

impl Volume {
    /// Build a synthetic volume: two Gaussian blobs in a unit cube.
    pub fn new(p: &VolrendParams) -> Self {
        let n = p.n;
        let mut density = vec![0.0; n * n * n];
        let blob = |x: f64, y: f64, z: f64, cx: f64, cy: f64, cz: f64, s: f64| {
            let d2 = (x - cx).powi(2) + (y - cy).powi(2) + (z - cz).powi(2);
            (-d2 / (2.0 * s * s)).exp()
        };
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let x = i as f64 / n as f64;
                    let y = j as f64 / n as f64;
                    let z = k as f64 / n as f64;
                    density[(k * n + j) * n + i] = blob(x, y, z, 0.35, 0.5, 0.4, 0.15)
                        + 0.8 * blob(x, y, z, 0.7, 0.45, 0.6, 0.1);
                }
            }
        }
        Volume {
            n,
            density,
            opacity: vec![0.0; n * n * n],
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.n + j) * self.n + i
    }

    /// Classification pass: opacity from density and gradient
    /// magnitude (central differences; the SPLASH "octree/opacity"
    /// preprocessing analogue).
    pub fn classify(&mut self) {
        let n = self.n;
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let gx = self.density[self.at(i + 1, j, k)] - self.density[self.at(i - 1, j, k)];
                    let gy = self.density[self.at(i, j + 1, k)] - self.density[self.at(i, j - 1, k)];
                    let gz = self.density[self.at(i, j, k + 1)] - self.density[self.at(i, j, k - 1)];
                    let grad = (gx * gx + gy * gy + gz * gz).sqrt();
                    let idx = self.at(i, j, k);
                    let d = self.density[idx];
                    self.opacity[idx] = (d * (0.5 + grad)).min(1.0) * 0.25;
                }
            }
        }
    }

    /// Front-to-back compositing along +z for every (x, y) pixel;
    /// returns the mean accumulated intensity.
    pub fn render(&self) -> f64 {
        let n = self.n;
        let mut acc_total = 0.0;
        for j in 0..n {
            for i in 0..n {
                let mut transmit = 1.0;
                let mut acc = 0.0;
                for k in 0..n {
                    let a = self.opacity[self.at(i, j, k)];
                    acc += transmit * a;
                    transmit *= 1.0 - a;
                    if transmit < 1e-3 {
                        break; // early ray termination, as in volrend
                    }
                }
                acc_total += acc;
            }
        }
        acc_total / (n * n) as f64
    }

    /// Bytes of volume state (density + opacity).
    pub fn working_set_bytes(&self) -> u64 {
        (2 * self.n * self.n * self.n * 8) as u64
    }
}

/// Loop ids emitted by the traced renderer.
pub mod loops {
    /// Classification slice loop.
    pub const CLASSIFY: u32 = 40;
    /// Rendering scanline loop.
    pub const RENDER: u32 = 41;
}

/// Traced classify + render; returns the mean intensity.
pub fn run_traced(p: &VolrendParams, rec: &TraceRecorder) -> f64 {
    let plain = {
        let mut v = Volume::new(p);
        v.classify();
        v
    };
    let n = p.n;
    let mut space = AddressSpace::new();
    let mut density = space.alloc(n * n * n, rec);
    let mut opacity = space.alloc(n * n * n, rec);
    for idx in 0..n * n * n {
        density.init(idx, plain.density[idx]);
    }
    let at = |i: usize, j: usize, k: usize| (k * n + j) * n + i;
    // classify
    for k in 1..n - 1 {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                let gx = density.get(at(i + 1, j, k)) - density.get(at(i - 1, j, k));
                let gy = density.get(at(i, j + 1, k)) - density.get(at(i, j - 1, k));
                let gz = density.get(at(i, j, k + 1)) - density.get(at(i, j, k - 1));
                let grad = (gx * gx + gy * gy + gz * gz).sqrt();
                let d = density.get(at(i, j, k));
                opacity.set(at(i, j, k), (d * (0.5 + grad)).min(1.0) * 0.25);
            }
        }
        rec.loop_branch(loops::CLASSIFY);
    }
    // render
    let mut acc_total = 0.0;
    for j in 0..n {
        for i in 0..n {
            let mut transmit = 1.0;
            let mut acc = 0.0;
            for k in 0..n {
                let a = opacity.get(at(i, j, k));
                acc += transmit * a;
                transmit *= 1.0 - a;
                if transmit < 1e-3 {
                    break;
                }
            }
            acc_total += acc;
        }
        rec.loop_branch(loops::RENDER);
    }
    acc_total / (n * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_renders_nonzero_image() {
        let mut v = Volume::new(&VolrendParams::test_small());
        v.classify();
        let mean = v.render();
        assert!(mean > 0.01, "mean {mean}");
        assert!(mean <= 1.0);
    }

    #[test]
    fn unclassified_volume_is_black() {
        let v = Volume::new(&VolrendParams::test_small());
        assert_eq!(v.render(), 0.0);
    }

    #[test]
    fn render_is_deterministic() {
        let p = VolrendParams::test_small();
        let run = || {
            let mut v = Volume::new(&p);
            v.classify();
            v.render()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn opacity_is_bounded() {
        let mut v = Volume::new(&VolrendParams::test_small());
        v.classify();
        assert!(v.opacity.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn traced_matches_plain_render() {
        let p = VolrendParams::test_small();
        let rec = TraceRecorder::new();
        let traced = run_traced(&p, &rec);
        let mut v = Volume::new(&p);
        v.classify();
        let plain = v.render();
        assert!((traced - plain).abs() < 1e-9, "{traced} vs {plain}");
    }

    #[test]
    fn traced_phases_have_distinct_loops() {
        let p = VolrendParams::test_small();
        let rec = TraceRecorder::new();
        run_traced(&p, &rec);
        let t = rec.take();
        use crate::trace::TraceRecord;
        let count = |id: u32| {
            t.records()
                .iter()
                .filter(|r| matches!(r, TraceRecord::LoopBranch(x) if *x == id))
                .count()
        };
        assert_eq!(count(loops::CLASSIFY), p.n - 2);
        assert_eq!(count(loops::RENDER), p.n);
    }

    #[test]
    fn working_set_scales_cubically() {
        let small = Volume::new(&VolrendParams { n: 16, seed: 0 });
        let big = Volume::new(&VolrendParams { n: 32, seed: 0 });
        assert_eq!(big.working_set_bytes(), 8 * small.working_set_bytes());
    }
}
