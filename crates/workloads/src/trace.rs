//! PIN-like memory-trace recording (§2.4).
//!
//! The paper's preliminary profiler *"uses Intel PIN to collect the
//! runtime virtual memory addresses from each load/store instruction
//! within each fixed-size sampling window"*, plus *"the linear memory
//! addresses of the JMP instructions retired"* to locate loops. This
//! module is our instrumentation layer:
//!
//! * [`TraceRecorder`] — the sink: an append-only stream of
//!   [`TraceRecord`]s (loads, stores, loop back-edges).
//! * [`TracedBuf`] — an `f64` buffer whose indexed reads/writes emit
//!   trace records at realistic byte addresses, so real kernels can run
//!   unmodified except for using `TracedBuf` instead of `Vec<f64>`.
//!
//! Recording is exact (every access), which is what the profiler's
//! window statistics need; kernels used for tracing are sized
//! accordingly.

use std::cell::RefCell;
use std::rc::Rc;

/// One instrumented event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecord {
    /// A load from the given byte address.
    Load(u64),
    /// A store to the given byte address.
    Store(u64),
    /// A retired loop back-edge (the "JMP" sample): carries the static
    /// loop id it belongs to.
    LoopBranch(u32),
}

impl TraceRecord {
    /// The data address, if this is a memory record.
    pub fn address(&self) -> Option<u64> {
        match *self {
            TraceRecord::Load(a) | TraceRecord::Store(a) => Some(a),
            TraceRecord::LoopBranch(_) => None,
        }
    }
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default)]
pub struct MemoryTrace {
    records: Vec<TraceRecord>,
}

impl MemoryTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// All records in program order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of memory (load/store) records.
    pub fn memory_ops(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.address().is_some())
            .count()
    }
}

/// Shared, append-only trace sink.
///
/// Kernels hold clones of the recorder (cheap `Rc`); single-threaded by
/// design — tracing happens in the profiling harness, not inside the
/// simulated machine.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    trace: Rc<RefCell<MemoryTrace>>,
    enabled: Rc<RefCell<bool>>,
}

impl TraceRecorder {
    /// A new, enabled recorder.
    pub fn new() -> Self {
        TraceRecorder {
            trace: Rc::new(RefCell::new(MemoryTrace::new())),
            enabled: Rc::new(RefCell::new(true)),
        }
    }

    /// Record a load.
    #[inline]
    pub fn load(&self, addr: u64) {
        if *self.enabled.borrow() {
            self.trace.borrow_mut().records.push(TraceRecord::Load(addr));
        }
    }

    /// Record a store.
    #[inline]
    pub fn store(&self, addr: u64) {
        if *self.enabled.borrow() {
            self.trace.borrow_mut().records.push(TraceRecord::Store(addr));
        }
    }

    /// Record a loop back-edge for static loop `loop_id`.
    #[inline]
    pub fn loop_branch(&self, loop_id: u32) {
        if *self.enabled.borrow() {
            self.trace
                .borrow_mut()
                .records
                .push(TraceRecord::LoopBranch(loop_id));
        }
    }

    /// Pause or resume recording (the paper's profiler disables
    /// sampling outside phases of interest).
    pub fn set_enabled(&self, enabled: bool) {
        *self.enabled.borrow_mut() = enabled;
    }

    /// Extract the trace recorded so far, leaving the recorder empty.
    pub fn take(&self) -> MemoryTrace {
        std::mem::take(&mut self.trace.borrow_mut())
    }

    /// Records currently held (clone; for inspection without draining).
    pub fn snapshot_len(&self) -> usize {
        self.trace.borrow().len()
    }
}

/// An instrumented `f64` buffer.
///
/// Each buffer gets a distinct virtual base address (64-byte aligned,
/// separated by a guard gap) so traces from multiple arrays interleave
/// realistically.
#[derive(Debug)]
pub struct TracedBuf {
    data: Vec<f64>,
    base: u64,
    rec: TraceRecorder,
}

/// Allocates virtual base addresses for traced buffers.
#[derive(Debug)]
pub struct AddressSpace {
    next_base: u64,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// A fresh address space starting at a page-aligned base.
    pub fn new() -> Self {
        AddressSpace {
            next_base: 0x1000_0000,
        }
    }

    /// Allocate a zeroed traced buffer of `len` doubles.
    pub fn alloc(&mut self, len: usize, rec: &TraceRecorder) -> TracedBuf {
        let bytes = (len * 8) as u64;
        let base = self.next_base;
        // 4 KiB guard + alignment between buffers.
        self.next_base += (bytes + 4096 + 63) & !63;
        TracedBuf {
            data: vec![0.0; len],
            base,
            rec: rec.clone(),
        }
    }
}

impl TracedBuf {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The buffer's virtual base address.
    pub fn base(&self) -> u64 {
        self.base
    }

    #[inline]
    fn addr(&self, i: usize) -> u64 {
        self.base + (i * 8) as u64
    }

    /// Traced read.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        self.rec.load(self.addr(i));
        self.data[i]
    }

    /// Traced write.
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        self.rec.store(self.addr(i));
        self.data[i] = v;
    }

    /// Untraced initialisation access (setup code is not part of the
    /// measured region, exactly like warmup in the paper's profiler).
    pub fn init(&mut self, i: usize, v: f64) {
        self.data[i] = v;
    }

    /// Untraced readback for checksums.
    pub fn peek(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Untraced view of the underlying data.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_appear_in_program_order() {
        let rec = TraceRecorder::new();
        rec.load(100);
        rec.store(200);
        rec.loop_branch(7);
        let t = rec.take();
        assert_eq!(
            t.records(),
            &[
                TraceRecord::Load(100),
                TraceRecord::Store(200),
                TraceRecord::LoopBranch(7)
            ]
        );
        assert_eq!(t.memory_ops(), 2);
    }

    #[test]
    fn take_drains_the_recorder() {
        let rec = TraceRecorder::new();
        rec.load(1);
        assert_eq!(rec.take().len(), 1);
        assert_eq!(rec.take().len(), 0);
    }

    #[test]
    fn disabled_recorder_drops_events() {
        let rec = TraceRecorder::new();
        rec.set_enabled(false);
        rec.load(1);
        rec.set_enabled(true);
        rec.load(2);
        let t = rec.take();
        assert_eq!(t.records(), &[TraceRecord::Load(2)]);
    }

    #[test]
    fn traced_buf_emits_correct_addresses() {
        let rec = TraceRecorder::new();
        let mut space = AddressSpace::new();
        let mut buf = space.alloc(16, &rec);
        let base = buf.base();
        buf.set(0, 1.5);
        let _ = buf.get(3);
        let t = rec.take();
        assert_eq!(
            t.records(),
            &[TraceRecord::Store(base), TraceRecord::Load(base + 24)]
        );
        assert_eq!(buf.peek(0), 1.5);
    }

    #[test]
    fn buffers_do_not_overlap() {
        let rec = TraceRecorder::new();
        let mut space = AddressSpace::new();
        let a = space.alloc(1000, &rec);
        let b = space.alloc(1000, &rec);
        let a_end = a.base() + 8000;
        assert!(b.base() > a_end, "guard gap missing");
        assert_eq!(b.base() % 64, 0, "alignment");
    }

    #[test]
    fn init_and_peek_are_untraced() {
        let rec = TraceRecorder::new();
        let mut space = AddressSpace::new();
        let mut buf = space.alloc(4, &rec);
        buf.init(2, 9.0);
        assert_eq!(buf.peek(2), 9.0);
        assert_eq!(rec.snapshot_len(), 0);
    }
}
