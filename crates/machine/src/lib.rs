//! # rda-machine
//!
//! The simulated hardware substrate of the RDA reproduction. The paper
//! runs on a 12-core Intel Xeon E5-2420 (Table 1); this crate models that
//! machine at the granularity the scheduler cares about:
//!
//! * [`MachineConfig`] — core count, frequency, cache hierarchy and
//!   latencies, DRAM bandwidth, defaulting to the paper's Table 1.
//! * [`profile`] — [`profile::AccessProfile`]: a compact description of a
//!   code region's memory behaviour (working-set size, reuse level,
//!   memory-op and FLOP fractions), the same vocabulary the progress
//!   period API uses.
//! * [`perf`] — the analytical performance model: per-level hit rates,
//!   LLC capacity sharing among co-runners, cycles-per-instruction, and
//!   DRAM bandwidth saturation.
//! * [`cache`] — a functional set-associative LRU cache hierarchy used to
//!   validate the analytical model against real address traces.
//! * [`energy`] — the RAPL-style energy model (PKG and DRAM domains).
//!
//! The analytical model is deliberately first-order: the paper's effects
//! are capacity effects in the shared last-level cache, and this model
//! reproduces exactly that mechanism (see DESIGN.md §4).

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod energy;
pub mod perf;
pub mod profile;
pub mod topology;

pub use config::MachineConfig;
pub use topology::{NodeSpec, Topology};
pub use energy::EnergyModel;
pub use perf::{profile_bits_eq, PerfModel, SegmentRates};
pub use profile::{AccessProfile, ReuseLevel};
