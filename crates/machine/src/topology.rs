//! Machine topology description: NUMA nodes and their per-node
//! resource envelopes.
//!
//! The paper's prototype manages one shared LLC on one socket. A
//! production multi-tenant box is a *topology*: several NUMA nodes,
//! each with its own slice of last-level cache, memory bandwidth, and
//! DRAM capacity. This module only *describes* that shape — the
//! scheduling mechanism that places demand vectors onto nodes lives in
//! `rda-core` (`TopoExtension`), keeping the machine crate free of
//! policy.
//!
//! A [`Topology`] with a single node built from a [`MachineConfig`] is
//! the compatibility anchor: every multi-node code path must degenerate
//! to the paper's single-socket behaviour on it (see DESIGN.md §9).

use crate::config::MachineConfig;

/// The resource envelope of one NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// Last-level cache capacity local to the node, bytes.
    pub llc_bytes: u64,
    /// Local memory bandwidth, bytes/second (stored as integral B/s).
    pub membw_bytes: u64,
    /// Local DRAM capacity, bytes.
    pub dram_bytes: u64,
}

/// A machine as a set of NUMA nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// The nodes; node id = index.
    pub nodes: Vec<NodeSpec>,
}

impl Topology {
    /// A single-node topology mirroring a [`MachineConfig`] — the
    /// compatibility shape: one LLC, one bandwidth pool, one DRAM pool.
    pub fn single(m: &MachineConfig) -> Self {
        Topology {
            nodes: vec![NodeSpec {
                llc_bytes: m.llc_bytes,
                membw_bytes: m.dram_peak_bw as u64,
                dram_bytes: m.dram_bytes,
            }],
        }
    }

    /// `n` identical nodes.
    pub fn uniform(n: usize, node: NodeSpec) -> Self {
        assert!(n >= 1, "a topology needs at least one node");
        Topology {
            nodes: vec![node; n],
        }
    }

    /// A two-socket box built from one socket's [`MachineConfig`]: each
    /// node carries the full per-socket LLC and an even split of the
    /// machine's bandwidth and DRAM (interleaved channels halved).
    pub fn dual_socket(m: &MachineConfig) -> Self {
        Topology::uniform(
            2,
            NodeSpec {
                llc_bytes: m.llc_bytes,
                membw_bytes: (m.dram_peak_bw as u64) / 2,
                dram_bytes: m.dram_bytes / 2,
            },
        )
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for the degenerate (but valid) empty description.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True for the single-node compatibility shape.
    pub fn is_single_node(&self) -> bool {
        self.nodes.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_mirrors_the_machine() {
        let m = MachineConfig::xeon_e5_2420();
        let t = Topology::single(&m);
        assert!(t.is_single_node());
        assert_eq!(t.nodes[0].llc_bytes, m.llc_bytes);
        assert_eq!(t.nodes[0].membw_bytes, m.dram_peak_bw as u64);
        assert_eq!(t.nodes[0].dram_bytes, m.dram_bytes);
    }

    #[test]
    fn dual_socket_splits_shared_pools() {
        let m = MachineConfig::xeon_e5_2420();
        let t = Topology::dual_socket(&m);
        assert_eq!(t.len(), 2);
        assert_eq!(t.nodes[0], t.nodes[1]);
        assert_eq!(t.nodes[0].llc_bytes, m.llc_bytes, "LLC is per socket");
        assert_eq!(t.nodes[0].dram_bytes, m.dram_bytes / 2);
    }

    #[test]
    fn uniform_replicates() {
        let n = NodeSpec {
            llc_bytes: 1,
            membw_bytes: 2,
            dram_bytes: 3,
        };
        let t = Topology::uniform(3, n);
        assert_eq!(t.len(), 3);
        assert!(!t.is_single_node());
        assert!(t.nodes.iter().all(|&x| x == n));
    }
}
