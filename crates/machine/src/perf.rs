//! Analytical performance model.
//!
//! The scheduler experiments need, for every co-running set of code
//! regions, each region's instruction rate and memory traffic. This
//! module derives them from first-order cache behaviour:
//!
//! 1. Per-level hit rates as a function of the region's
//!    [`ReuseLevel`] and whether its working set fits the level.
//! 2. **LLC capacity sharing**: co-running regions with working sets
//!    `ws_i` compete for the shared LLC; each obtains an effective share
//!    proportional to its demand (an LRU-competition approximation, cf.
//!    the cache-partitioning literature the paper cites). A region whose
//!    share is below its working set sees its LLC hit rate degrade
//!    polynomially in `share / ws` — high-reuse regions lose the most,
//!    which is precisely the interference the RDA scheduler avoids.
//! 3. CPI composition: `cpi_base + mem_frac × stall-per-memory-op`.
//! 4. **DRAM bandwidth saturation**: when the co-runners' aggregate miss
//!    traffic exceeds peak bandwidth, all instruction rates are scaled
//!    down by the overload factor (Figure 13's memory-bound plateau).
//!
//! All knobs live in [`PerfParams`] so the ablation benches can vary
//! them; defaults are calibrated against the functional LRU hierarchy in
//! [`crate::cache`] (see `tests/model_vs_trace.rs` in `rda-workloads`).

use crate::config::MachineConfig;
use crate::profile::{AccessProfile, ReuseLevel};

/// Tunable coefficients of the analytical model.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfParams {
    /// L1 hit rate per reuse level (spatial locality keeps even
    /// streaming code mostly L1-resident on 64-byte lines).
    pub l1_hit: [f64; 3],
    /// Of L1 misses, the fraction that hit L2 when the working set fits
    /// in L2.
    pub l2_hit_fit: f64,
    /// Of L1 misses, the fraction that hit L2 when the working set does
    /// not fit, per reuse level.
    pub l2_hit_nofit: [f64; 3],
    /// Of L2 misses, the fraction that hit the LLC when the region's
    /// working set fits within its effective share, per reuse level.
    pub llc_hit_fit: [f64; 3],
    /// Exponent of the LLC degradation curve `hit × (share/ws)^gamma`.
    pub llc_degrade_gamma: f64,
    /// Effective memory-level parallelism dividing the exposed DRAM
    /// stall (1 = fully serialised misses).
    pub mlp: f64,
    /// Fraction of beyond-L2 stall hidden by the hardware prefetchers,
    /// per reuse level. Streaming (low-reuse) code prefetches almost
    /// perfectly; blocked high-reuse code hardly at all.
    pub prefetch_cover: [f64; 3],
    /// DRAM queueing: utilisation is capped here to keep the
    /// latency-inflation factor finite.
    pub max_dram_utilization: f64,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            l1_hit: [0.88, 0.93, 0.95],
            l2_hit_fit: 0.85,
            l2_hit_nofit: [0.10, 0.35, 0.55],
            llc_hit_fit: [0.30, 0.85, 0.97],
            llc_degrade_gamma: 2.5,
            mlp: 1.0,
            prefetch_cover: [0.85, 0.50, 0.10],
            max_dram_utilization: 0.95,
        }
    }
}

/// Bitwise profile equality — the sharing test of the co-run solver's
/// dedup pass and the simulation's interval-to-interval rate memo.
/// Deliberately *stricter* than `PartialEq`: `0.0` and `-0.0` compare
/// equal yet are distinct bit patterns, and reusing a solved rate must
/// be indistinguishable from recomputing it.
pub fn profile_bits_eq(a: &AccessProfile, b: &AccessProfile) -> bool {
    a.ws_bytes == b.ws_bytes
        && a.reuse == b.reuse
        && a.mem_frac.to_bits() == b.mem_frac.to_bits()
        && a.flop_frac.to_bits() == b.flop_frac.to_bits()
        && a.cpi_base.to_bits() == b.cpi_base.to_bits()
}

fn idx(reuse: ReuseLevel) -> usize {
    match reuse {
        ReuseLevel::Low => 0,
        ReuseLevel::Medium => 1,
        ReuseLevel::High => 2,
    }
}

/// Derived per-instruction rates for one region under a given LLC share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentRates {
    /// Cycles per instruction (before bandwidth scaling).
    pub cpi: f64,
    /// L1 misses per instruction.
    pub l1_mpi: f64,
    /// LLC accesses per instruction (= L2 misses per instruction).
    pub llc_api: f64,
    /// LLC misses per instruction (each is one DRAM line transfer).
    pub llc_mpi: f64,
    /// DRAM traffic in bytes per instruction.
    pub dram_bpi: f64,
}

impl SegmentRates {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        1.0 / self.cpi
    }
}

/// The analytical performance model bound to a machine configuration.
#[derive(Debug, Clone)]
pub struct PerfModel {
    cfg: MachineConfig,
    params: PerfParams,
}

/// The DRAM-latency-invariant intermediates of one
/// [`PerfModel::rates_with_dram`] evaluation (see
/// [`PerfModel::rates_prelude`]).
#[derive(Debug, Clone, Copy)]
struct RatesPrelude {
    h2: f64,
    h3: f64,
    m1: f64,
    cover: f64,
    cpi_base: f64,
    mem_frac: f64,
    l1_mpi: f64,
    llc_api: f64,
    llc_mpi: f64,
    dram_bpi: f64,
}

impl PerfModel {
    /// Model with default calibration.
    pub fn new(cfg: MachineConfig) -> Self {
        PerfModel {
            cfg,
            params: PerfParams::default(),
        }
    }

    /// Model with explicit parameters (used by ablation benches).
    pub fn with_params(cfg: MachineConfig, params: PerfParams) -> Self {
        PerfModel { cfg, params }
    }

    /// The machine configuration this model is bound to.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The model coefficients.
    pub fn params(&self) -> &PerfParams {
        &self.params
    }

    /// Effective LLC share for a region with working set `ws` when the
    /// co-running regions' working sets total `total_ws` bytes.
    ///
    /// If everything fits, each region keeps its full working set;
    /// otherwise capacity is split proportionally to demand.
    pub fn llc_share(&self, ws: u64, total_ws: u64) -> u64 {
        let llc = self.cfg.llc_bytes;
        if total_ws <= llc || total_ws == 0 {
            ws
        } else {
            ((ws as u128 * llc as u128) / total_ws as u128) as u64
        }
    }

    /// LLC hit rate (over LLC accesses) for a region given its effective
    /// share of the cache.
    pub fn llc_hit_rate(&self, prof: &AccessProfile, share_bytes: u64) -> f64 {
        let fit = self.params.llc_hit_fit[idx(prof.reuse)];
        if prof.ws_bytes == 0 || share_bytes >= prof.ws_bytes {
            fit
        } else {
            let ratio = share_bytes as f64 / prof.ws_bytes as f64;
            fit * ratio.powf(self.params.llc_degrade_gamma)
        }
    }

    /// Full per-instruction rates for a region under `share_bytes` of
    /// effective LLC capacity, with an un-contended DRAM.
    pub fn rates(&self, prof: &AccessProfile, share_bytes: u64) -> SegmentRates {
        self.rates_with_dram(prof, share_bytes, self.cfg.dram_cycles as f64)
    }

    /// Per-instruction rates with an explicit effective DRAM latency
    /// (used by the co-run solver to feed back queueing delay).
    pub fn rates_with_dram(
        &self,
        prof: &AccessProfile,
        share_bytes: u64,
        dram_cycles: f64,
    ) -> SegmentRates {
        self.rates_eval(&self.rates_prelude(prof, share_bytes), dram_cycles)
    }

    /// The DRAM-latency-*invariant* part of [`Self::rates_with_dram`]:
    /// every quantity that depends only on the profile and its LLC
    /// share. The co-run solver computes this once per distinct entry
    /// and re-evaluates only [`Self::rates_eval`] per fixed-point
    /// iteration — hoisting, not reformulation, so every produced bit
    /// is identical to the single-call path (`rates_with_dram` itself
    /// is defined as prelude + eval).
    fn rates_prelude(&self, prof: &AccessProfile, share_bytes: u64) -> RatesPrelude {
        let p = &self.params;
        let h1 = if prof.ws_bytes <= self.cfg.l1_bytes {
            // Fully L1-resident regions barely miss at all.
            0.995
        } else {
            p.l1_hit[idx(prof.reuse)]
        };
        let h2 = if prof.ws_bytes <= self.cfg.l2_bytes {
            p.l2_hit_fit
        } else {
            p.l2_hit_nofit[idx(prof.reuse)]
        };
        let h3 = self.llc_hit_rate(prof, share_bytes);

        let m1 = 1.0 - h1; // L1 misses per memory op
        let llc_access_per_memop = m1 * (1.0 - h2);
        let llc_miss_per_memop = llc_access_per_memop * (1.0 - h3);

        let cover = p.prefetch_cover[idx(prof.reuse)];
        let llc_mpi = prof.mem_frac * llc_miss_per_memop;
        RatesPrelude {
            h2,
            h3,
            m1,
            cover,
            cpi_base: prof.cpi_base,
            mem_frac: prof.mem_frac,
            l1_mpi: prof.mem_frac * m1,
            llc_api: prof.mem_frac * llc_access_per_memop,
            llc_mpi,
            dram_bpi: llc_mpi * self.cfg.line_bytes as f64,
        }
    }

    /// The DRAM-latency-*dependent* tail of [`Self::rates_with_dram`]
    /// (see [`Self::rates_prelude`]).
    fn rates_eval(&self, pre: &RatesPrelude, dram_cycles: f64) -> SegmentRates {
        let dram_stall = dram_cycles / self.params.mlp;
        let beyond_l2 = (pre.h3 * self.cfg.llc_hit_cycles as f64
            + (1.0 - pre.h3) * dram_stall)
            * (1.0 - pre.cover);
        let stall_per_memop =
            pre.m1 * (pre.h2 * self.cfg.l2_hit_cycles as f64 + (1.0 - pre.h2) * beyond_l2);
        let cpi = pre.cpi_base + pre.mem_frac * stall_per_memop;
        SegmentRates {
            cpi,
            l1_mpi: pre.l1_mpi,
            llc_api: pre.llc_api,
            llc_mpi: pre.llc_mpi,
            dram_bpi: pre.dram_bpi,
        }
    }

    /// DRAM latency inflation under load: a gentle quadratic queueing
    /// factor `1 + 2ρ²` at utilisation `ρ` (capped at the configured
    /// maximum). Latency grows with load but stays bounded; the hard
    /// saturation behaviour comes from the throughput cap applied by
    /// [`Self::solve_corun`] — together they produce the memory-bound
    /// plateau of the paper's Figure 13.
    pub fn dram_latency_factor(&self, utilization: f64) -> f64 {
        let rho = utilization.clamp(0.0, self.params.max_dram_utilization);
        1.0 + 2.0 * rho * rho
    }

    /// Solve steady-state rates for a co-running set.
    ///
    /// Each entry is a region with its effective LLC share. Two DRAM
    /// effects couple the rates: queueing delay (latency rises with
    /// utilisation — a damped fixed point) and the hard bandwidth
    /// ceiling (aggregate traffic cannot exceed peak — a final uniform
    /// rate scale, folded into each region's effective CPI).
    pub fn solve_corun(&self, entries: &[(AccessProfile, u64)]) -> Vec<SegmentRates> {
        let mut rates = Vec::new();
        self.solve_corun_into(entries, &mut rates);
        rates
    }

    /// [`Self::solve_corun`] into a caller-owned buffer — the
    /// simulation's per-interval path, which must not allocate.
    ///
    /// Threads of the same process in the same phase present identical
    /// `(profile, share)` entries, and [`Self::rates_with_dram`] is a
    /// pure function of its inputs — so each *bit-identical* entry is
    /// solved once per fixed-point iteration and its result replicated.
    /// The accumulation over the replicated per-entry vector is
    /// unchanged, keeping every output bit-for-bit equal to the naive
    /// per-entry evaluation.
    pub fn solve_corun_into(
        &self,
        entries: &[(AccessProfile, u64)],
        rates: &mut Vec<SegmentRates>,
    ) {
        rates.clear();
        if entries.is_empty() {
            return;
        }
        // Map each entry to the index of its first bit-identical
        // occurrence. Inline buffers: co-run sets are at most a few
        // dozen threads; fall back to no sharing beyond the buffer.
        const MAX_DEDUP: usize = 64;
        let mut rep = [0u16; MAX_DEDUP];
        for (i, e) in entries.iter().enumerate().take(MAX_DEDUP) {
            let mut found = i;
            for (j, d) in entries.iter().enumerate().take(i) {
                if rep[j] as usize == j && profile_bits_eq(&d.0, &e.0) && d.1 == e.1 {
                    found = j;
                    break;
                }
            }
            rep[i] = found as u16;
        }
        // The DRAM-invariant prelude of each representative entry,
        // computed once (on the stack — this path must not allocate);
        // the fixed-point loop re-evaluates only the latency-dependent
        // tail. Reusing a prelude across iterations is hoisting of a
        // pure function, so every bit matches the per-iteration path.
        let mut pre = [None::<RatesPrelude>; MAX_DEDUP];
        for (i, (prof, share)) in entries.iter().enumerate().take(MAX_DEDUP) {
            if rep[i] as usize == i {
                pre[i] = Some(self.rates_prelude(prof, *share));
            }
        }
        let peak_bpc = self.cfg.dram_bw_bytes_per_cycle();
        let mut dram_eff = self.cfg.dram_cycles as f64;
        for _ in 0..12 {
            rates.clear();
            for (i, (prof, share)) in entries.iter().enumerate() {
                let r = if i < MAX_DEDUP {
                    match &pre[i] {
                        Some(p) => self.rates_eval(p, dram_eff),
                        None => rates[rep[i] as usize],
                    }
                } else {
                    self.rates_with_dram(prof, *share, dram_eff)
                };
                rates.push(r);
            }
            let demand_bpc: f64 = rates.iter().map(|r| r.dram_bpi / r.cpi).sum();
            let rho = demand_bpc / peak_bpc;
            let target = self.cfg.dram_cycles as f64 * self.dram_latency_factor(rho);
            // Damping stabilises the alternation between high-traffic /
            // low-latency and low-traffic / high-latency solutions.
            dram_eff = 0.5 * dram_eff + 0.5 * target;
        }
        // Hard bandwidth ceiling: scale every region's rate uniformly
        // so aggregate traffic fits the bus.
        let demand_bpc: f64 = rates.iter().map(|r| r.dram_bpi / r.cpi).sum();
        if demand_bpc > peak_bpc {
            let stretch = demand_bpc / peak_bpc;
            for r in rates {
                r.cpi *= stretch;
            }
        }
    }

    /// Cycles to rebuild the private-cache footprint after a context
    /// switch displaced it (Figure 1's "reload data from cache" cost):
    /// one LLC-hit-latency per line of the L2-bounded footprint.
    pub fn switch_warmup_cycles(&self, ws_bytes: u64) -> u64 {
        let lines = ws_bytes.min(self.cfg.l2_bytes) / self.cfg.line_bytes;
        lines * self.cfg.llc_hit_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MIB;

    fn model() -> PerfModel {
        PerfModel::new(MachineConfig::xeon_e5_2420())
    }

    fn prof(ws_mb: f64, reuse: ReuseLevel) -> AccessProfile {
        AccessProfile::typical((ws_mb * MIB as f64) as u64, reuse)
    }

    #[test]
    fn share_is_full_ws_when_everything_fits() {
        let m = model();
        let ws = 2 * MIB;
        assert_eq!(m.llc_share(ws, 10 * MIB), ws);
    }

    #[test]
    fn share_is_proportional_under_pressure() {
        let m = model();
        let llc = m.config().llc_bytes;
        // Two equal regions at 2× capacity each get half the cache.
        let ws = llc; // each region wants the whole cache
        let share = m.llc_share(ws, 2 * llc);
        assert_eq!(share, llc / 2);
    }

    #[test]
    fn shares_sum_to_capacity_under_pressure() {
        let m = model();
        let llc = m.config().llc_bytes;
        let wss = [3 * MIB, 5 * MIB, 9 * MIB, 7 * MIB];
        let total: u64 = wss.iter().sum();
        assert!(total > llc);
        let sum: u64 = wss.iter().map(|&w| m.llc_share(w, total)).sum();
        // Integer division may lose a few bytes but never exceeds capacity.
        assert!(sum <= llc);
        assert!(llc - sum < wss.len() as u64);
    }

    #[test]
    fn fitting_region_keeps_full_hit_rate() {
        let m = model();
        let p = prof(2.0, ReuseLevel::High);
        let h = m.llc_hit_rate(&p, p.ws_bytes);
        assert!((h - m.params().llc_hit_fit[2]).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_degrades_monotonically_with_share() {
        let m = model();
        let p = prof(8.0, ReuseLevel::High);
        let mut last = f64::INFINITY;
        for frac in [1.0, 0.8, 0.6, 0.4, 0.2, 0.1] {
            let share = (p.ws_bytes as f64 * frac) as u64;
            let h = m.llc_hit_rate(&p, share);
            assert!(h <= last + 1e-12, "not monotone at {frac}");
            last = h;
        }
    }

    #[test]
    fn high_reuse_suffers_more_from_thrashing_than_low() {
        let m = model();
        let high = prof(8.0, ReuseLevel::High);
        let low = prof(8.0, ReuseLevel::Low);
        let share = 2 * MIB;
        let slowdown = |p: &AccessProfile| {
            let fit = m.rates(p, p.ws_bytes).cpi;
            let thrash = m.rates(p, share).cpi;
            thrash / fit
        };
        assert!(
            slowdown(&high) > slowdown(&low),
            "high {} low {}",
            slowdown(&high),
            slowdown(&low)
        );
    }

    #[test]
    fn thrashing_slowdown_is_substantial_for_high_reuse() {
        // The paper's raytrace case: 48 × 5.1 MB working sets over a
        // 15 MB LLC ruin each process's hit rate; per-instruction
        // slowdown should be well above 1.4× for the 1.88× end-to-end
        // speedup (which also includes bandwidth effects) to emerge.
        let m = model();
        let p = prof(5.1, ReuseLevel::High);
        let total = 48 * p.ws_bytes;
        let share = m.llc_share(p.ws_bytes, total);
        let fit = m.rates(&p, p.ws_bytes);
        let thrash = m.rates(&p, share);
        assert!(thrash.cpi / fit.cpi > 1.4, "slowdown {}", thrash.cpi / fit.cpi);
    }

    #[test]
    fn l1_resident_region_barely_stalls() {
        let m = model();
        let p = AccessProfile::typical(16 * 1024, ReuseLevel::Low);
        let r = m.rates(&p, p.ws_bytes);
        assert!(r.cpi < p.cpi_base * 1.2, "cpi {}", r.cpi);
        assert!(r.llc_mpi < 1e-3);
    }

    #[test]
    fn rates_are_internally_consistent() {
        let m = model();
        let p = prof(6.0, ReuseLevel::Medium);
        let r = m.rates(&p, 3 * MIB);
        assert!(r.cpi > 0.0);
        assert!(r.l1_mpi >= r.llc_api, "miss funnel must narrow");
        assert!(r.llc_api >= r.llc_mpi);
        assert!((r.dram_bpi - r.llc_mpi * 64.0).abs() < 1e-12);
        assert!((r.ipc() * r.cpi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dram_latency_inflates_under_load() {
        let m = model();
        assert!((m.dram_latency_factor(0.0) - 1.0).abs() < 1e-12);
        let mid = m.dram_latency_factor(0.5);
        let high = m.dram_latency_factor(0.9);
        assert!(mid > 1.0 && high > mid, "mid {mid} high {high}");
        // Capped: utilisation beyond the cap doesn't blow up.
        let capped = m.dram_latency_factor(10.0);
        assert_eq!(capped, m.dram_latency_factor(0.95));
        assert!(capped.is_finite());
    }

    #[test]
    fn solver_converges_and_orders_by_contention() {
        let m = model();
        let p = prof(5.1, ReuseLevel::High);
        // Solo, fitting: nominal rates.
        let solo = m.solve_corun(&[(p, p.ws_bytes)]);
        assert_eq!(solo.len(), 1);
        let solo_cpi = solo[0].cpi;
        // Twelve co-runners squeezed into proportional shares: much
        // slower per instruction.
        let total = 12 * p.ws_bytes;
        let share = m.llc_share(p.ws_bytes, total);
        let crowd: Vec<_> = (0..12).map(|_| (p, share)).collect();
        let crowded = m.solve_corun(&crowd);
        assert_eq!(crowded.len(), 12);
        assert!(crowded[0].cpi > solo_cpi * 1.5, "crowded {} solo {}", crowded[0].cpi, solo_cpi);
        // All identical entries get identical rates.
        for r in &crowded {
            assert!((r.cpi - crowded[0].cpi).abs() < 1e-9);
        }
    }

    #[test]
    fn solver_handles_empty_and_single_stream() {
        let m = model();
        assert!(m.solve_corun(&[]).is_empty());
        // A dozen pure streams saturate DRAM: per-stream CPI grows well
        // beyond the uncontended value.
        let s = prof(8.0, ReuseLevel::Low);
        let alone = m.solve_corun(&[(s, MIB)])[0].cpi;
        let crowd: Vec<_> = (0..12).map(|_| (s, MIB)).collect();
        let each = m.solve_corun(&crowd)[0].cpi;
        assert!(each > alone, "streams must contend: {each} vs {alone}");
    }

    /// The pre-dedup solver, verbatim: one `rates_with_dram` per entry
    /// per fixed-point iteration. The optimised path must match it to
    /// the last bit.
    fn solve_corun_naive(m: &PerfModel, entries: &[(AccessProfile, u64)]) -> Vec<SegmentRates> {
        if entries.is_empty() {
            return Vec::new();
        }
        let peak_bpc = m.config().dram_bw_bytes_per_cycle();
        let mut dram_eff = m.config().dram_cycles as f64;
        let mut rates: Vec<SegmentRates> = Vec::new();
        for _ in 0..12 {
            rates = entries
                .iter()
                .map(|(prof, share)| m.rates_with_dram(prof, *share, dram_eff))
                .collect();
            let demand_bpc: f64 = rates.iter().map(|r| r.dram_bpi / r.cpi).sum();
            let rho = demand_bpc / peak_bpc;
            let target = m.config().dram_cycles as f64 * m.dram_latency_factor(rho);
            dram_eff = 0.5 * dram_eff + 0.5 * target;
        }
        let demand_bpc: f64 = rates.iter().map(|r| r.dram_bpi / r.cpi).sum();
        if demand_bpc > peak_bpc {
            let stretch = demand_bpc / peak_bpc;
            for r in &mut rates {
                r.cpi *= stretch;
            }
        }
        rates
    }

    #[test]
    fn corun_dedup_is_bit_identical_to_naive_evaluation() {
        let m = model();
        let a = prof(5.1, ReuseLevel::High);
        let b = prof(8.0, ReuseLevel::Low);
        let c = prof(2.0, ReuseLevel::Medium);
        let cases: Vec<Vec<(AccessProfile, u64)>> = vec![
            vec![(a, MIB)],
            vec![(a, MIB); 12],
            vec![(a, MIB), (b, 2 * MIB), (a, MIB), (c, MIB), (b, 2 * MIB), (a, 3 * MIB)],
            (0..48).map(|i| ([a, b, c][i % 3], MIB * (1 + (i % 4) as u64))).collect(),
            (0..80).map(|_| (a, MIB)).collect(), // beyond the dedup buffer
        ];
        for entries in cases {
            let fast = m.solve_corun(&entries);
            let naive = solve_corun_naive(&m, &entries);
            assert_eq!(fast.len(), naive.len());
            for (f, n) in fast.iter().zip(&naive) {
                assert_eq!(f.cpi.to_bits(), n.cpi.to_bits());
                assert_eq!(f.l1_mpi.to_bits(), n.l1_mpi.to_bits());
                assert_eq!(f.llc_api.to_bits(), n.llc_api.to_bits());
                assert_eq!(f.llc_mpi.to_bits(), n.llc_mpi.to_bits());
                assert_eq!(f.dram_bpi.to_bits(), n.dram_bpi.to_bits());
            }
        }
    }

    #[test]
    fn switch_warmup_bounded_by_l2() {
        let m = model();
        let l2 = m.config().l2_bytes;
        let small = m.switch_warmup_cycles(l2 / 2);
        let big = m.switch_warmup_cycles(100 * MIB);
        assert_eq!(big, m.switch_warmup_cycles(l2));
        assert!(small < big);
        assert_eq!(big, l2 / 64 * m.config().llc_hit_cycles);
    }
}
