//! Functional set-associative LRU cache hierarchy.
//!
//! The analytical model in [`crate::perf`] is the workhorse of the
//! scheduling experiments, but its coefficients need grounding. This
//! module provides an exact (functional, not timed) simulation of the
//! machine's three-level cache hierarchy that can replay the address
//! traces produced by the instrumented workloads in `rda-workloads`. The
//! trace-versus-model tests compare the two.
//!
//! The hierarchy models private L1/L2 per "core slot" and a shared LLC,
//! all with true-LRU replacement and inclusive allocation on miss (the
//! E5-2420's L3 is inclusive).

use crate::config::MachineConfig;

/// Miss/hit outcome of a single access at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Hit,
    Miss,
}

/// A single set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<u64>>, // each set holds line tags, MRU at the back
    assoc: usize,
    line_shift: u32,
    num_sets: u64,
    stats: CacheStats,
}

/// Access statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses presented to this level.
    pub accesses: u64,
    /// Accesses that missed at this level.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio; 0 when the cache was never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio; 1 when the cache was never accessed.
    pub fn hit_ratio(&self) -> f64 {
        1.0 - self.miss_ratio()
    }
}

impl SetAssocCache {
    /// Build a cache of `capacity_bytes` with `assoc`-way sets and
    /// `line_bytes` lines. Capacity must divide evenly into sets.
    pub fn new(capacity_bytes: u64, assoc: usize, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(assoc > 0);
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= assoc as u64 && lines.is_multiple_of(assoc as u64), "capacity/assoc mismatch");
        // Modulo set indexing: real LLCs (e.g. the E5-2420's 20-way,
        // 12288-set L3) do not have power-of-two set counts.
        let num_sets = lines / assoc as u64;
        SetAssocCache {
            sets: vec![Vec::with_capacity(assoc); num_sets as usize],
            assoc,
            line_shift: line_bytes.trailing_zeros(),
            num_sets,
            stats: CacheStats::default(),
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line % self.num_sets) as usize, line)
    }

    fn access(&mut self, addr: u64) -> Outcome {
        let (set_idx, tag) = self.locate(addr);
        let set = &mut self.sets[set_idx];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.push(t);
            Outcome::Hit
        } else {
            self.stats.misses += 1;
            if set.len() == self.assoc {
                set.remove(0); // evict LRU
            }
            set.push(tag);
            Outcome::Miss
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Drop all contents and statistics.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

/// Per-level statistics of a hierarchy replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 data cache statistics.
    pub l1: CacheStats,
    /// L2 statistics (accesses = L1 misses).
    pub l2: CacheStats,
    /// LLC statistics (accesses = L2 misses).
    pub llc: CacheStats,
}

impl HierarchyStats {
    /// DRAM line transfers (LLC misses).
    pub fn dram_lines(&self) -> u64 {
        self.llc.misses
    }
}

/// A multi-core cache hierarchy: private L1/L2 per slot, one shared LLC.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    line_bytes: u64,
}

impl CacheHierarchy {
    /// Build the hierarchy for `cfg`, with one private L1/L2 pair per
    /// core.
    pub fn new(cfg: &MachineConfig) -> Self {
        CacheHierarchy {
            l1: (0..cfg.cores)
                .map(|_| SetAssocCache::new(cfg.l1_bytes, cfg.l1_assoc, cfg.line_bytes))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| SetAssocCache::new(cfg.l2_bytes, cfg.l2_assoc, cfg.line_bytes))
                .collect(),
            llc: SetAssocCache::new(cfg.llc_bytes, cfg.llc_assoc, cfg.line_bytes),
            line_bytes: cfg.line_bytes,
        }
    }

    /// Cache line size.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of core slots.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Present one memory access from `core` at byte address `addr`.
    /// The access walks L1 → L2 → LLC, allocating on miss at each level.
    pub fn access(&mut self, core: usize, addr: u64) {
        if self.l1[core].access(addr) == Outcome::Miss
            && self.l2[core].access(addr) == Outcome::Miss
        {
            // LLC is shared; misses there go to DRAM (counted in stats).
            let _ = self.llc.access(addr);
        }
    }

    /// Combined statistics over all cores.
    pub fn stats(&self) -> HierarchyStats {
        let mut l1 = CacheStats::default();
        let mut l2 = CacheStats::default();
        for c in &self.l1 {
            l1.accesses += c.stats().accesses;
            l1.misses += c.stats().misses;
        }
        for c in &self.l2 {
            l2.accesses += c.stats().accesses;
            l2.misses += c.stats().misses;
        }
        HierarchyStats {
            l1,
            l2,
            llc: self.llc.stats(),
        }
    }

    /// Clear contents and statistics at every level.
    pub fn reset(&mut self) {
        for c in &mut self.l1 {
            c.reset();
        }
        for c in &mut self.l2 {
            c.reset();
        }
        self.llc.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KIB;

    fn tiny() -> SetAssocCache {
        // 4 KiB, 4-way, 64 B lines → 16 sets.
        SetAssocCache::new(4 * KIB, 4, 64)
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000), Outcome::Miss);
        assert_eq!(c.access(0x1000), Outcome::Hit);
        assert_eq!(c.access(0x1008), Outcome::Hit, "same line");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // 16 sets → set stride = 16*64 = 1024
        // Five distinct tags mapping to set 0 in a 4-way set.
        let addrs: Vec<u64> = (0..5).map(|i| i * 1024).collect();
        for &a in &addrs[..4] {
            assert_eq!(c.access(a), Outcome::Miss);
        }
        // Touch addr 0 to make it MRU; then insert the 5th tag.
        assert_eq!(c.access(addrs[0]), Outcome::Hit);
        assert_eq!(c.access(addrs[4]), Outcome::Miss);
        // addr 1 was LRU → evicted; addr 0 survived.
        assert_eq!(c.access(addrs[0]), Outcome::Hit);
        assert_eq!(c.access(addrs[1]), Outcome::Miss);
    }

    #[test]
    fn working_set_that_fits_has_zero_steady_state_misses() {
        let mut c = tiny();
        let lines: Vec<u64> = (0..64).map(|i| i * 64).collect(); // 4 KiB exactly
        for &a in &lines {
            c.access(a);
        }
        let cold_misses = c.stats().misses;
        assert_eq!(cold_misses, 64);
        for _ in 0..10 {
            for &a in &lines {
                c.access(a);
            }
        }
        assert_eq!(c.stats().misses, cold_misses, "no steady-state misses");
    }

    #[test]
    fn working_set_twice_capacity_thrashes_under_lru() {
        let mut c = tiny();
        // 128 lines cycling through a 64-line cache with LRU: every
        // access misses after warmup.
        let lines: Vec<u64> = (0..128).map(|i| i * 64).collect();
        for _ in 0..5 {
            for &a in &lines {
                c.access(a);
            }
        }
        let s = c.stats();
        assert!(s.miss_ratio() > 0.95, "miss ratio {}", s.miss_ratio());
    }

    #[test]
    fn resident_lines_bounded_by_capacity() {
        let mut c = tiny();
        for i in 0..10_000u64 {
            c.access(i * 64);
        }
        assert!(c.resident_lines() <= 64);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses, 0);
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.access(0), Outcome::Miss);
    }

    #[test]
    fn hierarchy_filters_misses_downward() {
        let cfg = MachineConfig::small_test();
        let mut h = CacheHierarchy::new(&cfg);
        // Stream far beyond LLC from core 0.
        for i in 0..200_000u64 {
            h.access(0, i * 64);
        }
        let s = h.stats();
        assert_eq!(s.l1.accesses, 200_000);
        assert_eq!(s.l2.accesses, s.l1.misses);
        assert_eq!(s.llc.accesses, s.l2.misses);
        assert!(s.dram_lines() > 0);
    }

    #[test]
    fn private_caches_do_not_interfere_but_llc_is_shared() {
        let cfg = MachineConfig::small_test();
        let mut h = CacheHierarchy::new(&cfg);
        // Core 0 warms a small set.
        let ws: Vec<u64> = (0..256).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &a in &ws {
                h.access(0, a);
            }
        }
        let before = h.stats().l1;
        // Core 1 streams a huge disjoint region; core 0's L1 is private
        // so a re-walk of its set still hits L1.
        for i in 0..100_000u64 {
            h.access(1, (1 << 30) + i * 64);
        }
        for &a in &ws {
            h.access(0, a);
        }
        let after = h.stats().l1;
        let new_accesses = after.accesses - before.accesses - 100_000;
        let new_misses_core0 = after.misses - before.misses
            - (h.l1[1].stats().misses); // core1's stream missed everywhere
        assert_eq!(new_accesses, 256);
        assert_eq!(new_misses_core0, 0, "core 0's private L1 was disturbed");
    }

    #[test]
    fn shared_llc_contention_is_visible() {
        let cfg = MachineConfig::small_test(); // 4 MiB LLC
        // Solo: one core loops over 3 MiB (fits LLC).
        let ws_lines = (3 * 1024 * 1024) / 64;
        let walk = |h: &mut CacheHierarchy, core: usize, base: u64| {
            for i in 0..ws_lines {
                h.access(core, base + i * 64);
            }
        };
        let mut solo = CacheHierarchy::new(&cfg);
        for _ in 0..4 {
            walk(&mut solo, 0, 0);
        }
        let solo_miss = solo.stats().llc.miss_ratio();

        // Duo: two cores loop over disjoint 3 MiB regions (6 MiB > 4 MiB).
        let mut duo = CacheHierarchy::new(&cfg);
        for _ in 0..4 {
            walk(&mut duo, 0, 0);
            walk(&mut duo, 1, 1 << 30);
        }
        let duo_miss = duo.stats().llc.miss_ratio();
        assert!(
            duo_miss > solo_miss + 0.2,
            "expected heavy contention: solo {solo_miss} duo {duo_miss}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity/assoc")]
    fn rejects_inconsistent_geometry() {
        // 1024 bytes / 64 B = 16 lines; not divisible into 3-way sets.
        SetAssocCache::new(1024, 3, 64);
    }
}
