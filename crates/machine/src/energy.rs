//! RAPL-style energy model.
//!
//! The paper measures energy through Intel RAPL, which itself *estimates*
//! energy from activity counters and static power curves. We implement
//! the same structure explicitly:
//!
//! * **PKG domain** = package idle power × wall time
//!   + per-busy-core active power × busy core-time
//!   + dynamic energy per instruction and per cache access.
//! * **DRAM domain** = background power × wall time
//!   + energy per 64-byte line transfer.
//!
//! Coefficients default to Sandy-Bridge-EN-class values (95 W TDP part)
//! and are tunable for ablation studies. The absolute Joule figures are
//! model outputs; the experiments compare *policies under the same
//! model*, which is what the paper's relative results measure.

use crate::config::MachineConfig;
use rda_metrics::{EnergyBreakdown, PerfCounters};

/// Energy model coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Package power with all cores idle (uncore, fabric, leakage), W.
    pub pkg_idle_watts: f64,
    /// Additional power per busy core, W.
    pub core_active_watts: f64,
    /// Dynamic energy per retired instruction, J.
    pub joules_per_instr: f64,
    /// Dynamic energy per L1 access (every memory op), J.
    pub joules_per_l1: f64,
    /// Dynamic energy per L2 access (every L1 miss), J.
    pub joules_per_l2: f64,
    /// Dynamic energy per LLC access, J.
    pub joules_per_llc: f64,
    /// DRAM background power (refresh, PLL), W.
    pub dram_background_watts: f64,
    /// Energy per DRAM line (64 B) transfer, J.
    pub joules_per_dram_line: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pkg_idle_watts: 18.0,
            core_active_watts: 4.5,
            joules_per_instr: 0.25e-9,
            joules_per_l1: 0.05e-9,
            joules_per_l2: 0.2e-9,
            joules_per_llc: 0.8e-9,
            dram_background_watts: 1.8,
            joules_per_dram_line: 35e-9,
        }
    }
}

impl EnergyModel {
    /// Energy for one simulation interval.
    ///
    /// * `wall_secs` — elapsed wall-clock seconds of the interval.
    /// * `busy_core_secs` — summed busy time over all cores (≤ cores ×
    ///   wall_secs).
    /// * `delta` — hardware events retired during the interval.
    pub fn interval_energy(
        &self,
        wall_secs: f64,
        busy_core_secs: f64,
        delta: &PerfCounters,
    ) -> EnergyBreakdown {
        debug_assert!(wall_secs >= 0.0 && busy_core_secs >= 0.0);
        let mut e = EnergyBreakdown::new();
        e.add_pkg(
            self.pkg_idle_watts * wall_secs
                + self.core_active_watts * busy_core_secs
                + self.joules_per_instr * delta.instructions as f64
                + self.joules_per_l1 * delta.mem_ops as f64
                + self.joules_per_l2 * delta.l1_misses as f64
                + self.joules_per_llc * delta.llc_accesses as f64,
        );
        e.add_dram(
            self.dram_background_watts * wall_secs
                + self.joules_per_dram_line * delta.llc_misses as f64,
        );
        e
    }

    /// Peak package power with every core busy (no dynamic events), W —
    /// a sanity bound used in tests.
    pub fn static_peak_watts(&self, cfg: &MachineConfig) -> f64 {
        self.pkg_idle_watts + self.core_active_watts * cfg.cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_interval_costs_only_background() {
        let m = EnergyModel::default();
        let e = m.interval_energy(2.0, 0.0, &PerfCounters::new());
        assert!((e.pkg_joules - 36.0).abs() < 1e-9);
        assert!((e.dram_joules - 3.6).abs() < 1e-9);
    }

    #[test]
    fn busy_cores_add_linear_power() {
        let m = EnergyModel::default();
        let idle = m.interval_energy(1.0, 0.0, &PerfCounters::new());
        let busy = m.interval_energy(1.0, 12.0, &PerfCounters::new());
        assert!((busy.pkg_joules - idle.pkg_joules - 54.0).abs() < 1e-9);
    }

    #[test]
    fn dram_energy_scales_with_misses() {
        let m = EnergyModel::default();
        let mut delta = PerfCounters::new();
        delta.llc_misses = 1_000_000;
        let e = m.interval_energy(0.0, 0.0, &delta);
        assert!((e.dram_joules - 0.035).abs() < 1e-9);
        assert_eq!(e.pkg_joules, 0.0);
    }

    #[test]
    fn instruction_energy_goes_to_pkg() {
        let m = EnergyModel::default();
        let mut delta = PerfCounters::new();
        delta.instructions = 4_000_000_000;
        let e = m.interval_energy(0.0, 0.0, &delta);
        assert!((e.pkg_joules - 1.0).abs() < 1e-9);
        assert_eq!(e.dram_joules, 0.0);
    }

    #[test]
    fn static_peak_is_plausible_for_a_95w_part() {
        let m = EnergyModel::default();
        let w = m.static_peak_watts(&MachineConfig::xeon_e5_2420());
        assert!(w > 50.0 && w < 95.0, "peak static {w} W");
    }

    #[test]
    fn energy_is_additive_over_intervals() {
        let m = EnergyModel::default();
        let mut d1 = PerfCounters::new();
        d1.instructions = 100;
        d1.llc_misses = 10;
        let mut d2 = PerfCounters::new();
        d2.instructions = 300;
        d2.llc_misses = 5;
        let split = m.interval_energy(1.0, 3.0, &d1) + m.interval_energy(2.0, 1.0, &d2);
        let mut combined_delta = d1;
        combined_delta += d2;
        let combined = m.interval_energy(3.0, 4.0, &combined_delta);
        assert!((split.pkg_joules - combined.pkg_joules).abs() < 1e-12);
        assert!((split.dram_joules - combined.dram_joules).abs() < 1e-12);
    }
}
