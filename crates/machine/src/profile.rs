//! Resource-access profiles — the vocabulary shared between applications,
//! the profiler, and the scheduler.
//!
//! Section 2.2 of the paper quantifies a progress period's resource usage
//! with two values: a **working-set size** and a **relative temporal
//! locality (reuse) factor**. [`ReuseLevel`] is the paper's three-level
//! categorisation (low / medium / high), and [`AccessProfile`] extends it
//! with the instruction-mix parameters the performance model needs.

use std::fmt;

/// The paper's three-level data-reuse categorisation (`REUSE_LOW`,
/// `REUSE_MED`, `REUSE_HIGH` in the Figure 4 API).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ReuseLevel {
    /// Streaming access, minimal temporal locality (BLAS-1 class).
    Low,
    /// Moderate temporal locality (BLAS-2 class).
    Medium,
    /// Heavy temporal reuse of the working set (BLAS-3 class).
    High,
}

impl ReuseLevel {
    /// Classify a measured reuse ratio (mean accesses per distinct
    /// address within a profiling window) into the paper's three levels.
    ///
    /// Thresholds follow the BLAS intuition: level-1 kernels touch each
    /// element O(1) times, level-2 O(√n)≈ a few, level-3 O(n) times.
    pub fn from_reuse_ratio(ratio: f64) -> Self {
        if ratio < 3.0 {
            ReuseLevel::Low
        } else if ratio < 16.0 {
            ReuseLevel::Medium
        } else {
            ReuseLevel::High
        }
    }

    /// All levels, in increasing order of locality.
    pub const ALL: [ReuseLevel; 3] = [ReuseLevel::Low, ReuseLevel::Medium, ReuseLevel::High];
}

impl fmt::Display for ReuseLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReuseLevel::Low => write!(f, "low"),
            ReuseLevel::Medium => write!(f, "med"),
            ReuseLevel::High => write!(f, "high"),
        }
    }
}

/// A compact description of a code region's execution behaviour, as the
/// performance model consumes it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// Working-set size in bytes (the paper's `MB(6.3)`-style argument).
    pub ws_bytes: u64,
    /// Temporal-reuse level of the working set.
    pub reuse: ReuseLevel,
    /// Fraction of instructions that are memory operations.
    pub mem_frac: f64,
    /// Fraction of instructions that are floating-point operations.
    pub flop_frac: f64,
    /// Base cycles-per-instruction with a perfectly warm L1 (captures
    /// issue width and dependency structure of the kernel).
    pub cpi_base: f64,
}

impl AccessProfile {
    /// A profile with kernel-class defaults for the given reuse level:
    /// streaming kernels issue more memory ops per instruction, high
    /// reuse kernels are FLOP-dense.
    pub fn typical(ws_bytes: u64, reuse: ReuseLevel) -> Self {
        match reuse {
            ReuseLevel::Low => AccessProfile {
                ws_bytes,
                reuse,
                mem_frac: 0.45,
                flop_frac: 0.25,
                cpi_base: 0.55,
            },
            ReuseLevel::Medium => AccessProfile {
                ws_bytes,
                reuse,
                mem_frac: 0.40,
                flop_frac: 0.35,
                cpi_base: 0.50,
            },
            ReuseLevel::High => AccessProfile {
                ws_bytes,
                reuse,
                mem_frac: 0.35,
                flop_frac: 0.45,
                cpi_base: 0.45,
            },
        }
    }

    /// Validate the profile's numeric ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.mem_frac) {
            return Err("mem_frac must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.flop_frac) {
            return Err("flop_frac must be in [0,1]".into());
        }
        if self.cpi_base <= 0.0 {
            return Err("cpi_base must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_classification_thresholds() {
        assert_eq!(ReuseLevel::from_reuse_ratio(1.0), ReuseLevel::Low);
        assert_eq!(ReuseLevel::from_reuse_ratio(2.99), ReuseLevel::Low);
        assert_eq!(ReuseLevel::from_reuse_ratio(3.0), ReuseLevel::Medium);
        assert_eq!(ReuseLevel::from_reuse_ratio(15.9), ReuseLevel::Medium);
        assert_eq!(ReuseLevel::from_reuse_ratio(16.0), ReuseLevel::High);
        assert_eq!(ReuseLevel::from_reuse_ratio(1000.0), ReuseLevel::High);
    }

    #[test]
    fn reuse_ordering_reflects_locality() {
        assert!(ReuseLevel::Low < ReuseLevel::Medium);
        assert!(ReuseLevel::Medium < ReuseLevel::High);
    }

    #[test]
    fn display_matches_table2_vocabulary() {
        assert_eq!(ReuseLevel::Low.to_string(), "low");
        assert_eq!(ReuseLevel::Medium.to_string(), "med");
        assert_eq!(ReuseLevel::High.to_string(), "high");
    }

    #[test]
    fn typical_profiles_validate() {
        for reuse in ReuseLevel::ALL {
            let p = AccessProfile::typical(1 << 20, reuse);
            assert!(p.validate().is_ok());
            assert_eq!(p.reuse, reuse);
        }
    }

    #[test]
    fn high_reuse_is_flop_denser_than_low() {
        let low = AccessProfile::typical(1 << 20, ReuseLevel::Low);
        let high = AccessProfile::typical(1 << 20, ReuseLevel::High);
        assert!(high.flop_frac > low.flop_frac);
        assert!(high.mem_frac < low.mem_frac);
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let mut p = AccessProfile::typical(1, ReuseLevel::Low);
        p.mem_frac = 1.5;
        assert!(p.validate().is_err());
        let mut p = AccessProfile::typical(1, ReuseLevel::Low);
        p.flop_frac = -0.1;
        assert!(p.validate().is_err());
        let mut p = AccessProfile::typical(1, ReuseLevel::Low);
        p.cpi_base = 0.0;
        assert!(p.validate().is_err());
    }
}
