//! Machine configuration (the paper's Table 1).


/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * 1024;
/// One gibibyte.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// Static description of the simulated machine.
///
/// [`MachineConfig::xeon_e5_2420`] reproduces Table 1 of the paper:
/// a 12-core Intel Xeon E5-2420 at 1.9 GHz with 32 KB L1-D, 256 KB
/// private L2, a 15 360 KB shared L3, and 16 GiB of DRAM. Latency,
/// bandwidth and associativity values are not in the paper; they are
/// taken from Intel documentation for Sandy-Bridge-EN class parts and
/// recorded here so experiments are reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of physical cores (the paper disables nothing; 12).
    pub cores: usize,
    /// Core clock frequency in Hz.
    pub freq_hz: f64,
    /// L1 data cache capacity per core, bytes.
    pub l1_bytes: u64,
    /// L2 private cache capacity per core, bytes.
    pub l2_bytes: u64,
    /// Shared last-level cache capacity, bytes.
    pub llc_bytes: u64,
    /// Cache line size, bytes (all levels).
    pub line_bytes: u64,
    /// L1 associativity.
    pub l1_assoc: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// LLC associativity.
    pub llc_assoc: usize,
    /// Cycles to service an L1 hit (already covered by base CPI; kept
    /// for the functional hierarchy's latency accounting).
    pub l1_hit_cycles: u64,
    /// Additional cycles for an L2 hit.
    pub l2_hit_cycles: u64,
    /// Additional cycles for an LLC hit.
    pub llc_hit_cycles: u64,
    /// Additional cycles for a DRAM access (row-buffer mix average).
    pub dram_cycles: u64,
    /// Peak DRAM bandwidth, bytes per second.
    pub dram_peak_bw: f64,
    /// Memory-level parallelism: how many DRAM misses overlap, diluting
    /// the exposed stall per miss.
    pub mlp: f64,
    /// DRAM capacity, bytes (16 GiB; only checked, never exhausted by
    /// the paper's workloads).
    pub dram_bytes: u64,
    /// Direct cost of a context switch, cycles (kernel path only; cache
    /// refill is modelled separately by the scheduler).
    pub context_switch_cycles: u64,
    /// Scheduling tick / timeslice target of the default scheduler, in
    /// cycles (CFS `sched_latency`-style knob).
    pub sched_latency_cycles: u64,
    /// Minimum timeslice granularity, cycles.
    pub min_granularity_cycles: u64,
}

impl MachineConfig {
    /// The paper's evaluation machine (Table 1).
    pub fn xeon_e5_2420() -> Self {
        let freq_hz = 1.9e9;
        MachineConfig {
            cores: 12,
            freq_hz,
            l1_bytes: 32 * KIB,
            l2_bytes: 256 * KIB,
            llc_bytes: 15_360 * KIB,
            line_bytes: 64,
            l1_assoc: 8,
            l2_assoc: 8,
            llc_assoc: 20,
            l1_hit_cycles: 4,
            l2_hit_cycles: 12,
            llc_hit_cycles: 40,
            dram_cycles: 220,
            // 3 DDR3-1333 channels: ~32 GB/s theoretical; sustained
            // random-access (cache-line granularity, mixed read/write,
            // row misses) is far lower.
            dram_peak_bw: 10.0e9,
            mlp: 1.0,
            dram_bytes: 16 * GIB,
            // ~3 us direct switch cost.
            context_switch_cycles: (3e-6 * freq_hz) as u64,
            // CFS sched_latency default 24 ms scaled: use 12 ms.
            sched_latency_cycles: (12e-3 * freq_hz) as u64,
            // 1.5 ms minimum granularity.
            min_granularity_cycles: (1.5e-3 * freq_hz) as u64,
        }
    }

    /// A small 4-core configuration for fast unit tests.
    pub fn small_test() -> Self {
        MachineConfig {
            cores: 4,
            llc_bytes: 4 * MIB,
            llc_assoc: 16,
            ..Self::xeon_e5_2420()
        }
    }

    /// DRAM peak bandwidth expressed in bytes per core-clock cycle.
    pub fn dram_bw_bytes_per_cycle(&self) -> f64 {
        self.dram_peak_bw / self.freq_hz
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be positive".into());
        }
        if self.freq_hz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        for (name, bytes, assoc) in [
            ("L1", self.l1_bytes, self.l1_assoc),
            ("L2", self.l2_bytes, self.l2_assoc),
            ("LLC", self.llc_bytes, self.llc_assoc),
        ] {
            if bytes == 0 || assoc == 0 {
                return Err(format!("{name} capacity/associativity must be positive"));
            }
            let lines = bytes / self.line_bytes;
            if lines == 0 || !lines.is_multiple_of(assoc as u64) {
                return Err(format!("{name} capacity not divisible into {assoc}-way sets"));
            }
        }
        if !(self.l1_bytes <= self.l2_bytes && self.l2_bytes <= self.llc_bytes) {
            return Err("cache capacities must be monotone".into());
        }
        if self.mlp < 1.0 {
            return Err("MLP must be >= 1".into());
        }
        if self.dram_peak_bw <= 0.0 {
            return Err("DRAM bandwidth must be positive".into());
        }
        Ok(())
    }

    /// Render the configuration as the paper's Table 1.
    pub fn to_table(&self) -> String {
        let mut t = rda_metrics::TextTable::new(vec!["component".into(), "value".into()]);
        t.add_row(vec![
            "CPU".into(),
            format!(
                "{} cores @ {:.2} GHz (modelled Xeon E5-2420 class)",
                self.cores,
                self.freq_hz / 1e9
            ),
        ]);
        t.add_row(vec!["L1-Data".into(), format!("{} KBytes", self.l1_bytes / KIB)]);
        t.add_row(vec!["L2-Private".into(), format!("{} KBytes", self.l2_bytes / KIB)]);
        t.add_row(vec!["L3-Shared".into(), format!("{} KBytes", self.llc_bytes / KIB)]);
        t.add_row(vec!["Main Memory".into(), format!("{} GiB", self.dram_bytes / GIB)]);
        t.add_row(vec![
            "DRAM peak bandwidth".into(),
            format!("{:.1} GB/s", self.dram_peak_bw / 1e9),
        ]);
        t.render()
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::xeon_e5_2420()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let m = MachineConfig::xeon_e5_2420();
        assert_eq!(m.cores, 12);
        assert!((m.freq_hz - 1.9e9).abs() < 1.0);
        assert_eq!(m.l1_bytes, 32 * KIB);
        assert_eq!(m.l2_bytes, 256 * KIB);
        assert_eq!(m.llc_bytes, 15_360 * KIB);
        assert_eq!(m.dram_bytes, 16 * GIB);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn small_test_config_is_valid() {
        assert!(MachineConfig::small_test().validate().is_ok());
    }

    #[test]
    fn validation_catches_broken_configs() {
        let mut m = MachineConfig::xeon_e5_2420();
        m.cores = 0;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::xeon_e5_2420();
        m.line_bytes = 48;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::xeon_e5_2420();
        m.l1_bytes = 3 * m.l2_bytes;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::xeon_e5_2420();
        m.mlp = 0.5;
        assert!(m.validate().is_err());
    }

    #[test]
    fn bandwidth_per_cycle() {
        let m = MachineConfig::xeon_e5_2420();
        let bpc = m.dram_bw_bytes_per_cycle();
        assert!((bpc - 10.0e9 / 1.9e9).abs() < 1e-9);
    }

    #[test]
    fn table_contains_the_paper_numbers() {
        let s = MachineConfig::xeon_e5_2420().to_table();
        for needle in ["12 cores", "1.90 GHz", "32 KBytes", "256 KBytes", "15360 KBytes", "16 GiB"] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
