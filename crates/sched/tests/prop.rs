//! Property-based tests for the CFS substrate: scheduler invariants
//! hold through arbitrary interleavings of wake / block / pick /
//! charge / yield / rebalance operations.

use proptest::prelude::*;
use rda_sched::{CfsScheduler, ProcessId, SchedConfig, TaskId, TaskState};

#[derive(Debug, Clone, Copy)]
enum Op {
    Wake(u8),
    Block(u8),
    Finish(u8),
    PickNext(u8),
    ChargeYield(u8),
    Rebalance,
    IdleSteal(u8),
}

fn arb_op(tasks: u8, cores: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..tasks).prop_map(Op::Wake),
        2 => (0..tasks).prop_map(Op::Block),
        1 => (0..tasks).prop_map(Op::Finish),
        4 => (0..cores).prop_map(Op::PickNext),
        4 => (0..cores).prop_map(Op::ChargeYield),
        1 => Just(Op::Rebalance),
        1 => (0..cores).prop_map(Op::IdleSteal),
    ]
}

fn sched(cores: usize, tasks: u8) -> (CfsScheduler, Vec<TaskId>) {
    let mut s = CfsScheduler::new(SchedConfig {
        cores,
        sched_latency_cycles: 12_000,
        min_granularity_cycles: 1_500,
    });
    let ids = (0..tasks)
        .map(|i| s.add_task(ProcessId(i as u32 / 2)))
        .collect();
    (s, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// check_invariants() holds after every operation, no matter the
    /// interleaving.
    #[test]
    fn invariants_hold_through_arbitrary_interleavings(
        cores in 1usize..5,
        ops in prop::collection::vec(arb_op(12, 4), 1..200),
    ) {
        let (mut s, ids) = sched(cores, 12);
        for op in ops {
            match op {
                Op::Wake(t) => {
                    let _ = s.wake(ids[t as usize]);
                }
                Op::Block(t) => {
                    let _ = s.block(ids[t as usize]);
                }
                Op::Finish(t) => {
                    let _ = s.finish(ids[t as usize]);
                }
                Op::PickNext(c) => {
                    let c = c as usize % cores;
                    if s.running_on(c).is_none() {
                        let _ = s.pick_next(c);
                    }
                }
                Op::ChargeYield(c) => {
                    let c = c as usize % cores;
                    if s.running_on(c).is_some() {
                        s.charge(c, 2_000);
                        s.yield_current(c);
                    }
                }
                Op::Rebalance => {
                    let _ = s.rebalance();
                }
                Op::IdleSteal(c) => {
                    let _ = s.idle_steal(c as usize % cores);
                }
            }
            if let Err(e) = s.check_invariants() {
                prop_assert!(false, "invariant violated after {op:?}: {e}");
            }
        }
    }

    /// Finished tasks stay finished; their CPU time never changes.
    #[test]
    fn finished_is_terminal(
        ops in prop::collection::vec(arb_op(6, 2), 1..100),
    ) {
        let (mut s, ids) = sched(2, 6);
        // Run task 0 briefly, then finish it.
        s.wake(ids[0]);
        let _ = s.pick_next(0);
        s.charge(0, 5_000);
        s.finish(ids[0]);
        let frozen_cycles = s.task(ids[0]).cpu_cycles;
        for op in ops {
            match op {
                Op::Wake(t) => {
                    let _ = s.wake(ids[t as usize % 6]);
                }
                Op::PickNext(c) => {
                    let c = c as usize % 2;
                    if s.running_on(c).is_none() {
                        let _ = s.pick_next(c);
                    }
                }
                Op::ChargeYield(c) => {
                    let c = c as usize % 2;
                    if s.running_on(c).is_some() {
                        s.charge(c, 1_000);
                        s.yield_current(c);
                    }
                }
                _ => {}
            }
            prop_assert_eq!(s.task(ids[0]).state, TaskState::Finished);
            prop_assert_eq!(s.task(ids[0]).cpu_cycles, frozen_cycles);
        }
    }

    /// Long-run weighted fairness on one core: equal-weight runnable
    /// tasks end up within 20 % of each other's CPU time.
    #[test]
    fn long_run_fairness(n_tasks in 2u8..6) {
        let (mut s, ids) = sched(1, n_tasks);
        for &id in &ids {
            s.wake(id);
        }
        for _ in 0..600 {
            if s.running_on(0).is_none() {
                let _ = s.pick_next(0);
            }
            let slice = s.timeslice(0);
            s.charge(0, slice);
            s.yield_current(0);
        }
        let times: Vec<u64> = ids.iter().map(|&id| s.task(id).cpu_cycles).collect();
        let max = *times.iter().max().unwrap() as f64;
        let min = *times.iter().min().unwrap() as f64;
        prop_assert!(min > 0.0, "a task starved entirely: {times:?}");
        prop_assert!(max / min < 1.2, "unfair split {times:?}");
    }
}
