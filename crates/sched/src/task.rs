//! Task control blocks.
//!
//! A **task** is the schedulable unit (a thread); a **process** groups
//! tasks that share an address space — and therefore share progress
//! periods, since the paper's working-set demands are properties of a
//! process's data.

use std::fmt;

/// Identifier of a schedulable task (thread). Dense indices into the
/// scheduler's task table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// Identifier of a process (a group of tasks sharing working sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Scheduling state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// On a runqueue, waiting for a core.
    Runnable,
    /// Currently executing on the given core.
    Running(usize),
    /// Off the runqueues (sleeping on a wait queue, or paused by the
    /// RDA waitlist).
    Blocked,
    /// Completed; never schedulable again.
    Finished,
}

impl TaskState {
    /// True for `Runnable` or `Running`.
    pub fn is_active(&self) -> bool {
        matches!(self, TaskState::Runnable | TaskState::Running(_))
    }
}

/// Scheduler-side bookkeeping for one task.
#[derive(Debug, Clone)]
pub struct Task {
    /// This task's id.
    pub id: TaskId,
    /// Owning process.
    pub process: ProcessId,
    /// Current scheduling state.
    pub state: TaskState,
    /// CFS virtual runtime, in weight-normalised cycles.
    pub vruntime: u64,
    /// CFS load weight (NICE_0 = 1024, as in Linux).
    pub weight: u32,
    /// The core this task last ran on (wake-affinity hint).
    pub last_core: Option<usize>,
    /// Total cycles of CPU this task has actually executed.
    pub cpu_cycles: u64,
}

/// The Linux NICE_0 load weight.
pub const NICE0_WEIGHT: u32 = 1024;

impl Task {
    /// A fresh runnable-when-woken task with default weight.
    pub fn new(id: TaskId, process: ProcessId) -> Self {
        Task {
            id,
            process,
            state: TaskState::Blocked,
            vruntime: 0,
            weight: NICE0_WEIGHT,
            last_core: None,
            cpu_cycles: 0,
        }
    }

    /// Advance virtual runtime for `cycles` of real execution, scaled
    /// by this task's weight exactly as CFS does:
    /// `delta_vruntime = cycles × NICE0 / weight`.
    pub fn charge(&mut self, cycles: u64) {
        self.cpu_cycles += cycles;
        self.vruntime += cycles * NICE0_WEIGHT as u64 / self.weight as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(TaskId(3).to_string(), "T3");
        assert_eq!(ProcessId(9).to_string(), "P9");
    }

    #[test]
    fn state_activity() {
        assert!(TaskState::Runnable.is_active());
        assert!(TaskState::Running(0).is_active());
        assert!(!TaskState::Blocked.is_active());
        assert!(!TaskState::Finished.is_active());
    }

    #[test]
    fn default_weight_charges_one_to_one() {
        let mut t = Task::new(TaskId(0), ProcessId(0));
        t.charge(1000);
        assert_eq!(t.vruntime, 1000);
        assert_eq!(t.cpu_cycles, 1000);
    }

    #[test]
    fn heavier_tasks_accrue_vruntime_slower() {
        let mut heavy = Task::new(TaskId(0), ProcessId(0));
        heavy.weight = 2 * NICE0_WEIGHT;
        let mut normal = Task::new(TaskId(1), ProcessId(0));
        heavy.charge(1000);
        normal.charge(1000);
        assert_eq!(heavy.vruntime, 500);
        assert_eq!(normal.vruntime, 1000);
    }
}
