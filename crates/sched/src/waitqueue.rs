//! Wait queues with wake events.
//!
//! Section 3 of the paper: *"To pause and resume threads, our scheduling
//! extension utilizes a wait queue with wake events inside the Linux
//! kernel."* This is that mechanism: a FIFO of sleeping tasks, with
//! wake-one / wake-all events. The RDA waitlist in `rda-core` and the
//! barrier support in `rda-sim` both build on it.

use crate::task::TaskId;
use std::collections::VecDeque;

/// A FIFO wait queue of blocked tasks.
#[derive(Debug, Clone, Default)]
pub struct WaitQueue {
    sleepers: VecDeque<TaskId>,
}

impl WaitQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sleeping tasks.
    pub fn len(&self) -> usize {
        self.sleepers.len()
    }

    /// True when nothing is sleeping here.
    pub fn is_empty(&self) -> bool {
        self.sleepers.is_empty()
    }

    /// Add a task to the back of the queue. The caller is responsible
    /// for blocking it in the scheduler.
    pub fn sleep(&mut self, id: TaskId) {
        debug_assert!(!self.sleepers.contains(&id), "{id} double-slept");
        self.sleepers.push_back(id);
    }

    /// Wake the longest-sleeping task, if any. The caller is
    /// responsible for waking it in the scheduler.
    pub fn wake_one(&mut self) -> Option<TaskId> {
        self.sleepers.pop_front()
    }

    /// Wake every sleeping task, in FIFO order.
    pub fn wake_all(&mut self) -> Vec<TaskId> {
        self.sleepers.drain(..).collect()
    }

    /// Remove a specific task (e.g. it was killed while sleeping).
    /// Returns true if it was present.
    pub fn cancel(&mut self, id: TaskId) -> bool {
        if let Some(pos) = self.sleepers.iter().position(|&t| t == id) {
            self.sleepers.remove(pos);
            true
        } else {
            false
        }
    }

    /// Iterate the sleepers front-to-back without waking them.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.sleepers.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_wake_order() {
        let mut q = WaitQueue::new();
        q.sleep(TaskId(1));
        q.sleep(TaskId(2));
        q.sleep(TaskId(3));
        assert_eq!(q.wake_one(), Some(TaskId(1)));
        assert_eq!(q.wake_one(), Some(TaskId(2)));
        assert_eq!(q.wake_one(), Some(TaskId(3)));
        assert_eq!(q.wake_one(), None);
    }

    #[test]
    fn wake_all_drains_in_order() {
        let mut q = WaitQueue::new();
        for i in 0..5 {
            q.sleep(TaskId(i));
        }
        let woken = q.wake_all();
        assert_eq!(woken, (0..5).map(TaskId).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_mid_queue() {
        let mut q = WaitQueue::new();
        q.sleep(TaskId(1));
        q.sleep(TaskId(2));
        q.sleep(TaskId(3));
        assert!(q.cancel(TaskId(2)));
        assert!(!q.cancel(TaskId(2)));
        assert_eq!(q.wake_all(), vec![TaskId(1), TaskId(3)]);
    }

    #[test]
    fn len_tracks_population() {
        let mut q = WaitQueue::new();
        assert!(q.is_empty());
        q.sleep(TaskId(7));
        assert_eq!(q.len(), 1);
        q.wake_one();
        assert!(q.is_empty());
    }
}
