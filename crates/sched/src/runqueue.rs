//! Per-core runqueue ordered by virtual runtime.
//!
//! Linux's CFS keeps runnable tasks in a red-black tree keyed by
//! vruntime and always runs the leftmost. A `BTreeSet<(vruntime, id)>`
//! gives the same ordering guarantees (O(log n) insert/remove, ordered
//! minimum) with far less code.

use crate::task::TaskId;
use std::collections::BTreeSet;

/// One core's queue of runnable tasks, ordered by `(vruntime, TaskId)`.
#[derive(Debug, Clone, Default)]
pub struct RunQueue {
    tree: BTreeSet<(u64, TaskId)>,
    /// Monotone floor for entry vruntimes; newly woken tasks are placed
    /// at `max(own vruntime, min_vruntime)` so sleepers cannot starve
    /// the queue when they return (CFS's `min_vruntime` rule).
    min_vruntime: u64,
}

impl RunQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued (runnable, not running) tasks.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// True when no task is queued.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The queue's vruntime floor.
    pub fn min_vruntime(&self) -> u64 {
        self.min_vruntime
    }

    /// Clamp a vruntime for enqueueing on this queue: a woken task may
    /// not undercut the queue floor.
    pub fn place_vruntime(&self, vruntime: u64) -> u64 {
        vruntime.max(self.min_vruntime)
    }

    /// Insert a task with the given (already placed) vruntime.
    pub fn enqueue(&mut self, id: TaskId, vruntime: u64) {
        let inserted = self.tree.insert((vruntime, id));
        debug_assert!(inserted, "task {id} double-enqueued");
    }

    /// Remove and return the leftmost (smallest vruntime) task.
    pub fn pop_leftmost(&mut self) -> Option<(u64, TaskId)> {
        let entry = *self.tree.iter().next()?;
        self.tree.remove(&entry);
        self.min_vruntime = self.min_vruntime.max(entry.0);
        Some(entry)
    }

    /// Leftmost entry without removing it.
    pub fn peek_leftmost(&self) -> Option<(u64, TaskId)> {
        self.tree.iter().next().copied()
    }

    /// Remove and return the *rightmost* (largest vruntime) task — load
    /// balancing steals from the far end so the victim queue's
    /// near-term schedule is undisturbed.
    pub fn pop_rightmost(&mut self) -> Option<(u64, TaskId)> {
        let entry = *self.tree.iter().next_back()?;
        self.tree.remove(&entry);
        Some(entry)
    }

    /// Remove a specific task (by its queued vruntime). Returns true if
    /// it was present.
    pub fn remove(&mut self, id: TaskId, vruntime: u64) -> bool {
        self.tree.remove(&(vruntime, id))
    }

    /// Advance the vruntime floor to at least `v` (called when the
    /// running task's vruntime moves past queued ones).
    pub fn advance_min_vruntime(&mut self, v: u64) {
        self.min_vruntime = self.min_vruntime.max(v);
    }

    /// Iterate over queued `(vruntime, TaskId)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, TaskId)> + '_ {
        self.tree.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leftmost_is_smallest_vruntime() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(1), 300);
        q.enqueue(TaskId(2), 100);
        q.enqueue(TaskId(3), 200);
        assert_eq!(q.pop_leftmost(), Some((100, TaskId(2))));
        assert_eq!(q.pop_leftmost(), Some((200, TaskId(3))));
        assert_eq!(q.pop_leftmost(), Some((300, TaskId(1))));
        assert_eq!(q.pop_leftmost(), None);
    }

    #[test]
    fn equal_vruntime_breaks_ties_by_id() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(9), 100);
        q.enqueue(TaskId(2), 100);
        assert_eq!(q.pop_leftmost(), Some((100, TaskId(2))));
    }

    #[test]
    fn min_vruntime_advances_monotonically() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(1), 500);
        q.pop_leftmost();
        assert_eq!(q.min_vruntime(), 500);
        q.enqueue(TaskId(2), 100); // a long sleeper returns
        assert_eq!(q.place_vruntime(100), 500, "sleeper clamped to floor");
        q.pop_leftmost();
        assert_eq!(q.min_vruntime(), 500, "floor never regresses");
    }

    #[test]
    fn rightmost_steal_takes_largest() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(1), 100);
        q.enqueue(TaskId(2), 900);
        assert_eq!(q.pop_rightmost(), Some((900, TaskId(2))));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_specific_task() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(1), 100);
        q.enqueue(TaskId(2), 200);
        assert!(q.remove(TaskId(1), 100));
        assert!(!q.remove(TaskId(1), 100));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = RunQueue::new();
        q.enqueue(TaskId(1), 10);
        assert_eq!(q.peek_leftmost(), Some((10, TaskId(1))));
        assert_eq!(q.len(), 1);
    }
}
