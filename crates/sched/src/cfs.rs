//! The CFS-like fair scheduler.
//!
//! This is the "Linux default scheduling policy" of the paper's
//! experiments: weighted fair scheduling by virtual runtime with
//! per-core queues, wake-time placement, preemption on vruntime
//! imbalance, and periodic load balancing. It is a passive state
//! machine — the discrete-event driver calls [`CfsScheduler::pick_next`]
//! when a core idles, [`CfsScheduler::charge`] as simulated execution
//! elapses, and [`CfsScheduler::yield_current`] at timeslice expiry.

use crate::runqueue::RunQueue;
use crate::task::{ProcessId, Task, TaskId, TaskState};
use rda_machine::MachineConfig;
use std::fmt;

/// Static scheduler parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedConfig {
    /// Number of cores (one runqueue each).
    pub cores: usize,
    /// Target latency: every runnable task should run within this span.
    pub sched_latency_cycles: u64,
    /// Minimum timeslice a task receives once scheduled.
    pub min_granularity_cycles: u64,
}

/// Typed reasons a [`SchedConfig`] is unusable.
///
/// Before this check existed, a zero-core config survived construction
/// and `select_core` later panicked deep inside wake-time placement
/// (`min().unwrap()` over an empty core range) — far from the bad
/// input. Validation moves the failure to the constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedConfigError {
    /// `cores == 0`: there is no queue to place a woken task on.
    NoCores,
    /// `sched_latency_cycles == 0`: the fairness target is degenerate.
    ZeroLatency,
    /// `min_granularity_cycles == 0`: timeslices could collapse to
    /// zero cycles.
    ZeroGranularity,
}

impl fmt::Display for SchedConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedConfigError::NoCores => write!(f, "cores must be > 0"),
            SchedConfigError::ZeroLatency => write!(f, "sched_latency_cycles must be > 0"),
            SchedConfigError::ZeroGranularity => {
                write!(f, "min_granularity_cycles must be > 0")
            }
        }
    }
}

impl std::error::Error for SchedConfigError {}

impl SchedConfig {
    /// Derive from a machine configuration.
    pub fn from_machine(m: &MachineConfig) -> Self {
        SchedConfig {
            cores: m.cores,
            sched_latency_cycles: m.sched_latency_cycles,
            min_granularity_cycles: m.min_granularity_cycles,
        }
    }

    /// Check the parameters are usable (see [`SchedConfigError`]).
    pub fn validate(&self) -> Result<(), SchedConfigError> {
        if self.cores == 0 {
            return Err(SchedConfigError::NoCores);
        }
        if self.sched_latency_cycles == 0 {
            return Err(SchedConfigError::ZeroLatency);
        }
        if self.min_granularity_cycles == 0 {
            return Err(SchedConfigError::ZeroGranularity);
        }
        Ok(())
    }
}

/// Counters describing scheduler activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// A core started running a task different from its previous one.
    pub context_switches: u64,
    /// A task started running on a different core than it last used.
    pub migrations: u64,
    /// Tasks moved by the load balancer.
    pub balance_moves: u64,
    /// Wake events processed.
    pub wakeups: u64,
    /// Idle-steal attempts whose chosen victim queue turned out empty
    /// at pop time. Diagnostic only — not part of run digests.
    pub steal_misses: u64,
}

/// The scheduler: task table + per-core queues + occupancy.
#[derive(Debug, Clone)]
pub struct CfsScheduler {
    cfg: SchedConfig,
    tasks: Vec<Task>,
    queued_core: Vec<Option<usize>>, // parallel to tasks
    queues: Vec<RunQueue>,
    running: Vec<Option<TaskId>>,
    prev_on_core: Vec<Option<TaskId>>,
    stats: SchedStats,
}

impl CfsScheduler {
    /// Create a scheduler with no tasks, validating the configuration
    /// first (see [`SchedConfigError`]).
    pub fn try_new(cfg: SchedConfig) -> Result<Self, SchedConfigError> {
        cfg.validate()?;
        Ok(CfsScheduler {
            queues: (0..cfg.cores).map(|_| RunQueue::new()).collect(),
            running: vec![None; cfg.cores],
            prev_on_core: vec![None; cfg.cores],
            cfg,
            tasks: Vec::new(),
            queued_core: Vec::new(),
            stats: SchedStats::default(),
        })
    }

    /// Create a scheduler with no tasks.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`SchedConfig::validate`];
    /// use [`Self::try_new`] to handle that as a typed error.
    pub fn new(cfg: SchedConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(s) => s,
            Err(e) => panic!("invalid scheduler config: {e}"),
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Activity counters so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Register a new task for `process`. The task starts `Blocked`;
    /// call [`Self::wake`] to make it runnable.
    pub fn add_task(&mut self, process: ProcessId) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task::new(id, process));
        self.queued_core.push(None);
        id
    }

    /// Immutable access to a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 as usize]
    }

    /// Number of registered tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// All task ids.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Set a task's CFS weight (must currently be blocked or fresh).
    pub fn set_weight(&mut self, id: TaskId, weight: u32) {
        assert!(weight > 0);
        assert!(
            !self.tasks[id.0 as usize].state.is_active(),
            "cannot reweigh an active task"
        );
        self.tasks[id.0 as usize].weight = weight;
    }

    /// The task currently running on `core`.
    pub fn running_on(&self, core: usize) -> Option<TaskId> {
        self.running[core]
    }

    /// Iterator over `(core, TaskId)` for all busy cores.
    pub fn running_tasks(&self) -> impl Iterator<Item = (usize, TaskId)> + '_ {
        self.running
            .iter()
            .enumerate()
            .filter_map(|(c, t)| t.map(|t| (c, t)))
    }

    /// Number of busy cores.
    pub fn nr_running(&self) -> usize {
        self.running.iter().filter(|t| t.is_some()).count()
    }

    /// Number of queued-but-not-running tasks.
    pub fn nr_queued(&self) -> usize {
        self.queues.iter().map(RunQueue::len).sum()
    }

    /// Tasks that are runnable or running (the set competing for the
    /// machine — what the LLC pressure model sums over).
    pub fn active_tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks
            .iter()
            .filter(|t| t.state.is_active())
            .map(|t| t.id)
    }

    /// Pick a wake-up core for a task: an idle core if one exists
    /// (preferring the task's previous core), otherwise the
    /// least-loaded queue.
    fn select_core(&self, last: Option<usize>) -> usize {
        let idle = |c: usize| self.running[c].is_none() && self.queues[c].is_empty();
        if let Some(c) = last {
            if idle(c) {
                return c;
            }
        }
        if let Some(c) = (0..self.cfg.cores).find(|&c| idle(c)) {
            return c;
        }
        let load = |c: usize| self.queues[c].len() + usize::from(self.running[c].is_some());
        if let Some(c) = last {
            let best = (0..self.cfg.cores).map(load).min().unwrap();
            if load(c) == best {
                return c;
            }
        }
        (0..self.cfg.cores).min_by_key(|&c| load(c)).unwrap()
    }

    /// Wake a blocked task: place it on a core's queue. Returns the
    /// chosen core. Waking an already-active task is a no-op returning
    /// `None`.
    pub fn wake(&mut self, id: TaskId) -> Option<usize> {
        let t = &self.tasks[id.0 as usize];
        if t.state != TaskState::Blocked {
            return None;
        }
        let last = t.last_core;
        let core = self.select_core(last);
        self.stats.wakeups += 1;
        if let Some(l) = last {
            if l != core {
                self.stats.migrations += 1;
            }
        }
        let placed = self.queues[core].place_vruntime(t.vruntime);
        let t = &mut self.tasks[id.0 as usize];
        t.vruntime = placed;
        t.state = TaskState::Runnable;
        self.queued_core[id.0 as usize] = Some(core);
        self.queues[core].enqueue(id, placed);
        Some(core)
    }

    /// Remove a task from scheduling (sleep / RDA pause). Running tasks
    /// free their core; queued tasks leave their queue. Returns the
    /// core freed, if the task was running.
    pub fn block(&mut self, id: TaskId) -> Option<usize> {
        self.deactivate(id, TaskState::Blocked)
    }

    /// Mark a task finished; it can never be woken again.
    pub fn finish(&mut self, id: TaskId) -> Option<usize> {
        self.deactivate(id, TaskState::Finished)
    }

    fn deactivate(&mut self, id: TaskId, into: TaskState) -> Option<usize> {
        let idx = id.0 as usize;
        match self.tasks[idx].state {
            TaskState::Running(core) => {
                debug_assert_eq!(self.running[core], Some(id));
                self.running[core] = None;
                self.prev_on_core[core] = Some(id);
                self.tasks[idx].state = into;
                Some(core)
            }
            TaskState::Runnable => {
                let core = self.queued_core[idx].expect("runnable task must be queued");
                let removed = self.queues[core].remove(id, self.tasks[idx].vruntime);
                debug_assert!(removed, "queued task missing from queue");
                self.queued_core[idx] = None;
                self.tasks[idx].state = into;
                None
            }
            TaskState::Blocked => {
                self.tasks[idx].state = into;
                None
            }
            TaskState::Finished => None,
        }
    }

    /// Put the task running on `core` back on that core's queue
    /// (timeslice expiry). No-op if the core is idle.
    pub fn yield_current(&mut self, core: usize) {
        if let Some(id) = self.running[core].take() {
            self.prev_on_core[core] = Some(id);
            let idx = id.0 as usize;
            let placed = self.queues[core].place_vruntime(self.tasks[idx].vruntime);
            self.tasks[idx].vruntime = placed;
            self.tasks[idx].state = TaskState::Runnable;
            self.queued_core[idx] = Some(core);
            self.queues[core].enqueue(id, placed);
        }
    }

    /// Pick the next task for an idle `core` (leftmost by vruntime).
    /// Returns `None` when the queue is empty. Panics if the core is
    /// already occupied.
    pub fn pick_next(&mut self, core: usize) -> Option<TaskId> {
        assert!(self.running[core].is_none(), "core {core} already busy");
        let (_, id) = self.queues[core].pop_leftmost()?;
        let idx = id.0 as usize;
        self.queued_core[idx] = None;
        if self.prev_on_core[core] != Some(id) {
            self.stats.context_switches += 1;
        }
        if let Some(last) = self.tasks[idx].last_core {
            if last != core {
                self.stats.migrations += 1;
            }
        }
        self.tasks[idx].state = TaskState::Running(core);
        self.tasks[idx].last_core = Some(core);
        self.running[core] = Some(id);
        Some(id)
    }

    /// Charge `cycles` of execution to the task running on `core` and
    /// advance the queue's vruntime floor.
    pub fn charge(&mut self, core: usize, cycles: u64) {
        let id = self.running[core].expect("charging an idle core");
        let idx = id.0 as usize;
        self.tasks[idx].charge(cycles);
        let cur_v = self.tasks[idx].vruntime;
        let floor = match self.queues[core].peek_leftmost() {
            Some((lv, _)) => lv.min(cur_v),
            None => cur_v,
        };
        self.queues[core].advance_min_vruntime(floor);
    }

    /// The timeslice the task running on `core` should receive:
    /// `sched_latency / nr_tasks`, floored at the minimum granularity.
    pub fn timeslice(&self, core: usize) -> u64 {
        let n = self.queues[core].len() + usize::from(self.running[core].is_some());
        let n = n.max(1) as u64;
        (self.cfg.sched_latency_cycles / n).max(self.cfg.min_granularity_cycles)
    }

    /// True when the leftmost queued task has fallen behind the running
    /// task by more than the minimum granularity — time to preempt.
    pub fn should_preempt(&self, core: usize) -> bool {
        let Some(run) = self.running[core] else {
            return false;
        };
        let Some((left_v, _)) = self.queues[core].peek_leftmost() else {
            return false;
        };
        left_v + self.cfg.min_granularity_cycles < self.tasks[run.0 as usize].vruntime
    }

    /// Idle balancing: when `core`'s queue is empty, steal the
    /// rightmost task from the longest other queue onto this core's
    /// queue. Returns true if a task was moved. (CFS's idle_balance.)
    pub fn idle_steal(&mut self, core: usize) -> bool {
        if !self.queues[core].is_empty() {
            return false;
        }
        let Some((victim, len)) = (0..self.cfg.cores)
            .filter(|&c| c != core)
            .map(|c| (c, self.queues[c].len()))
            .max_by_key(|&(_, l)| l)
        else {
            return false;
        };
        if len == 0 {
            return false;
        }
        // The victim's length was read above, but pop defensively: a
        // miss is a counted no-op, never a panic mid-balance.
        let Some((_, id)) = self.queues[victim].pop_rightmost() else {
            self.stats.steal_misses += 1;
            return false;
        };
        let idx = id.0 as usize;
        let placed = self.queues[core].place_vruntime(self.tasks[idx].vruntime);
        self.tasks[idx].vruntime = placed;
        self.queued_core[idx] = Some(core);
        self.queues[core].enqueue(id, placed);
        self.stats.balance_moves += 1;
        true
    }

    /// Number of tasks queued (not running) on one core.
    pub fn queue_len(&self, core: usize) -> usize {
        self.queues[core].len()
    }

    /// One load-balancing pass: repeatedly move a task from the busiest
    /// to the idlest queue while they differ by ≥ 2. Returns the number
    /// of tasks moved.
    pub fn rebalance(&mut self) -> usize {
        let mut moved = 0;
        loop {
            let load = |q: &RunQueue| q.len();
            let (busiest, bmax) = (0..self.cfg.cores)
                .map(|c| (c, load(&self.queues[c])))
                .max_by_key(|&(_, l)| l)
                .unwrap();
            let (idlest, imin) = (0..self.cfg.cores)
                .map(|c| (c, load(&self.queues[c]) + usize::from(self.running[c].is_some())))
                .min_by_key(|&(_, l)| l)
                .unwrap();
            if busiest == idlest || bmax < imin + 2 {
                break;
            }
            let Some((_, id)) = self.queues[busiest].pop_rightmost() else {
                break;
            };
            let idx = id.0 as usize;
            let placed = self.queues[idlest].place_vruntime(self.tasks[idx].vruntime);
            self.tasks[idx].vruntime = placed;
            self.queued_core[idx] = Some(idlest);
            self.queues[idlest].enqueue(id, placed);
            self.stats.balance_moves += 1;
            moved += 1;
        }
        moved
    }

    /// Debug invariant check: every `Runnable` task is on exactly the
    /// queue `queued_core` claims; every `Running` task occupies its
    /// core; queue entries match task vruntimes.
    pub fn check_invariants(&self) -> Result<(), String> {
        for t in &self.tasks {
            let idx = t.id.0 as usize;
            match t.state {
                TaskState::Runnable => {
                    let core = self.queued_core[idx]
                        .ok_or_else(|| format!("{} runnable but not queued", t.id))?;
                    if !self.queues[core].iter().any(|(v, id)| id == t.id && v == t.vruntime) {
                        return Err(format!("{} missing from queue {core}", t.id));
                    }
                }
                TaskState::Running(core) => {
                    if self.running[core] != Some(t.id) {
                        return Err(format!("{} claims core {core} but isn't running there", t.id));
                    }
                }
                TaskState::Blocked | TaskState::Finished => {
                    if self.queued_core[idx].is_some() {
                        return Err(format!("{} inactive but queued", t.id));
                    }
                }
            }
        }
        for (core, &occ) in self.running.iter().enumerate() {
            if let Some(id) = occ {
                if self.tasks[id.0 as usize].state != TaskState::Running(core) {
                    return Err(format!("core {core} occupancy mismatch for {id}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(cores: usize) -> CfsScheduler {
        CfsScheduler::new(SchedConfig {
            cores,
            sched_latency_cycles: 12_000,
            min_granularity_cycles: 1_500,
        })
    }

    fn spawn_wake(s: &mut CfsScheduler, n: usize) -> Vec<TaskId> {
        let ids: Vec<TaskId> = (0..n).map(|i| s.add_task(ProcessId(i as u32))).collect();
        for &id in &ids {
            s.wake(id);
        }
        ids
    }

    #[test]
    fn wake_prefers_idle_cores() {
        let mut s = sched(4);
        let ids = spawn_wake(&mut s, 4);
        // Four tasks on four cores: each queue holds exactly one.
        let mut cores: Vec<usize> = ids
            .iter()
            .map(|&id| {
                s.pick_next_all();
                match s.task(id).state {
                    TaskState::Running(c) => c,
                    TaskState::Runnable => usize::MAX,
                    _ => panic!(),
                }
            })
            .collect();
        cores.sort_unstable();
        cores.dedup();
        assert_eq!(cores.len(), 4, "tasks should spread across all cores");
        s.check_invariants().unwrap();
    }

    impl CfsScheduler {
        fn pick_next_all(&mut self) {
            for c in 0..self.cfg.cores {
                if self.running[c].is_none() {
                    let _ = self.pick_next(c);
                }
            }
        }
    }

    #[test]
    fn fairness_two_tasks_one_core() {
        let mut s = sched(1);
        let ids = spawn_wake(&mut s, 2);
        // Round-robin by slices for a while; CPU time should even out.
        for _ in 0..100 {
            let t = s.pick_next(0).unwrap();
            let slice = s.timeslice(0);
            s.charge(0, slice);
            s.yield_current(0);
            let _ = t;
        }
        let c0 = s.task(ids[0]).cpu_cycles;
        let c1 = s.task(ids[1]).cpu_cycles;
        let imbalance = (c0 as f64 - c1 as f64).abs() / (c0 + c1) as f64;
        assert!(imbalance < 0.05, "cpu split {c0}/{c1}");
        s.check_invariants().unwrap();
    }

    #[test]
    fn weighted_fairness() {
        let mut s = sched(1);
        let a = s.add_task(ProcessId(0));
        let b = s.add_task(ProcessId(1));
        s.set_weight(a, 2048); // double weight
        s.wake(a);
        s.wake(b);
        for _ in 0..300 {
            let _ = s.pick_next(0).unwrap();
            s.charge(0, 1_500);
            s.yield_current(0);
        }
        let ca = s.task(a).cpu_cycles as f64;
        let cb = s.task(b).cpu_cycles as f64;
        let ratio = ca / cb;
        assert!((ratio - 2.0).abs() < 0.25, "weighted ratio {ratio}");
    }

    #[test]
    fn timeslice_shrinks_with_load_but_floors() {
        let mut s = sched(1);
        spawn_wake(&mut s, 2);
        let _ = s.pick_next(0);
        assert_eq!(s.timeslice(0), 6_000); // latency / 2
        let mut s = sched(1);
        spawn_wake(&mut s, 100);
        let _ = s.pick_next(0);
        assert_eq!(s.timeslice(0), 1_500); // floored
    }

    #[test]
    fn preemption_when_leftmost_falls_behind() {
        let mut s = sched(1);
        let ids = spawn_wake(&mut s, 2);
        let first = s.pick_next(0).unwrap();
        assert!(!s.should_preempt(0));
        s.charge(0, 10_000); // run far past the other task
        assert!(s.should_preempt(0));
        s.yield_current(0);
        let second = s.pick_next(0).unwrap();
        assert_ne!(first, second);
        assert!(ids.contains(&second));
    }

    #[test]
    fn block_running_task_frees_core() {
        let mut s = sched(1);
        let ids = spawn_wake(&mut s, 1);
        let t = s.pick_next(0).unwrap();
        assert_eq!(s.block(t), Some(0));
        assert_eq!(s.running_on(0), None);
        assert_eq!(s.task(ids[0]).state, TaskState::Blocked);
        assert_eq!(s.pick_next(0), None);
        s.check_invariants().unwrap();
    }

    #[test]
    fn block_queued_task_removes_from_queue() {
        let mut s = sched(1);
        let ids = spawn_wake(&mut s, 2);
        let running = s.pick_next(0).unwrap();
        let queued = if running == ids[0] { ids[1] } else { ids[0] };
        assert_eq!(s.block(queued), None);
        assert_eq!(s.nr_queued(), 0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn finished_tasks_cannot_wake() {
        let mut s = sched(1);
        let ids = spawn_wake(&mut s, 1);
        let t = s.pick_next(0).unwrap();
        s.finish(t);
        assert_eq!(s.wake(ids[0]), None);
        assert_eq!(s.task(ids[0]).state, TaskState::Finished);
    }

    #[test]
    fn waking_active_task_is_noop() {
        let mut s = sched(1);
        let ids = spawn_wake(&mut s, 1);
        assert_eq!(s.wake(ids[0]), None, "already runnable");
        assert_eq!(s.nr_queued(), 1, "not double-enqueued");
    }

    #[test]
    fn sleeper_cannot_starve_queue() {
        let mut s = sched(1);
        let ids = spawn_wake(&mut s, 2);
        // Run task A long enough to build up vruntime; B sleeps.
        let _a = s.pick_next(0).unwrap();
        let b = if s.running_on(0) == Some(ids[0]) { ids[1] } else { ids[0] };
        s.block(b);
        for _ in 0..50 {
            s.charge(0, 10_000);
        }
        s.yield_current(0);
        // B returns with tiny vruntime but is clamped to the floor.
        s.wake(b);
        let vb = s.task(b).vruntime;
        assert!(vb > 0, "sleeper vruntime clamped to queue floor, got {vb}");
        s.check_invariants().unwrap();
    }

    #[test]
    fn rebalance_moves_tasks_to_idle_cores() {
        let mut s = sched(4);
        // Force everything onto core 0's queue by waking while other
        // cores are "busy" with running tasks.
        let ids = spawn_wake(&mut s, 8);
        // All 8 went to distinct idle cores first; pick them so cores
        // are busy, then wake more onto loaded queues.
        s.pick_next_all();
        let more = spawn_wake(&mut s, 8);
        let _ = (ids, more);
        // Manually empty 3 queues into queue 0 to create imbalance.
        // (simulate pathological placement)
        for c in 1..4 {
            while let Some((_, id)) = s.queues[c].pop_rightmost() {
                s.queued_core[id.0 as usize] = Some(0);
                let v = s.queues[0].place_vruntime(s.task(id).vruntime);
                s.tasks[id.0 as usize].vruntime = v;
                s.queues[0].enqueue(id, v);
            }
        }
        assert!(s.queues[0].len() >= 6);
        let moved = s.rebalance();
        assert!(moved > 0);
        let max_q = (0..4).map(|c| s.queues[c].len()).max().unwrap();
        let min_q = (0..4).map(|c| s.queues[c].len()).min().unwrap();
        // The balancer weighs running occupancy on the receiving side,
        // so queues converge to within 2 entries of each other.
        assert!(max_q - min_q <= 2, "still imbalanced: {max_q} vs {min_q}");
        s.check_invariants().unwrap();
    }

    #[test]
    fn context_switches_counted_on_occupant_change() {
        let mut s = sched(1);
        spawn_wake(&mut s, 2);
        let before = s.stats().context_switches;
        let _ = s.pick_next(0);
        s.charge(0, 5_000); // advance vruntime so the other task is leftmost
        s.yield_current(0);
        let _ = s.pick_next(0); // different task
        assert!(s.stats().context_switches >= before + 2);
    }

    #[test]
    fn resuming_same_task_is_not_a_switch() {
        let mut s = sched(1);
        spawn_wake(&mut s, 1);
        let _ = s.pick_next(0);
        s.yield_current(0);
        let switches_before = s.stats().context_switches;
        let _ = s.pick_next(0); // same task returns
        assert_eq!(s.stats().context_switches, switches_before);
    }

    #[test]
    fn active_tasks_tracks_runnable_and_running() {
        let mut s = sched(2);
        let ids = spawn_wake(&mut s, 3);
        assert_eq!(s.active_tasks().count(), 3);
        let t = s.pick_next(0).unwrap();
        assert_eq!(s.active_tasks().count(), 3);
        s.block(t);
        assert_eq!(s.active_tasks().count(), 2);
        let _ = ids;
    }

    #[test]
    fn zero_core_config_is_a_typed_error_not_a_panic() {
        // Regression: this config used to survive construction and
        // panic later inside `select_core` on the first wake.
        let cfg = SchedConfig {
            cores: 0,
            sched_latency_cycles: 12_000,
            min_granularity_cycles: 1_500,
        };
        assert_eq!(cfg.validate(), Err(SchedConfigError::NoCores));
        assert!(matches!(
            CfsScheduler::try_new(cfg),
            Err(SchedConfigError::NoCores)
        ));
    }

    #[test]
    fn degenerate_timing_configs_are_typed_errors() {
        let zero_latency = SchedConfig {
            cores: 2,
            sched_latency_cycles: 0,
            min_granularity_cycles: 1_500,
        };
        assert_eq!(
            CfsScheduler::try_new(zero_latency).unwrap_err(),
            SchedConfigError::ZeroLatency
        );
        let zero_gran = SchedConfig {
            cores: 2,
            sched_latency_cycles: 12_000,
            min_granularity_cycles: 0,
        };
        assert_eq!(
            CfsScheduler::try_new(zero_gran).unwrap_err(),
            SchedConfigError::ZeroGranularity
        );
        assert_eq!(
            SchedConfigError::NoCores.to_string(),
            "cores must be > 0"
        );
    }

    #[test]
    #[should_panic(expected = "invalid scheduler config: cores must be > 0")]
    fn new_panics_with_the_typed_message_on_zero_cores() {
        let _ = sched(0);
    }

    #[test]
    fn idle_steal_on_an_empty_system_is_a_clean_false() {
        let mut s = sched(4);
        assert!(!s.idle_steal(0), "nothing to steal anywhere");
        assert_eq!(s.stats().steal_misses, 0, "empty victims are not misses");
        assert_eq!(s.stats().balance_moves, 0);
        // A real steal still works and is counted as a move, not a miss.
        spawn_wake(&mut s, 8);
        s.pick_next_all();
        let extra = spawn_wake(&mut s, 4);
        let _ = extra;
        // Queues now hold the 4 extra tasks; drain one core and steal.
        let moved = (0..4).any(|c| s.queues[c].is_empty() && s.idle_steal(c));
        assert!(moved || s.stats().balance_moves == 0);
        assert_eq!(s.stats().steal_misses, 0);
        s.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_pick_panics() {
        let mut s = sched(1);
        spawn_wake(&mut s, 2);
        let _ = s.pick_next(0);
        let _ = s.pick_next(0);
    }
}
