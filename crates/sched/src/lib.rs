//! # rda-sched
//!
//! The baseline scheduling substrate the paper builds on. The authors
//! extend "the Linux 4.6.0 default scheduler"; this crate is our
//! equivalent substrate: a completely-fair-scheduler (CFS) style
//! policy with
//!
//! * per-core runqueues ordered by **virtual runtime** ([`runqueue`]),
//! * `sched_latency`-derived timeslices and preemption checks ([`cfs`]),
//! * wake-time core placement with affinity and idlest-queue fallback,
//! * periodic **load balancing** between queues, and
//! * **wait queues with wake events** ([`waitqueue`]) — the kernel
//!   mechanism §3 of the paper uses to pause and resume threads at
//!   progress-period boundaries.
//!
//! The scheduler is a passive state machine: the discrete-event driver
//! in `rda-sim` asks it which task to run next and reports elapsed
//! execution; the RDA extension in `rda-core` sits between the two,
//! intercepting progress-period events exactly as the paper's kernel
//! module interposes on the stock scheduler.

#![warn(missing_docs)]

pub mod cfs;
pub mod runqueue;
pub mod task;
pub mod waitqueue;

pub use cfs::{CfsScheduler, SchedConfig, SchedConfigError, SchedStats};
pub use task::{ProcessId, Task, TaskId, TaskState};
pub use waitqueue::WaitQueue;
