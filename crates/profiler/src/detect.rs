//! Progress-period detection (§2.4).
//!
//! The paper's algorithm, verbatim in structure: decompose the run into
//! consecutive windows `p0, p1, …, pn`; for each candidate start, check
//! whether the next `y/x` windows are *sufficiently similar*; if so the
//! repetition is extended window-by-window until a window with
//! significantly different behaviour is reached, and the span is
//! reported as a progress period. Scanning resumes after the detected
//! period (or one window later on failure).

use crate::window::WindowStats;

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Minimum consecutive similar windows to open a period (the
    /// paper's `y/x`).
    pub min_windows: usize,
    /// Relative tolerance for "sufficiently similar" statistics.
    pub tolerance: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_windows: 3,
            tolerance: 0.35,
        }
    }
}

/// A detected progress period: a span of similar windows.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedPeriod {
    /// First window index (inclusive).
    pub start_window: usize,
    /// Last window index (inclusive).
    pub end_window: usize,
    /// Mean working-set size over the span, bytes.
    pub mean_wss_bytes: u64,
    /// Mean footprint over the span, bytes.
    pub mean_footprint_bytes: u64,
    /// Mean reuse ratio over the span.
    pub mean_reuse_ratio: f64,
    /// The most frequent loop id across the span, if any loop back-edge
    /// was sampled (input to the loop mapper).
    pub dominant_loop: Option<u32>,
}

impl DetectedPeriod {
    /// Number of windows the period covers.
    pub fn len_windows(&self) -> usize {
        self.end_window - self.start_window + 1
    }
}

fn similar(a: &WindowStats, b: &WindowStats, tol: f64) -> bool {
    let rel = |x: f64, y: f64| {
        let m = x.abs().max(y.abs());
        if m == 0.0 {
            0.0
        } else {
            (x - y).abs() / m
        }
    };
    rel(a.wss_bytes as f64, b.wss_bytes as f64) <= tol
        && rel(a.reuse_ratio, b.reuse_ratio) <= tol
}

/// Run the detector over a window sequence.
pub fn detect_periods(windows: &[WindowStats], cfg: &DetectorConfig) -> Vec<DetectedPeriod> {
    assert!(cfg.min_windows >= 2, "a repetition needs at least 2 windows");
    let mut out = Vec::new();
    let mut i = 0;
    while i + cfg.min_windows <= windows.len() {
        // Are the next min_windows windows mutually similar to the
        // first one?
        let anchor = &windows[i];
        let opened = windows[i + 1..i + cfg.min_windows]
            .iter()
            .all(|w| similar(anchor, w, cfg.tolerance));
        if !opened {
            i += 1;
            continue;
        }
        // Extend until behaviour changes.
        let mut end = i + cfg.min_windows - 1;
        while end + 1 < windows.len() && similar(anchor, &windows[end + 1], cfg.tolerance) {
            end += 1;
        }
        out.push(summarise(&windows[i..=end]));
        i = end + 1;
    }
    out
}

fn summarise(span: &[WindowStats]) -> DetectedPeriod {
    let n = span.len() as f64;
    let mean_wss = span.iter().map(|w| w.wss_bytes).sum::<u64>() as f64 / n;
    let mean_fp = span.iter().map(|w| w.footprint_bytes).sum::<u64>() as f64 / n;
    let mean_reuse = span.iter().map(|w| w.reuse_ratio).sum::<f64>() / n;
    // Majority vote over the windows' dominant loops — robust against
    // loops with dense back-edges (an inner k-loop fires n× more
    // branches than the phase loop that actually characterises the
    // period).
    let mut votes: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for w in span {
        if let Some(id) = w.dominant_loop() {
            *votes.entry(id).or_insert(0) += 1;
        }
    }
    let dominant_loop = votes
        .iter()
        .max_by_key(|&(id, c)| (*c, std::cmp::Reverse(*id)))
        .map(|(&id, _)| id);
    DetectedPeriod {
        start_window: span[0].index,
        end_window: span[span.len() - 1].index,
        mean_wss_bytes: mean_wss.round() as u64,
        mean_footprint_bytes: mean_fp.round() as u64,
        mean_reuse_ratio: mean_reuse,
        dominant_loop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn win(index: usize, wss_kb: u64, reuse: f64, loop_id: Option<u32>) -> WindowStats {
        let mut loop_counts = HashMap::new();
        if let Some(id) = loop_id {
            loop_counts.insert(id, 10);
        }
        WindowStats {
            index,
            ops: 1000,
            footprint_bytes: wss_kb * 1024 * 2,
            wss_bytes: wss_kb * 1024,
            reuse_ratio: reuse,
            loop_counts,
        }
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            min_windows: 3,
            tolerance: 0.2,
        }
    }

    #[test]
    fn uniform_run_is_one_period() {
        let ws: Vec<WindowStats> = (0..10).map(|i| win(i, 100, 8.0, Some(1))).collect();
        let periods = detect_periods(&ws, &cfg());
        assert_eq!(periods.len(), 1);
        let p = &periods[0];
        assert_eq!(p.start_window, 0);
        assert_eq!(p.end_window, 9);
        assert_eq!(p.mean_wss_bytes, 100 * 1024);
        assert_eq!(p.dominant_loop, Some(1));
        assert_eq!(p.len_windows(), 10);
    }

    #[test]
    fn two_phases_are_split() {
        let mut ws: Vec<WindowStats> = (0..6).map(|i| win(i, 100, 8.0, Some(1))).collect();
        ws.extend((6..12).map(|i| win(i, 400, 30.0, Some(2))));
        let periods = detect_periods(&ws, &cfg());
        assert_eq!(periods.len(), 2);
        assert_eq!(periods[0].end_window, 5);
        assert_eq!(periods[1].start_window, 6);
        assert_eq!(periods[1].dominant_loop, Some(2));
    }

    #[test]
    fn jitter_within_tolerance_stays_one_period() {
        let ws: Vec<WindowStats> = (0..8)
            .map(|i| win(i, 100 + (i as u64 % 2) * 10, 8.0 + (i % 2) as f64 * 0.5, Some(1)))
            .collect();
        let periods = detect_periods(&ws, &cfg());
        assert_eq!(periods.len(), 1);
    }

    #[test]
    fn short_noise_is_not_a_period() {
        // Alternating behaviour: no min_windows consecutive similar run
        // relative to the anchor.
        let ws: Vec<WindowStats> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    win(i, 100, 8.0, None)
                } else {
                    win(i, 500, 40.0, None)
                }
            })
            .collect();
        let periods = detect_periods(&ws, &cfg());
        assert!(periods.is_empty(), "found {periods:?}");
    }

    #[test]
    fn period_shorter_than_min_windows_is_ignored() {
        let mut ws: Vec<WindowStats> = (0..2).map(|i| win(i, 100, 8.0, None)).collect();
        ws.extend((2..8).map(|i| win(i, 400, 30.0, None)));
        let periods = detect_periods(&ws, &cfg());
        // Only the long tail qualifies.
        assert_eq!(periods.len(), 1);
        assert_eq!(periods[0].start_window, 2);
    }

    #[test]
    fn scanning_resumes_after_detected_period() {
        // phase A (4) | phase B (4) | phase A (4): three periods, no
        // overlap.
        let mut ws: Vec<WindowStats> = (0..4).map(|i| win(i, 100, 8.0, Some(1))).collect();
        ws.extend((4..8).map(|i| win(i, 400, 30.0, Some(2))));
        ws.extend((8..12).map(|i| win(i, 100, 8.0, Some(1))));
        let periods = detect_periods(&ws, &cfg());
        assert_eq!(periods.len(), 3);
        assert!(periods.windows(2).all(|p| p[0].end_window < p[1].start_window));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(detect_periods(&[], &cfg()).is_empty());
        let ws = vec![win(0, 100, 8.0, None), win(1, 100, 8.0, None)];
        assert!(detect_periods(&ws, &cfg()).is_empty(), "below min_windows");
    }
}
