//! Working-set-size prediction across input scales (§4.4, Figure 12).
//!
//! The paper profiles water_nsquared and ocean_cp at 1×/2×/4×/8× input
//! sizes, observes that per-window WSS grows *sub-linearly* ("in the
//! shape of a logarithmic curve" — a consequence of fixed-size sampling
//! windows covering a shrinking fraction of the data), fits
//! `WSS = a + b·ln(input)` on the first three scales, and validates the
//! prediction on the fourth (reported accuracies 80–95 %).
//!
//! [`wss_study`] reproduces the full pipeline on our traced mini-apps.

use crate::detect::{detect_periods, DetectorConfig};
use crate::window::{windowize, WindowConfig};
use rda_metrics::regress::{clamp_samples, log_fit, prediction_accuracy, Fit, FitError};
use rda_workloads::trace::TraceRecorder;

/// One progress period's WSS across the profiled input scales.
#[derive(Debug, Clone)]
pub struct WssSeries {
    /// Label, e.g. `"Wnsq PP1"`.
    pub label: String,
    /// `(input size, measured WSS bytes)` per scale, ascending input.
    pub measured: Vec<(f64, f64)>,
    /// The logarithmic fit over the *training* scales (all but last).
    pub fit: Option<Fit>,
    /// Why the fit failed, when it did (too few scales profiled, or
    /// degenerate measurements).
    pub fit_error: Option<FitError>,
    /// Predicted WSS at the held-out (largest) input.
    pub predicted_last: Option<f64>,
    /// Prediction accuracy at the held-out input (paper's metric).
    pub accuracy: Option<f64>,
}

impl WssSeries {
    /// Build a series from measurements: fit on all but the last point,
    /// predict and score the last.
    pub fn from_measurements(label: impl Into<String>, measured: Vec<(f64, f64)>) -> Self {
        let mut s = WssSeries {
            label: label.into(),
            measured,
            fit: None,
            fit_error: None,
            predicted_last: None,
            accuracy: None,
        };
        if s.measured.len() < 3 {
            // One training point (or none) underdetermines the model.
            s.fit_error = Some(match s.measured.len() {
                0 | 1 => FitError::Empty,
                _ => FitError::SinglePoint,
            });
            return s;
        }
        // Real traces can hand us zero-WSS windows; floor them rather
        // than poison the regression.
        let train = clamp_samples(&s.measured[..s.measured.len() - 1]);
        match log_fit(&train) {
            Ok(fit) => {
                let (x_last, y_last) = *s.measured.last().unwrap();
                let pred = fit.predict_log(x_last);
                s.predicted_last = Some(pred);
                s.accuracy = Some(prediction_accuracy(pred, y_last));
                s.fit = Some(fit);
            }
            Err(e) => s.fit_error = Some(e),
        }
        s
    }
}

/// Profile a traced application at several input scales and extract the
/// top-`k` progress periods' WSS per scale.
///
/// `run` executes the app at a given input size into the recorder.
/// Returns one series per period rank (PP1 = largest mean WSS).
pub fn wss_study(
    label_prefix: &str,
    inputs: &[usize],
    top_k: usize,
    window_cfg: &WindowConfig,
    mut run: impl FnMut(usize, &TraceRecorder),
) -> Vec<WssSeries> {
    let det = DetectorConfig::default();
    // measurements[rank] = per-input WSS.
    let mut measurements: Vec<Vec<(f64, f64)>> = vec![Vec::new(); top_k];
    for &input in inputs {
        let rec = TraceRecorder::new();
        run(input, &rec);
        let trace = rec.take();
        let windows = windowize(&trace, window_cfg);
        let mut periods = detect_periods(&windows, &det);
        // Rank by mean WSS, largest first — "the top two progress
        // periods are selected".
        periods.sort_by_key(|p| std::cmp::Reverse(p.mean_wss_bytes));
        for (rank, slot) in measurements.iter_mut().enumerate() {
            if let Some(p) = periods.get(rank) {
                slot.push((input as f64, p.mean_wss_bytes as f64));
            }
        }
    }
    measurements
        .into_iter()
        .enumerate()
        .map(|(rank, m)| {
            WssSeries::from_measurements(format!("{label_prefix} PP{}", rank + 1), m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_fits_and_scores_exact_log_data() {
        let pts: Vec<(f64, f64)> = [1000.0f64, 2000.0, 4000.0, 8000.0]
            .iter()
            .map(|&x| (x, 50_000.0 + 10_000.0 * x.ln()))
            .collect();
        let s = WssSeries::from_measurements("test", pts);
        let acc = s.accuracy.unwrap();
        assert!(acc > 0.999, "accuracy {acc}");
    }

    #[test]
    fn too_few_points_yield_a_typed_fit_error() {
        let s = WssSeries::from_measurements("test", vec![(1.0, 2.0), (2.0, 3.0)]);
        assert!(s.fit.is_none());
        assert!(s.accuracy.is_none());
        // Two measurements leave one training point.
        assert_eq!(s.fit_error, Some(FitError::SinglePoint));
        let s = WssSeries::from_measurements("test", vec![]);
        assert_eq!(s.fit_error, Some(FitError::Empty));
    }

    #[test]
    fn degenerate_measurements_surface_the_fit_error() {
        // Four scales that all collapsed to the same input size: the
        // regression cannot determine a slope, and says so.
        let s = WssSeries::from_measurements(
            "test",
            vec![(100.0, 1.0), (100.0, 2.0), (100.0, 3.0), (100.0, 4.0)],
        );
        assert!(s.fit.is_none());
        assert_eq!(s.fit_error, Some(FitError::ZeroVariance { n: 3 }));
    }

    #[test]
    fn wss_study_on_synthetic_app_recovers_growth() {
        // Synthetic "app": walks over `input` lines repeatedly; WSS per
        // window saturates at the window size, growing sub-linearly
        // with input — the Figure 12 phenomenon in miniature.
        let cfg = WindowConfig {
            window_ops: 2_000,
            wss_min_accesses: 2,
            line_bytes: 64,
        };
        let series = wss_study("Synth", &[100, 200, 400, 800], 1, &cfg, |input, rec| {
            for _rep in 0..40 {
                for i in 0..input {
                    rec.load(i as u64 * 64);
                    rec.load(i as u64 * 64 + 8);
                }
            }
        });
        assert_eq!(series.len(), 1);
        let s = &series[0];
        assert_eq!(s.measured.len(), 4, "one measurement per input");
        // WSS grows with input.
        assert!(s.measured.windows(2).all(|w| w[0].1 <= w[1].1));
        // And the log fit predicts the held-out point reasonably.
        let acc = s.accuracy.expect("fit must exist");
        assert!(acc > 0.5, "accuracy {acc}");
    }
}
