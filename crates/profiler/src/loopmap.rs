//! Loop-nest mapping (the Dyninst ParseAPI stand-in, §2.4).
//!
//! *"We sample the linear memory addresses of the JMP instructions
//! retired within each window, and use Dyninst ParseAPI to locate these
//! JMPs within the loop nest structure of the binary. The outermost
//! loop that contains the identified progress period is then used as
//! the beginning and ending of the period."*
//!
//! Our traces carry loop ids directly on back-edge records; this module
//! supplies the structural half: a loop-nest tree declared by the
//! instrumented application, and the walk from a sampled loop to its
//! outermost enclosing loop (stopping below a declared *function root*,
//! which models the paper's per-function period placement).

use std::collections::HashMap;

/// A loop-nest forest: each loop has an optional parent loop.
#[derive(Debug, Clone, Default)]
pub struct LoopNest {
    parent: HashMap<u32, Option<u32>>,
}

impl LoopNest {
    /// Empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a top-level loop (directly inside a function body).
    pub fn add_root(&mut self, id: u32) -> &mut Self {
        self.declare(id, None)
    }

    /// Declare a loop nested inside `parent`.
    pub fn add_child(&mut self, id: u32, parent: u32) -> &mut Self {
        assert!(
            self.parent.contains_key(&parent),
            "parent loop {parent} not declared"
        );
        self.declare(id, Some(parent))
    }

    fn declare(&mut self, id: u32, parent: Option<u32>) -> &mut Self {
        let prev = self.parent.insert(id, parent);
        assert!(prev.is_none(), "loop {id} declared twice");
        self
    }

    /// Is `id` a declared loop?
    pub fn contains(&self, id: u32) -> bool {
        self.parent.contains_key(&id)
    }

    /// Nesting depth of a loop (roots have depth 0).
    pub fn depth(&self, id: u32) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(Some(p)) = self.parent.get(&cur) {
            d += 1;
            cur = *p;
        }
        d
    }

    /// The outermost loop enclosing `id` (possibly `id` itself).
    /// Returns `None` for undeclared loops.
    pub fn outermost(&self, id: u32) -> Option<u32> {
        if !self.parent.contains_key(&id) {
            return None;
        }
        let mut cur = id;
        while let Some(&Some(p)) = self.parent.get(&cur) {
            cur = p;
        }
        Some(cur)
    }

    /// All declared loops on the path from `id` to its root, inner to
    /// outer.
    pub fn ancestry(&self, id: u32) -> Vec<u32> {
        let mut path = Vec::new();
        if !self.parent.contains_key(&id) {
            return path;
        }
        let mut cur = id;
        path.push(cur);
        while let Some(&Some(p)) = self.parent.get(&cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Number of declared loops.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when no loops are declared.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

/// The loop nest of the traced dgemm kernel (`i → j → k`), matching the
/// loop ids `rda_workloads::blas::level3::dgemm_traced` emits.
pub fn dgemm_loop_nest() -> LoopNest {
    let mut nest = LoopNest::new();
    nest.add_root(0);
    nest.add_child(1, 0);
    nest.add_child(2, 1);
    nest
}

/// The loop nest of the traced water-nsquared timestep: three sibling
/// phase loops directly inside the timestep function.
pub fn water_loop_nest() -> LoopNest {
    use rda_workloads::splash::water::loops;
    let mut nest = LoopNest::new();
    nest.add_root(loops::PREDICT);
    nest.add_root(loops::INTERF);
    nest.add_root(loops::CORRECT);
    nest
}

/// The loop nest of the traced ocean sweep: red/black/residual row
/// loops as siblings.
pub fn ocean_loop_nest() -> LoopNest {
    use rda_workloads::splash::ocean::loops;
    let mut nest = LoopNest::new();
    nest.add_root(loops::RED);
    nest.add_root(loops::BLACK);
    nest.add_root(loops::RESIDUAL);
    nest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outermost_walks_to_the_root() {
        let nest = dgemm_loop_nest();
        assert_eq!(nest.outermost(2), Some(0));
        assert_eq!(nest.outermost(1), Some(0));
        assert_eq!(nest.outermost(0), Some(0));
        assert_eq!(nest.outermost(99), None);
    }

    #[test]
    fn depth_and_ancestry() {
        let nest = dgemm_loop_nest();
        assert_eq!(nest.depth(0), 0);
        assert_eq!(nest.depth(2), 2);
        assert_eq!(nest.ancestry(2), vec![2, 1, 0]);
        assert!(nest.ancestry(42).is_empty());
    }

    #[test]
    fn sibling_roots_map_to_themselves() {
        let nest = water_loop_nest();
        use rda_workloads::splash::water::loops;
        assert_eq!(nest.outermost(loops::INTERF), Some(loops::INTERF));
        assert_eq!(nest.depth(loops::PREDICT), 0);
        assert_eq!(nest.len(), 3);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn double_declaration_panics() {
        let mut nest = LoopNest::new();
        nest.add_root(1);
        nest.add_root(1);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn child_of_unknown_parent_panics() {
        let mut nest = LoopNest::new();
        nest.add_child(2, 1);
    }
}
