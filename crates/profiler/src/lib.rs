//! # rda-profiler
//!
//! The paper's "preliminary profiler" (§2.4), built on the trace layer
//! of `rda-workloads` instead of Intel PIN:
//!
//! 1. [`window`] — decompose a memory trace into fixed-size sampling
//!    windows and compute, per window, the **footprint** (distinct
//!    cache lines), the **working-set size** (lines accessed at least a
//!    configured number of times), and the **reuse ratio** (mean
//!    accesses per distinct line).
//! 2. [`detect`] — the paper's repetition detector: find runs of
//!    consecutive windows with sufficiently similar statistics, extend
//!    them until behaviour changes, and emit the detected **progress
//!    periods**.
//! 3. [`loopmap`] — the Dyninst-ParseAPI stand-in: map each detected
//!    period to the loop-nest structure via the sampled loop back-edge
//!    records, widening to the outermost enclosing loop.
//! 4. [`annotate`] — convert detected periods into `pp_begin`-ready
//!    annotations (working-set bytes + reuse level).
//! 5. [`wss`] — the Figure 12 study: profile an application at several
//!    input scales, fit `WSS = a + b·ln(input)` on the first scales,
//!    and report prediction accuracy on the last.

#![warn(missing_docs)]

pub mod annotate;
pub mod detect;
pub mod loopmap;
pub mod window;
pub mod wss;

pub use annotate::PpAnnotation;
pub use detect::{detect_periods, DetectedPeriod, DetectorConfig};
pub use loopmap::LoopNest;
pub use window::{windowize, WindowConfig, WindowStats};
