//! From detected periods to `pp_begin`-ready annotations.
//!
//! The last profiler step (§2.4): *"The resource demands for each
//! progress period are set by averaging the metrics from all windows
//! that make up the progress period"*, the reuse ratio is bucketed into
//! the three API levels, and the period is anchored at the outermost
//! enclosing loop.

use crate::detect::DetectedPeriod;
use crate::loopmap::LoopNest;
use rda_core::{PpDemand, SiteId};
use rda_machine::ReuseLevel;

/// A ready-to-insert progress-period annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpAnnotation {
    /// The static site (outermost enclosing loop) to bracket.
    pub site: SiteId,
    /// Declared working-set size, bytes.
    pub ws_bytes: u64,
    /// Declared reuse level.
    pub reuse: ReuseLevel,
    /// Span of the period in the profiled run, in windows.
    pub windows: (usize, usize),
}

impl PpAnnotation {
    /// The demand this annotation declares at `pp_begin`.
    pub fn demand(&self) -> PpDemand {
        PpDemand::llc(self.ws_bytes, self.reuse)
    }
}

/// Convert detected periods into annotations, mapping each period's
/// dominant loop to its outermost enclosing loop. Periods whose
/// dominant loop is unknown to the nest (or that sampled no loops at
/// all) are dropped — the paper requires a static code anchor to place
/// the API calls.
pub fn annotate(periods: &[DetectedPeriod], nest: &LoopNest) -> Vec<PpAnnotation> {
    periods
        .iter()
        .filter_map(|p| {
            let site = nest.outermost(p.dominant_loop?)?;
            Some(PpAnnotation {
                site: SiteId(site),
                ws_bytes: p.mean_wss_bytes,
                reuse: ReuseLevel::from_reuse_ratio(p.mean_reuse_ratio),
                windows: (p.start_window, p.end_window),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopmap::dgemm_loop_nest;

    fn period(loop_id: Option<u32>, wss: u64, reuse: f64) -> DetectedPeriod {
        DetectedPeriod {
            start_window: 0,
            end_window: 5,
            mean_wss_bytes: wss,
            mean_footprint_bytes: wss * 2,
            mean_reuse_ratio: reuse,
            dominant_loop: loop_id,
        }
    }

    #[test]
    fn inner_loop_period_is_anchored_at_outermost() {
        let nest = dgemm_loop_nest();
        let anns = annotate(&[period(Some(2), 1 << 20, 50.0)], &nest);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].site, SiteId(0), "anchored at the i-loop");
        assert_eq!(anns[0].reuse, ReuseLevel::High);
        assert_eq!(anns[0].demand().amount, 1 << 20);
    }

    #[test]
    fn reuse_buckets_follow_ratio() {
        let nest = dgemm_loop_nest();
        let anns = annotate(
            &[
                period(Some(0), 100, 1.5),
                period(Some(0), 100, 8.0),
                period(Some(0), 100, 100.0),
            ],
            &nest,
        );
        assert_eq!(anns[0].reuse, ReuseLevel::Low);
        assert_eq!(anns[1].reuse, ReuseLevel::Medium);
        assert_eq!(anns[2].reuse, ReuseLevel::High);
    }

    #[test]
    fn periods_without_loop_anchor_are_dropped() {
        let nest = dgemm_loop_nest();
        let anns = annotate(
            &[period(None, 100, 5.0), period(Some(77), 100, 5.0)],
            &nest,
        );
        assert!(anns.is_empty());
    }
}
