//! Fixed-size sampling windows (§2.4).
//!
//! *"An array is used to keep track of the number of times each unique
//! address is accessed. The array is reset to be empty at the beginning
//! of each sampling window. Its new size at the end of the window is
//! then calculated as the memory footprint of the window. The working
//! set size of the window is calculated as the number of entries in the
//! array that are accessed at least a pre-configured number of times,
//! and the average number of times each entry is accessed is calculated
//! as its reuse ratio."*
//!
//! We track addresses at cache-line granularity (64 B), which is what
//! the cache actually allocates, and report footprint/WSS in bytes.

use rda_workloads::{MemoryTrace, TraceRecord};
use std::collections::HashMap;

/// Windowing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Memory operations per window (the paper's window of `x`
    /// instructions; we count the traced memory instructions).
    pub window_ops: usize,
    /// Minimum accesses for a line to count toward the working set.
    pub wss_min_accesses: u32,
    /// Line granularity in bytes.
    pub line_bytes: u64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window_ops: 10_000,
            wss_min_accesses: 2,
            line_bytes: 64,
        }
    }
}

/// Statistics of one sampling window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Index of the window within the trace.
    pub index: usize,
    /// Memory operations in the window.
    pub ops: usize,
    /// Footprint: bytes of distinct lines touched.
    pub footprint_bytes: u64,
    /// Working set: bytes of lines accessed ≥ the configured minimum.
    pub wss_bytes: u64,
    /// Mean accesses per distinct line.
    pub reuse_ratio: f64,
    /// Loop back-edge counts seen in this window, by loop id.
    pub loop_counts: HashMap<u32, u64>,
}

impl WindowStats {
    /// The loop id with the most back-edges in this window, if any.
    pub fn dominant_loop(&self) -> Option<u32> {
        self.loop_counts
            .iter()
            .max_by_key(|&(id, count)| (*count, std::cmp::Reverse(*id)))
            .map(|(&id, _)| id)
    }
}

/// Split a trace into fixed-size windows and compute per-window
/// statistics. The final partial window is emitted if it holds at least
/// half a window of operations (fragments shorter than that carry too
/// little signal).
pub fn windowize(trace: &MemoryTrace, cfg: &WindowConfig) -> Vec<WindowStats> {
    assert!(cfg.window_ops > 0, "window size must be positive");
    let mut out = Vec::new();
    let mut counts: HashMap<u64, u32> = HashMap::new();
    let mut loops: HashMap<u32, u64> = HashMap::new();
    let mut ops = 0usize;
    let mut index = 0usize;

    let flush = |counts: &mut HashMap<u64, u32>,
                     loops: &mut HashMap<u32, u64>,
                     ops: &mut usize,
                     index: &mut usize,
                     out: &mut Vec<WindowStats>| {
        let distinct = counts.len() as u64;
        let hot = counts
            .values()
            .filter(|&&c| c >= cfg.wss_min_accesses)
            .count() as u64;
        let total: u64 = counts.values().map(|&c| c as u64).sum();
        out.push(WindowStats {
            index: *index,
            ops: *ops,
            footprint_bytes: distinct * cfg.line_bytes,
            wss_bytes: hot * cfg.line_bytes,
            reuse_ratio: if distinct == 0 {
                0.0
            } else {
                total as f64 / distinct as f64
            },
            loop_counts: std::mem::take(loops),
        });
        counts.clear();
        *ops = 0;
        *index += 1;
    };

    for rec in trace.records() {
        match rec {
            TraceRecord::Load(a) | TraceRecord::Store(a) => {
                *counts.entry(a / cfg.line_bytes).or_insert(0) += 1;
                ops += 1;
                if ops == cfg.window_ops {
                    flush(&mut counts, &mut loops, &mut ops, &mut index, &mut out);
                }
            }
            TraceRecord::LoopBranch(id) => {
                *loops.entry(*id).or_insert(0) += 1;
            }
        }
    }
    if ops >= cfg.window_ops / 2 && ops > 0 {
        flush(&mut counts, &mut loops, &mut ops, &mut index, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_workloads::trace::TraceRecorder;

    fn cfg(window_ops: usize) -> WindowConfig {
        WindowConfig {
            window_ops,
            wss_min_accesses: 2,
            line_bytes: 64,
        }
    }

    #[test]
    fn footprint_counts_distinct_lines() {
        let rec = TraceRecorder::new();
        // 4 accesses to 2 lines (0 and 64..127).
        rec.load(0);
        rec.load(8);
        rec.load(64);
        rec.load(70);
        let w = windowize(&rec.take(), &cfg(4));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].footprint_bytes, 2 * 64);
        assert_eq!(w[0].reuse_ratio, 2.0);
        // Both lines hit twice → both in the WSS.
        assert_eq!(w[0].wss_bytes, 2 * 64);
    }

    #[test]
    fn wss_excludes_cold_lines() {
        let rec = TraceRecorder::new();
        rec.load(0);
        rec.load(0);
        rec.load(0);
        rec.load(640); // touched once: footprint yes, WSS no
        let w = windowize(&rec.take(), &cfg(4));
        assert_eq!(w[0].footprint_bytes, 128);
        assert_eq!(w[0].wss_bytes, 64);
    }

    #[test]
    fn windows_split_at_fixed_op_counts() {
        let rec = TraceRecorder::new();
        for i in 0..25u64 {
            rec.load(i * 64);
        }
        let w = windowize(&rec.take(), &cfg(10));
        // 10 + 10 + 5 (final fragment ≥ half window).
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].ops, 10);
        assert_eq!(w[2].ops, 5);
        assert_eq!(w[2].index, 2);
    }

    #[test]
    fn tiny_final_fragment_is_dropped() {
        let rec = TraceRecorder::new();
        for i in 0..12u64 {
            rec.load(i * 64);
        }
        let w = windowize(&rec.take(), &cfg(10));
        assert_eq!(w.len(), 1, "2-op fragment below half window dropped");
    }

    #[test]
    fn counts_reset_between_windows() {
        let rec = TraceRecorder::new();
        // Window 1: line 0 twice. Window 2: line 0 once + line 64 once.
        rec.load(0);
        rec.load(0);
        rec.load(0);
        rec.load(64);
        let w = windowize(&rec.take(), &cfg(2));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].wss_bytes, 64);
        assert_eq!(w[1].wss_bytes, 0, "accesses must not carry across windows");
    }

    #[test]
    fn loop_branches_attach_to_their_window() {
        let rec = TraceRecorder::new();
        rec.load(0);
        rec.loop_branch(3);
        rec.loop_branch(3);
        rec.load(64);
        // window boundary
        rec.load(128);
        rec.loop_branch(5);
        rec.load(192);
        let w = windowize(&rec.take(), &cfg(2));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].dominant_loop(), Some(3));
        assert_eq!(w[1].dominant_loop(), Some(5));
        assert_eq!(w[0].loop_counts[&3], 2);
    }

    #[test]
    fn empty_trace_yields_no_windows() {
        let rec = TraceRecorder::new();
        assert!(windowize(&rec.take(), &cfg(10)).is_empty());
    }

    #[test]
    fn dominant_loop_breaks_ties_deterministically() {
        let rec = TraceRecorder::new();
        rec.loop_branch(9);
        rec.loop_branch(2);
        rec.load(0);
        rec.load(64);
        let w = windowize(&rec.take(), &cfg(2));
        // Equal counts → smallest id wins (deterministic).
        assert_eq!(w[0].dominant_loop(), Some(2));
    }
}
