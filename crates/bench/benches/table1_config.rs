//! Bench: Table 1 regeneration (machine-config construction,
//! validation, rendering).
use criterion::{criterion_group, criterion_main, Criterion};
use rda_machine::MachineConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("table1/construct_validate", |b| {
        b.iter(|| {
            let m = MachineConfig::xeon_e5_2420();
            m.validate().unwrap();
            black_box(m)
        })
    });
    c.bench_function("table1/render", |b| {
        let m = MachineConfig::xeon_e5_2420();
        b.iter(|| black_box(m.to_table()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
