//! Bench: Figure 8 regeneration on a reduced workload (DRAM-energy
//! accounting path).
use criterion::{criterion_group, criterion_main, Criterion};
use rda_core::{mb, PolicyKind, SiteId};
use rda_machine::ReuseLevel;
use rda_sim::{SimConfig, SystemSim};
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};
use std::hint::black_box;

fn mini_blas3() -> WorkloadSpec {
    WorkloadSpec {
        name: "mini-blas3".into(),
        processes: (0..12)
            .map(|i| ProcessProgram {
                threads: 1,
                phases: vec![Phase::tracked(
                    "dgemm",
                    8_000_000,
                    mb([1.6, 2.4, 2.4, 3.2][i % 4]),
                    ReuseLevel::High,
                    SiteId((i % 4) as u32),
                )],
            })
            .collect(),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for policy in [PolicyKind::DefaultOnly, PolicyKind::Strict] {
        g.bench_function(format!("dram_energy_run/{policy}"), |b| {
            let spec = mini_blas3();
            b.iter(|| {
                let r = SystemSim::new(SimConfig::paper_default(policy), &spec)
                    .run()
                    .unwrap();
                black_box(r.measurement.dram_joules())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
