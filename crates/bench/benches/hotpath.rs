//! Bench: the scheduler's hot paths — admission throughput, waitlist
//! churn under pressure, full sweep-cell throughput, and the overhead
//! of the observability trace layer. The kernels live in
//! `rda_bench::hotbench` and are shared with the `bench_report` binary
//! that writes the committed `BENCH_pr5.json` baseline.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rda_bench::hotbench::{admission_ops, churn_ops, sweep_cell};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    g.sample_size(20);
    // pp_begin/pp_end pairs on the fits-and-runs fast path.
    g.bench_function("admission_10k_pairs", |b| {
        b.iter(|| black_box(admission_ops(10_000)))
    });
    // Saturated-LLC churn: push, drain, aging, exit cancellation.
    g.bench_function("waitlist_churn_2k_rounds", |b| {
        b.iter(|| black_box(churn_ops(2_000)))
    });
    g.finish();

    let mut g = c.benchmark_group("sweep_cell");
    g.sample_size(10);
    // One full Ocean_cp × Strict simulation, trace layer off vs on.
    g.bench_function("ocean_cp_strict/trace_off", |b| {
        b.iter(|| black_box(sweep_cell(false)))
    });
    g.bench_function("ocean_cp_strict/trace_on", |b| {
        b.iter(|| black_box(sweep_cell(true)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
