//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **Oversubscription factor** — the paper fixes `x = 2`; sweep
//!   `x ∈ {1.0, 1.5, 2.0, 3.0}` on a contended workload (§3.3 says the
//!   policy is reconfigurable).
//! * **Scheduling-predicate throughput** — Algorithm 1 evaluations per
//!   second (the kernel hot path).
//! * **Extension begin/end throughput** — full progress-monitor
//!   round-trips with and without the fast path.
//! * **Functional cache hierarchy** — accesses per second of the
//!   trace-replay validator.
//! * **CFS substrate** — pick/charge/yield cycle throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use rda_core::{mb, PolicyKind, PpDemand, RdaConfig, RdaExtension, SiteId};
use rda_core::monitor::ResourceMonitor;
use rda_core::predicate::try_schedule;
use rda_machine::cache::CacheHierarchy;
use rda_machine::{MachineConfig, ReuseLevel};
use rda_sched::{CfsScheduler, ProcessId, SchedConfig};
use rda_sim::{SimConfig, SystemSim};
use rda_simcore::SimTime;
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};
use std::hint::black_box;

fn contended_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "contended".into(),
        processes: (0..10)
            .map(|_| ProcessProgram {
                threads: 2,
                phases: vec![Phase::tracked(
                    "hot",
                    6_000_000,
                    mb(4.0),
                    ReuseLevel::High,
                    SiteId(0),
                )],
            })
            .collect(),
    }
}

fn oversubscription_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/oversubscription");
    g.sample_size(10);
    for factor in [1.0f64, 1.5, 2.0, 3.0] {
        g.bench_function(format!("x{factor}"), |b| {
            let spec = contended_spec();
            let policy = PolicyKind::Compromise { factor };
            b.iter(|| {
                let r = SystemSim::new(SimConfig::paper_default(policy), &spec)
                    .run()
                    .unwrap();
                black_box((r.measurement.wall_secs, r.measurement.system_joules()))
            })
        });
    }
    g.finish();
}

fn predicate_throughput(c: &mut Criterion) {
    let mut monitor = ResourceMonitor::new(mb(15.0), u64::MAX / 2);
    monitor.increment_load(rda_core::Resource::Llc, mb(9.0));
    let demand = PpDemand::llc(mb(3.0), ReuseLevel::High);
    for policy in [PolicyKind::Strict, PolicyKind::compromise_default()] {
        c.bench_function(format!("ablation/predicate/{policy}"), |b| {
            b.iter(|| black_box(try_schedule(&demand, &monitor, &policy)))
        });
    }
}

fn extension_roundtrip(c: &mut Criterion) {
    // Slow path: alternate two sites so the decision cache never warms.
    c.bench_function("ablation/extension/begin_end_slow", |b| {
        let mut ext = RdaExtension::new(RdaConfig::for_machine(
            &MachineConfig::xeon_e5_2420(),
            PolicyKind::Strict,
        ));
        let d = PpDemand::llc(mb(2.0), ReuseLevel::High);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000; // stays past the freshness horizon
            let site = SiteId((t / 1_000_000 % 2) as u32);
            match ext.pp_begin(ProcessId(0), site, d, SimTime::from_cycles(t)) {
                Ok(rda_core::BeginOutcome::Run { pp, .. }) => {
                    black_box(ext.pp_end(pp, SimTime::from_cycles(t + 10)).unwrap());
                }
                _ => unreachable!(),
            }
        })
    });
    // Fast path: repeat the same site within the freshness horizon.
    c.bench_function("ablation/extension/begin_end_fast", |b| {
        let mut ext = RdaExtension::new(RdaConfig::for_machine(
            &MachineConfig::xeon_e5_2420(),
            PolicyKind::Strict,
        ));
        let d = PpDemand::llc(mb(2.0), ReuseLevel::High);
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            match ext.pp_begin(ProcessId(0), SiteId(0), d, SimTime::from_cycles(t)) {
                Ok(rda_core::BeginOutcome::Run { pp, .. }) => {
                    black_box(ext.pp_end(pp, SimTime::from_cycles(t + 10)).unwrap());
                }
                _ => unreachable!(),
            }
        })
    });
}

fn cache_hierarchy_throughput(c: &mut Criterion) {
    c.bench_function("ablation/cache_hierarchy/streaming_access", |b| {
        let mut h = CacheHierarchy::new(&MachineConfig::small_test());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64);
            h.access(0, addr % (32 * 1024 * 1024));
            black_box(())
        })
    });
}

fn cfs_cycle(c: &mut Criterion) {
    c.bench_function("ablation/cfs/pick_charge_yield", |b| {
        let mut s = CfsScheduler::new(SchedConfig::from_machine(&MachineConfig::xeon_e5_2420()));
        for i in 0..24 {
            let t = s.add_task(ProcessId(i));
            s.wake(t);
        }
        b.iter(|| {
            for core in 0..12 {
                if s.running_on(core).is_none() {
                    let _ = s.pick_next(core);
                }
                if s.running_on(core).is_some() {
                    s.charge(core, 1_000);
                    s.yield_current(core);
                }
            }
            black_box(s.nr_queued())
        })
    });
}

criterion_group!(
    benches,
    oversubscription_sweep,
    predicate_throughput,
    extension_roundtrip,
    cache_hierarchy_throughput,
    cfs_cycle
);
criterion_main!(benches);
