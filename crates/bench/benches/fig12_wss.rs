//! Bench: Figure 12 regeneration (trace → windows → detection →
//! regression pipeline on a small water input ladder).
use criterion::{criterion_group, criterion_main, Criterion};
use rda_profiler::window::{windowize, WindowConfig};
use rda_profiler::wss::wss_study;
use rda_workloads::splash::water;
use rda_workloads::trace::TraceRecorder;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("wss_pipeline/water_tiny_ladder", |b| {
        let cfg = WindowConfig {
            window_ops: 5_000,
            wss_min_accesses: 2,
            line_bytes: 64,
        };
        b.iter(|| {
            black_box(wss_study("W", &[40, 80, 160, 320], 1, &cfg, |m, rec| {
                water::run_nsquared_traced(m, 0.4, rec);
            }))
        })
    });
    g.finish();

    // Window statistics throughput on a fixed trace.
    let rec = TraceRecorder::new();
    water::run_nsquared_traced(200, 0.4, &rec);
    let trace = rec.take();
    let cfg = WindowConfig::default();
    c.bench_function("fig12/windowize", |b| {
        b.iter(|| black_box(windowize(&trace, &cfg)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
