//! Bench: Figure 13 regeneration (reduced interference matrix).
use criterion::{criterion_group, criterion_main, Criterion};
use rda_sim::concurrency::interference_study_for;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.bench_function("interference/512mol_1_6", |b| {
        b.iter(|| black_box(interference_study_for(&[512], &[1, 6])))
    });
    g.bench_function("interference/8000mol_6_12", |b| {
        b.iter(|| black_box(interference_study_for(&[8000], &[6, 12])))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
