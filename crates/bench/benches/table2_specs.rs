//! Bench: Table 2 regeneration (workload-spec construction for all
//! eight workloads and the table renderer).
use criterion::{criterion_group, criterion_main, Criterion};
use rda_workloads::spec;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("table2/build_all_workloads", |b| {
        b.iter(|| black_box(spec::all_workloads()))
    });
    c.bench_function("table2/render", |b| b.iter(|| black_box(spec::table2())));
}

criterion_group!(benches, bench);
criterion_main!(benches);
