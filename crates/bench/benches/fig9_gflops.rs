//! Bench: Figure 9 regeneration on a reduced workload (GFLOPS
//! measurement), plus the underlying co-run rate solver.
use criterion::{criterion_group, criterion_main, Criterion};
use rda_core::{mb, PolicyKind, SiteId};
use rda_machine::{AccessProfile, MachineConfig, PerfModel, ReuseLevel};
use rda_sim::{SimConfig, SystemSim};
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let spec = WorkloadSpec {
        name: "mini-ray".into(),
        processes: (0..8)
            .map(|_| ProcessProgram {
                threads: 4,
                phases: vec![Phase::tracked("render", 5_000_000, mb(5.1), ReuseLevel::High, SiteId(0))],
            })
            .collect(),
    };
    g.bench_function("gflops_run/strict", |b| {
        b.iter(|| {
            let r = SystemSim::new(SimConfig::paper_default(PolicyKind::Strict), &spec)
                .run()
                .unwrap();
            black_box(r.measurement.gflops())
        })
    });
    g.finish();

    // The hot inner kernel of every figure: the co-run rate solver.
    let model = PerfModel::new(MachineConfig::xeon_e5_2420());
    let entries: Vec<(AccessProfile, u64)> = (0..12)
        .map(|_| {
            let p = AccessProfile::typical(mb(5.1), ReuseLevel::High);
            (p, mb(1.3))
        })
        .collect();
    c.bench_function("fig9/solve_corun_12way", |b| {
        b.iter(|| black_box(model.solve_corun(&entries)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
