//! Bench: Figure 7 regeneration on a reduced workload (system-energy
//! measurement of a gated vs ungated co-schedule).
use criterion::{criterion_group, criterion_main, Criterion};
use rda_core::{mb, PolicyKind, SiteId};
use rda_machine::ReuseLevel;
use rda_sim::{SimConfig, SystemSim};
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};
use std::hint::black_box;

fn mini_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "mini-wnsq".into(),
        processes: (0..6)
            .map(|_| ProcessProgram {
                threads: 2,
                phases: vec![Phase::tracked("interf", 10_000_000, mb(3.6), ReuseLevel::High, SiteId(0))],
            })
            .collect(),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for policy in [PolicyKind::DefaultOnly, PolicyKind::Strict] {
        g.bench_function(format!("energy_run/{policy}"), |b| {
            let spec = mini_spec();
            b.iter(|| {
                let r = SystemSim::new(SimConfig::paper_default(policy), &spec)
                    .run()
                    .unwrap();
                black_box(r.measurement.system_joules())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
