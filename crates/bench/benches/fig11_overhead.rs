//! Bench: Figure 11 regeneration (granularity study at a reduced trip
//! count) and the fast-path decision cache itself.
use criterion::{criterion_group, criterion_main, Criterion};
use rda_core::fastpath::FastPathCache;
use rda_core::{Resource, SiteId};
use rda_sched::ProcessId;
use rda_sim::overhead::granularity_study;
use rda_simcore::SimTime;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("granularity_study/n16", |b| {
        b.iter(|| black_box(granularity_study(16)))
    });
    g.finish();

    c.bench_function("fig11/fastpath_hit", |b| {
        let mut cache = FastPathCache::new();
        cache.store_run(ProcessId(0), SiteId(0), Resource::Llc, 100, 1000, SimTime::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(cache.try_admit(
                ProcessId(0),
                SiteId(0),
                Resource::Llc,
                100,
                0,
                SimTime::from_cycles(t % 400),
                500,
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
