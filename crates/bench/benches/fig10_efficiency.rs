//! Bench: Figure 10 regeneration (efficiency metric derivation from a
//! measurement, plus a reduced end-to-end run).
use criterion::{criterion_group, criterion_main, Criterion};
use rda_core::{mb, PolicyKind, SiteId};
use rda_machine::ReuseLevel;
use rda_metrics::Measurement;
use rda_sim::{SimConfig, SystemSim};
use rda_workloads::{Phase, ProcessProgram, WorkloadSpec};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let spec = WorkloadSpec {
        name: "mini-vol".into(),
        processes: (0..8)
            .map(|_| ProcessProgram {
                threads: 2,
                phases: vec![Phase::tracked("render", 5_000_000, mb(1.8), ReuseLevel::High, SiteId(0))],
            })
            .collect(),
    };
    let run: Measurement = SystemSim::new(SimConfig::paper_default(PolicyKind::Strict), &spec)
        .run()
        .unwrap()
        .measurement;
    g.bench_function("efficiency_run/compromise", |b| {
        b.iter(|| {
            let r = SystemSim::new(
                SimConfig::paper_default(PolicyKind::compromise_default()),
                &spec,
            )
            .run()
            .unwrap();
            black_box(r.measurement.gflops_per_watt())
        })
    });
    g.finish();
    c.bench_function("fig10/derive_metric", |b| {
        b.iter(|| black_box(run.gflops_per_watt()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
