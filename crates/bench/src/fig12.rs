//! The Figure 12 experiment: WSS growth and prediction.
//!
//! The paper profiles water_nsquared at 8 000–64 000 molecules and
//! ocean_cp at 514–4 098 cells. Our profiler records *every* memory
//! access exactly (PIN samples), so the input ladder is scaled down to
//! keep full-fidelity traces tractable; the studied property — WSS per
//! fixed-size window grows sub-linearly and is predicted by a
//! logarithmic regression trained on the first three scales — is
//! scale-invariant (it derives from the fixed window covering a
//! shrinking fraction of the data).

use rda_profiler::window::WindowConfig;
use rda_profiler::wss::{wss_study, WssSeries};
use rda_workloads::splash::{ocean, water};

/// Input ladder for water_nsquared (molecules), 1×/2×/4×/8×.
pub const WATER_INPUTS: [usize; 4] = [150, 300, 600, 1200];
/// Input ladder for ocean (grid edge), 1×/2×/4×/8×.
pub const OCEAN_INPUTS: [usize; 4] = [66, 130, 258, 514];

/// Profile water_nsquared across the ladder; returns the top-2 periods'
/// series ("Wnsq PP1", "Wnsq PP2").
pub fn water_series() -> Vec<WssSeries> {
    let cfg = WindowConfig {
        window_ops: 5_000,
        wss_min_accesses: 2,
        line_bytes: 64,
    };
    wss_study("Wnsq", &WATER_INPUTS, 2, &cfg, |molecules, rec| {
        water::run_nsquared_traced(molecules, 0.4, rec);
    })
}

/// Profile ocean across the ladder; returns the top-2 periods' series
/// ("Ocp PP1", "Ocp PP2").
pub fn ocean_series() -> Vec<WssSeries> {
    let cfg = WindowConfig {
        window_ops: 5_000,
        wss_min_accesses: 2,
        line_bytes: 64,
    };
    wss_study("Ocp", &OCEAN_INPUTS, 2, &cfg, |n, rec| {
        ocean::run_traced(n, 1.5, rec);
    })
}

/// Encode one WSS series as JSON for the results bundle.
pub fn wss_series_json(s: &WssSeries) -> rda_metrics::Json {
    use rda_metrics::Json;
    let opt_num = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
    Json::obj([
        ("label", Json::Str(s.label.clone())),
        (
            "measured",
            Json::Arr(
                s.measured
                    .iter()
                    .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                    .collect(),
            ),
        ),
        (
            "fit",
            match &s.fit {
                Some(fit) => Json::obj([
                    ("intercept", Json::Num(fit.intercept)),
                    ("slope", Json::Num(fit.slope)),
                    ("r_squared", Json::Num(fit.r_squared)),
                ]),
                None => Json::Null,
            },
        ),
        ("predicted_last", opt_num(s.predicted_last)),
        ("accuracy", opt_num(s.accuracy)),
    ])
}

/// Render one series as a report block.
pub fn render_series(s: &WssSeries) -> String {
    let mut out = format!("{}\n", s.label);
    for &(x, y) in &s.measured {
        out.push_str(&format!("  input {:>6}  WSS {:>10.0} B\n", x, y));
    }
    match (&s.fit, s.predicted_last, s.accuracy) {
        (Some(fit), Some(pred), Some(acc)) => {
            out.push_str(&format!(
                "  log fit: WSS = {:.0} + {:.0}·ln(input)  (R² {:.3})\n",
                fit.intercept, fit.slope, fit.r_squared
            ));
            out.push_str(&format!(
                "  held-out prediction: {:.0} B → accuracy {:.1} %\n",
                pred,
                acc * 100.0
            ));
        }
        _ => out.push_str("  (not enough detected periods for a fit)\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_wss_grows_sublinearly_and_predicts() {
        let series = water_series();
        assert!(!series.is_empty());
        let pp1 = &series[0];
        assert_eq!(pp1.measured.len(), 4, "one point per input scale");
        // Monotone growth.
        assert!(pp1.measured.windows(2).all(|w| w[1].1 >= w[0].1), "{:?}", pp1.measured);
        // Sub-linear: 8× input gives < 8× WSS.
        let first = pp1.measured[0].1;
        let last = pp1.measured[3].1;
        assert!(last < 8.0 * first, "not sublinear: {first} → {last}");
        // The paper reports 80–95 % accuracy; require a sane floor.
        let acc = pp1.accuracy.expect("fit must exist");
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn ocean_wss_predicts_reasonably() {
        let series = ocean_series();
        let pp1 = &series[0];
        assert_eq!(pp1.measured.len(), 4);
        let acc = pp1.accuracy.expect("fit must exist");
        assert!(acc > 0.6, "accuracy {acc}");
    }
}
