//! Layered-topology sweep: goodput and shedding under NUMA node count ×
//! layer guarantee × shed policy (PR 8 tentpole experiment; no paper
//! figure — the paper's machine is one node, one resource).
//!
//! Each cell drives the deterministic topology traffic engine
//! ([`rda_sim::TopoTrafficSim`]) — a two-tenant request mix whose
//! demand *vectors* span LLC, memory bandwidth, and DRAM capacity —
//! through a [`rda_core::TopoExtension`] with per-node waitlists,
//! deadlines, and breakers. The grid varies the machine topology
//! (1/2/4 uniform NUMA nodes), whether the latency layer holds a
//! capacity guarantee, and the shed policy. Every cell's plans derive
//! from its own seed stream, so the printed digest is bit-identical for
//! any `--threads` value — CI pins 1 vs 8 with `--smoke`.
//!
//! ```bash
//! cargo run --release -p rda-bench --bin exp_layers -- --threads 8
//! cargo run --release -p rda-bench --bin exp_layers -- --smoke
//! ```

use rda_bench::cli::{parse_sweep_args, SWEEP_USAGE};
use rda_core::{
    mb, BreakerConfig, Demand, LayerSet, LayerSpec, OverloadConfig, PolicyKind, ShedPolicy,
    TopoConfig, TopoSpec,
};
use rda_sim::{run_topo_cells, topo_sweep_digest, FaultConfig, TopoCell, TopoTrafficConfig};

fn policy_label(p: ShedPolicy) -> &'static str {
    match p {
        ShedPolicy::RejectNewest => "reject_newest",
        ShedPolicy::RejectOldest => "reject_oldest",
        ShedPolicy::DegradeToOverflow => "degrade",
    }
}

fn overload_cfg(shed_policy: ShedPolicy) -> OverloadConfig {
    OverloadConfig {
        waitlist_cap: 16,
        shed_policy,
        deadline_cycles: Some(40_000_000), // ~21 ms at 1.9 GHz
        breaker: Some(BreakerConfig {
            high_water: mb(14.0),
            low_water: mb(8.0),
            trip_after: 4,
            recover_after: 4,
            shed_min_demand: mb(1.0),
        }),
    }
}

/// One simulated box: `nodes` uniform NUMA nodes, each with the Xeon
/// E5-2420's per-socket LLC/bandwidth/DRAM share.
fn topo(nodes: usize, guarantee: bool) -> TopoConfig {
    let latency = if guarantee {
        LayerSpec::new("latency", PolicyKind::Strict)
            .with_guarantee(Demand::new(4 << 20, 1_500, 64 << 20))
    } else {
        LayerSpec::new("latency", PolicyKind::Strict)
    };
    let layers = LayerSet::new(vec![LayerSpec::new("batch", PolicyKind::Strict), latency]);
    TopoConfig::new(
        TopoSpec::uniform(nodes, 15_360 << 10, 6_000, 1 << 30),
        layers,
    )
    .with_waitlist_timeout_cycles(40_000_000)
}

fn main() {
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let args = match parse_sweep_args(rest) {
        Ok(a) => a,
        Err(msg) if msg == "help" => {
            println!("{SWEEP_USAGE}\n  --smoke           small fast grid (CI digest gate)");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if args.trace_out.is_some() {
        eprintln!("--trace-out is not supported by exp_layers (no per-run TraceReport)");
        std::process::exit(2);
    }
    let opts = args.runner;

    // The two-tenant mix saturates one node's LLC around 6-8k req/s;
    // the chosen rates sit near and well past that knee so layer
    // guarantees and placement have something to decide.
    let (node_counts, rates, fault_rate, duration_secs): (&[usize], &[f64], f64, f64) = if smoke {
        (&[1, 2], &[9_000.0], 0.05, 0.04)
    } else {
        (&[1, 2, 4], &[4_000.0, 12_000.0], 0.05, 0.25)
    };
    let policies = [
        ShedPolicy::RejectNewest,
        ShedPolicy::RejectOldest,
        ShedPolicy::DegradeToOverflow,
    ];

    let mut cells = Vec::new();
    for &nodes in node_counts {
        for guarantee in [false, true] {
            for &policy in &policies {
                for &rate in rates {
                    cells.push(TopoCell {
                        label: format!(
                            "{nodes}n/{}/{}/{:.0}rps",
                            if guarantee { "guar" } else { "free" },
                            policy_label(policy),
                            rate
                        ),
                        traffic: TopoTrafficConfig::two_tenant(rate, duration_secs),
                        topo: topo(nodes, guarantee).with_overload(overload_cfg(policy)),
                        faults: (fault_rate > 0.0).then(|| FaultConfig::uniform(fault_rate)),
                    });
                }
            }
        }
    }

    let records = run_topo_cells(&cells, opts.threads, opts.root_seed);

    println!(
        "Layered topology sweep — {} node counts × guarantee on/off × {} shed policies × {} rates ({}s windows{})",
        node_counts.len(),
        policies.len(),
        rates.len(),
        duration_secs,
        if smoke { ", smoke" } else { "" }
    );
    println!();
    println!(
        "{:<28} {:>8} {:>10} {:>7} {:>7} {:>7} {:>8} {:>7}",
        "cell", "arrivals", "goodput/s", "shed", "expired", "retries", "stranded", "drained"
    );
    for rec in &records {
        match &rec.result {
            Ok(r) => println!(
                "{:<28} {:>8} {:>10.0} {:>7} {:>7} {:>7} {:>8} {:>7}",
                rec.label,
                r.arrivals,
                r.goodput_per_sec,
                r.rda.shed,
                r.expired,
                r.retries,
                r.stranded,
                if r.drained_idle { "yes" } else { "NO" },
            ),
            Err(msg) => println!("{:<28} FAILED: {msg}", rec.label),
        }
    }
    println!();
    println!("sweep digest: {:#018x}", topo_sweep_digest(&records));
    if records.iter().any(|r| r.result.is_err()) {
        std::process::exit(1);
    }
}
