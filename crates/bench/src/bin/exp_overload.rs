//! Open-system overload sweep: degradation curves under arrival rate ×
//! shedding policy × fault rate (PR 7 robustness experiment; no paper
//! figure).
//!
//! Each cell drives the deterministic traffic engine
//! ([`rda_sim::TrafficSim`]) at a fixed Poisson arrival rate through an
//! RDA extension with overload control enabled — bounded waitlist,
//! per-request deadlines, retry/backoff, saturation breaker — and
//! reports goodput plus p50/p95/p99 end-to-end latency. Fault rates
//! above zero compose a [`rda_sim::FaultPlan`] over the request stream
//! (chaos under load). Every cell's traffic and fault plans derive from
//! its own seed stream, so the printed digest is bit-identical for any
//! `--threads` value — CI pins 1 vs 8 with `--smoke`.
//!
//! ```bash
//! cargo run --release -p rda-bench --bin exp_overload -- --threads 8
//! cargo run --release -p rda-bench --bin exp_overload -- --smoke
//! ```

use rda_bench::cli::{parse_sweep_args, SWEEP_USAGE};
use rda_core::{mb, BreakerConfig, OverloadConfig, PolicyKind, RdaConfig, ShedPolicy};
use rda_machine::MachineConfig;
use rda_sim::{FaultConfig, TrafficConfig, TrafficResult, TrafficSim};
use rda_simcore::{Fnv1a64, SplitMix64};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One point on the degradation curve.
#[derive(Debug, Clone, Copy)]
struct Cell {
    rate_per_sec: f64,
    policy: ShedPolicy,
    fault_rate: f64,
}

fn policy_label(p: ShedPolicy) -> &'static str {
    match p {
        ShedPolicy::RejectNewest => "reject_newest",
        ShedPolicy::RejectOldest => "reject_oldest",
        ShedPolicy::DegradeToOverflow => "degrade",
    }
}

fn overload_cfg() -> OverloadConfig {
    OverloadConfig {
        waitlist_cap: 16,
        shed_policy: ShedPolicy::RejectNewest,
        deadline_cycles: Some(40_000_000), // ~21 ms at 1.9 GHz
        breaker: Some(BreakerConfig {
            high_water: mb(14.0),
            low_water: mb(8.0),
            trip_after: 4,
            recover_after: 4,
            shed_min_demand: mb(1.0),
        }),
    }
}

fn main() {
    // `--smoke` is ours; strip it before the shared sweep parser sees
    // the rest.
    let mut smoke = false;
    let rest: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--smoke" {
                smoke = true;
                false
            } else {
                true
            }
        })
        .collect();
    let args = match parse_sweep_args(rest) {
        Ok(a) => a,
        Err(msg) if msg == "help" => {
            println!("{SWEEP_USAGE}\n  --smoke           small fast grid (CI digest gate)");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if args.trace_out.is_some() {
        eprintln!("--trace-out is not supported by exp_overload (no per-run TraceReport)");
        std::process::exit(2);
    }
    let opts = args.runner;

    // The service mix carries roughly 2 concurrent MB-scale working
    // sets per 1000 req/s; the 15 MB LLC saturates around 6–8k req/s,
    // so the top rates sit at ~3× and ~10× capacity.
    let (rates, fault_rates, duration_secs): (&[f64], &[f64], f64) = if smoke {
        (&[2_000.0, 12_000.0], &[0.0, 0.1], 0.05)
    } else {
        (
            &[1_000.0, 4_000.0, 8_000.0, 20_000.0],
            &[0.0, 0.05, 0.15],
            0.4,
        )
    };
    let policies = [
        ShedPolicy::RejectNewest,
        ShedPolicy::RejectOldest,
        ShedPolicy::DegradeToOverflow,
    ];
    let cells: Vec<Cell> = rates
        .iter()
        .flat_map(|&rate_per_sec| {
            policies.iter().flat_map(move |&policy| {
                fault_rates.iter().map(move |&fault_rate| Cell {
                    rate_per_sec,
                    policy,
                    fault_rate,
                })
            })
        })
        .collect();

    let machine = MachineConfig::xeon_e5_2420();
    let run_cell = |index: usize| -> TrafficResult {
        let cell = cells[index];
        let mut overload = overload_cfg();
        overload.shed_policy = cell.policy;
        let rda =
            RdaConfig::for_machine(&machine, PolicyKind::Strict).with_overload(overload);
        let traffic = TrafficConfig::web_default(cell.rate_per_sec, duration_secs);
        let mut sim = TrafficSim::new(traffic, rda);
        if cell.fault_rate > 0.0 {
            sim = sim.with_faults(FaultConfig::uniform(cell.fault_rate));
        }
        sim.run(SplitMix64::derive_stream(opts.root_seed, index as u64))
    };

    // Indexed slots + an atomic cursor: results land by grid index, so
    // the digest (and the table) are independent of worker count and
    // completion order.
    let slots: Vec<Mutex<Option<TrafficResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if opts.threads == 0 { auto } else { opts.threads }.clamp(1, cells.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                *slots[i].lock().unwrap() = Some(run_cell(i));
            });
        }
    });

    println!(
        "Overload sweep — {} arrival rates × {} shed policies × {} fault rates ({}s windows{})",
        rates.len(),
        policies.len(),
        fault_rates.len(),
        duration_secs,
        if smoke { ", smoke" } else { "" }
    );
    println!();
    println!(
        "{:<8} {:<14} {:<6} {:>8} {:>10} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9}",
        "rate/s", "policy", "fault", "arrivals", "goodput/s", "shed", "expired", "retries",
        "p50 ms", "p95 ms", "p99 ms"
    );
    let to_ms = |cycles: u64| cycles as f64 / machine.freq_hz * 1e3;
    let mut digest = Fnv1a64::new();
    for (i, slot) in slots.into_iter().enumerate() {
        let r = slot.into_inner().unwrap().expect("unexecuted cell");
        let cell = cells[i];
        digest.write_usize(i).write_u64(r.digest());
        println!(
            "{:<8} {:<14} {:<6} {:>8} {:>10.0} {:>7} {:>7} {:>7} {:>9.2} {:>9.2} {:>9.2}",
            format!("{:.0}", cell.rate_per_sec),
            policy_label(cell.policy),
            format!("{:.2}", cell.fault_rate),
            r.arrivals,
            r.goodput_per_sec,
            r.rda.shed,
            r.expired,
            r.retries,
            to_ms(r.p50()),
            to_ms(r.p95()),
            to_ms(r.p99()),
        );
    }
    println!();
    println!("sweep digest: {:#018x}", digest.finish());
}
