//! Reproduce Table 1: the machine configuration.
use rda_machine::MachineConfig;

fn main() {
    let m = MachineConfig::xeon_e5_2420();
    println!("Table 1 — Machine configuration (simulated)");
    println!("{}", m.to_table());
    println!("(latencies: L2 {} cy, LLC {} cy, DRAM {} cy; switch cost {} cy)",
        m.l2_hit_cycles, m.llc_hit_cycles, m.dram_cycles, m.context_switch_cycles);
}
