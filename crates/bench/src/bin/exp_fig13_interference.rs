//! Reproduce Figure 13: slowdown of the largest water_nsquared period
//! under growing input size and concurrency.
use rda_sim::concurrency::{figure13, interference_study};

fn main() {
    let pts = interference_study();
    println!("{}", figure13(&pts).to_text_table());
    println!("(paper: 512/3375 scale to 12; 8000 drops 33→20 GFLOPS from 6 to 12; 32768 flat)");
}
