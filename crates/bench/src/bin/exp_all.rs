//! Run every experiment and write a JSON results bundle.
use rda_bench::fig12::{ocean_series, render_series, water_series};
use rda_bench::summary::headline;
use rda_bench::{headline_runs_cli, sweep_args_from_env};
use rda_machine::MachineConfig;
use rda_sim::concurrency::{figure13, interference_study};
use rda_sim::overhead::{figure11, granularity_study, N};
use rda_workloads::spec;

fn main() {
    println!("=== Table 1 ===\n{}", MachineConfig::xeon_e5_2420().to_table());
    println!("=== Table 2 ===\n{}", spec::table2());

    let r = headline_runs_cli(&sweep_args_from_env());
    println!("sweep digest: {:#018x}", r.digest);
    for fig in &r.figures {
        println!("{}", fig.to_text_table());
    }
    let h = headline(&r);
    println!("=== Headline numbers ===\n{h}\n");

    let f11 = granularity_study(N);
    println!("{}", figure11(&f11).to_text_table());

    let water = water_series();
    let ocean = ocean_series();
    println!("=== Figure 12 ===");
    for s in water.iter().chain(ocean.iter()) {
        println!("{}", render_series(s));
    }

    let f13 = interference_study();
    println!("{}", figure13(&f13).to_text_table());

    // Machine-readable bundle.
    use rda_bench::fig12::wss_series_json;
    use rda_metrics::Json;
    let bundle = Json::obj([
        (
            "figures",
            Json::obj([
                ("fig7", r.fig7().to_json()),
                ("fig8", r.fig8().to_json()),
                ("fig9", r.fig9().to_json()),
                ("fig10", r.fig10().to_json()),
                ("fig11", figure11(&f11).to_json()),
                ("fig13", figure13(&f13).to_json()),
                (
                    "fig12",
                    Json::obj([
                        ("water", Json::Arr(water.iter().map(wss_series_json).collect())),
                        ("ocean", Json::Arr(ocean.iter().map(wss_series_json).collect())),
                    ]),
                ),
            ]),
        ),
        ("headline", h.to_json()),
    ]);
    let path = "results.json";
    std::fs::write(path, bundle.to_string_pretty()).unwrap();
    println!("wrote {path}");
}
