//! Reproduce Figure 8: DRAM energy per workload × policy.
use rda_bench::headline_runs;

fn main() {
    let r = headline_runs();
    println!("{}", r.fig8().to_text_table());
}
