//! Reproduce Figure 8: DRAM energy per workload × policy.
use rda_bench::{headline_runs_cli, sweep_args_from_env};

fn main() {
    let r = headline_runs_cli(&sweep_args_from_env());
    println!("{}", r.fig8().to_text_table());
}
