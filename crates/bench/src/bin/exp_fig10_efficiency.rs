//! Reproduce Figure 10: GFLOPS per Watt per workload × policy.
use rda_bench::{headline_runs_cli, sweep_args_from_env};

fn main() {
    let r = headline_runs_cli(&sweep_args_from_env());
    println!("{}", r.fig10().to_text_table());
}
