//! Reproduce Figure 10: GFLOPS per Watt per workload × policy.
use rda_bench::headline_runs;

fn main() {
    let r = headline_runs();
    println!("{}", r.fig10().to_text_table());
}
