//! Run one traced simulation and print its timeline + summary table;
//! optionally also export the trace as Chrome trace-event JSON.
//!
//! ```bash
//! cargo run --release -p rda-bench --bin trace_dump -- \
//!     --workload Water_nsq --policy strict --faults 0.25 --trace-out t.json
//! ```
//!
//! The text rendering (`rda_trace::render_text`) goes to stdout; with
//! `--trace-out PATH` the same trace is also written as a Perfetto /
//! `chrome://tracing` loadable document.

use rda_bench::TraceBundle;
use rda_core::{DemandAudit, PolicyKind};
use rda_machine::MachineConfig;
use rda_sim::{FaultConfig, SimConfig, SystemSim};
use rda_workloads::spec::all_workloads;
use std::path::PathBuf;

const USAGE: &str = "options:
  --workload NAME   workload to run (default Water_nsq; see exp_table2)
  --policy P        default | strict | compromise (default strict)
  --faults RATE     inject faults at RATE in [0,1] (enables clamp+aging)
  --trace-out PATH  also write Chrome trace-event JSON to PATH
  --help            print this help";

struct Args {
    workload: String,
    policy: PolicyKind,
    faults: Option<f64>,
    trace_out: Option<PathBuf>,
}

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    let mut parsed = Args {
        workload: "Water_nsq".to_string(),
        policy: PolicyKind::Strict,
        faults: None,
        trace_out: None,
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--workload" => parsed.workload = value("--workload")?,
            "--policy" => {
                let v = value("--policy")?;
                parsed.policy = match v.as_str() {
                    "default" => PolicyKind::DefaultOnly,
                    "strict" => PolicyKind::Strict,
                    "compromise" => PolicyKind::compromise_default(),
                    other => return Err(format!("unknown policy '{other}'\n{USAGE}")),
                };
            }
            "--faults" => {
                let v = value("--faults")?;
                let rate: f64 = v.parse().map_err(|_| format!("bad --faults value '{v}'"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("--faults rate {rate} outside [0, 1]"));
                }
                parsed.faults = Some(rate);
            }
            "--trace-out" => parsed.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown option '{other}'\n{USAGE}")),
        }
    }
    Ok(parsed)
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) if msg == "help" => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let specs = all_workloads();
    let Some(spec) = specs
        .iter()
        .find(|s| s.name.eq_ignore_ascii_case(&args.workload))
    else {
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        eprintln!(
            "unknown workload '{}'; available: {}",
            args.workload,
            names.join(", ")
        );
        std::process::exit(2);
    };

    let mut cfg = SimConfig::paper_default(args.policy).with_trace();
    if let Some(rate) = args.faults {
        // Match exp_faults: recovery machinery on when injecting.
        cfg = cfg
            .with_demand_audit(DemandAudit::Clamp)
            .with_waitlist_timeout_ms(5.0)
            .with_faults(FaultConfig::uniform(rate));
    }

    let result = match SystemSim::new(cfg, spec).run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };
    let report = result.trace.as_ref().expect("tracing was enabled");

    let label = match args.faults {
        Some(rate) => format!("rate{rate:.2}:{}/{}", spec.name, args.policy),
        None => format!("{}/{}", spec.name, args.policy),
    };
    print!(
        "{}",
        rda_trace::render_text(&label, report, MachineConfig::xeon_e5_2420().freq_hz)
    );

    if let Some(path) = &args.trace_out {
        let mut bundle = TraceBundle::new();
        bundle.add(label, report.clone());
        bundle.write_or_die(path);
    }
}
