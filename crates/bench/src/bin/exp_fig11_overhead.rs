//! Reproduce Figure 11: progress-tracking overhead vs granularity,
//! then measure the observability layer's own cost and enforce its
//! budget: tracing must be digest-neutral and < 5 % host overhead
//! (exit code 1 otherwise — CI runs this binary as the budget check).
use rda_sim::overhead::{figure11, granularity_study, trace_overhead_study, N};

/// Hard ceiling on the host-time cost of tracing.
const TRACE_BUDGET: f64 = 0.05;

fn main() {
    let pts = granularity_study(N);
    println!("{}", figure11(&pts).to_text_table());
    println!("granularity      periods   overhead   fast-path share");
    for p in &pts {
        println!(
            "{:<18} {:>7}   {:>6.1} %   {:>5.1} %",
            p.label,
            p.periods,
            p.overhead * 100.0,
            p.fastpath_share * 100.0
        );
    }
    println!("\n(paper: no-pp ~0 %, middle ~19 %, inner ~59 % overhead)");

    let o = trace_overhead_study(8);
    println!("\n=== tracing overhead (rda-trace) ===");
    println!(
        "untraced {:.4}s  traced {:.4}s  overhead {:+.2} %  events {}  digest-neutral {}",
        o.base_secs,
        o.traced_secs,
        o.overhead * 100.0,
        o.events,
        o.digest_neutral
    );
    if !o.digest_neutral {
        eprintln!("FAIL: tracing changed the run digest");
        std::process::exit(1);
    }
    if o.overhead > TRACE_BUDGET {
        eprintln!(
            "FAIL: tracing overhead {:.2} % exceeds the {:.0} % budget",
            o.overhead * 100.0,
            TRACE_BUDGET * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "tracing budget OK (< {:.0} % and digest-neutral)",
        TRACE_BUDGET * 100.0
    );
}
