//! Reproduce Figure 11: progress-tracking overhead vs granularity.
use rda_sim::overhead::{figure11, granularity_study, N};

fn main() {
    let pts = granularity_study(N);
    println!("{}", figure11(&pts).to_text_table());
    println!("granularity      periods   overhead   fast-path share");
    for p in &pts {
        println!(
            "{:<18} {:>7}   {:>6.1} %   {:>5.1} %",
            p.label,
            p.periods,
            p.overhead * 100.0,
            p.fastpath_share * 100.0
        );
    }
    println!("\n(paper: no-pp ~0 %, middle ~19 %, inner ~59 % overhead)");
}
