//! Deterministic hot-path benchmark report.
//!
//! Runs the kernels from `rda_bench::hotbench` under a counting global
//! allocator and writes a machine-readable JSON report — ops/sec,
//! p50/p95 per-operation latency, and allocation counts per iteration —
//! suitable for committing as a performance baseline (`BENCH_pr5.json`)
//! and for regression-gating in CI.
//!
//! ```text
//! bench_report [--smoke] [--out PATH] [--compare BASELINE]
//! ```
//!
//! * `--smoke` — reduced sample counts for CI (seconds, not minutes);
//! * `--out PATH` — write the report JSON here (default: stdout only);
//! * `--compare BASELINE` — load a previously written report and exit
//!   nonzero if any benchmark's throughput regressed by more than 20 %
//!   after normalizing by the calibration kernel (which factors out
//!   absolute machine speed, so a baseline recorded on one machine can
//!   gate another).
//!
//! The simulated *work* is a pure function of fixed seeds: the reported
//! `checksum` of every kernel is bit-identical across machines, and the
//! report embeds the sweep digest so a perf baseline doubles as a
//! correctness pin.

use rda_bench::hotbench::{
    admission_batch_ops, admission_ops, calibration_ops, churn_ops, compare_reports, measure,
    sweep_cell, sweep_grid, BenchResult, CALIBRATION, SWEEP_GRID_CELLS,
};
use rda_metrics::Json;
use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};

/// `System` allocator wrapper counting every allocation and its size.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter
// updates are lock-free atomics and cannot allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_counts() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
}

struct Args {
    smoke: bool,
    out: Option<String>,
    compare: Option<String>,
}

const USAGE: &str = "usage: bench_report [--smoke] [--out PATH] [--compare BASELINE]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: None,
        compare: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = Some(it.next().ok_or("--out requires a path")?),
            "--compare" => args.compare = Some(it.next().ok_or("--compare requires a path")?),
            "--help" | "-h" => return Err("help".into()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) if e == "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // (warmup, samples) per benchmark tier: full mode for committed
    // baselines, smoke for the CI gate.
    let (warm, n_fast, n_cell, n_grid) = if args.smoke {
        (1, 5, 3, 1)
    } else {
        (3, 30, 10, 3)
    };
    let probe = Some(&alloc_counts as &dyn Fn() -> (u64, u64));

    eprintln!("running hot-path benchmarks ({} mode)…", if args.smoke { "smoke" } else { "full" });
    let mut results: Vec<BenchResult> = Vec::new();
    results.push(measure(CALIBRATION, 50_000_000, warm, n_fast, probe, || {
        calibration_ops(50_000_000)
    }));
    results.push(measure("pp_admission_pair", 10_000, warm, n_fast, probe, || {
        admission_ops(10_000)
    }));
    results.push(measure("admission_throughput", 64_000, warm, n_fast, probe, || {
        admission_batch_ops(64_000)
    }));
    results.push(measure("waitlist_churn_round", 2_000, warm, n_fast, probe, || {
        churn_ops(2_000)
    }));
    results.push(measure("sweep_cell_ocean_cp", 1, warm, n_cell, probe, || {
        sweep_cell(false)
    }));
    results.push(measure("sweep_cell_ocean_cp_traced", 1, warm, n_cell, probe, || {
        sweep_cell(true)
    }));
    results.push(measure(
        "sweep_grid_24_cells",
        SWEEP_GRID_CELLS as u64,
        if args.smoke { 0 } else { 1 },
        n_grid,
        probe,
        sweep_grid,
    ));

    for r in &results {
        eprintln!(
            "  {:<28} p50 {:>12.1} ns/op  p95 {:>12.1} ns/op  {:>14.0} ops/s",
            r.name, r.p50_ns, r.p95_ns, r.ops_per_sec
        );
    }

    let grid = results
        .iter()
        .find(|r| r.name == "sweep_grid_24_cells")
        .expect("just measured");
    let report = Json::obj([
        ("schema", Json::Str("rda-bench-report/v1".into())),
        ("mode", Json::Str(if args.smoke { "smoke" } else { "full" }.into())),
        (
            "benchmarks",
            Json::Arr(results.iter().map(|r| r.to_json()).collect()),
        ),
        (
            "sweep",
            Json::obj([
                ("cells", Json::Num(SWEEP_GRID_CELLS as f64)),
                ("ms_per_cell_p50", Json::Num(grid.p50_ns / 1e6)),
                ("digest", Json::Str(format!("{:#x}", grid.checksum))),
                // Measured on the machine that committed BENCH_pr5.json,
                // immediately before the PR-5 hot-path work: the same
                // grid took 143.8 ms per cell. Kept in the report so
                // the speedup is auditable without digging in history.
                ("pre_pr5_ms_per_cell", Json::Num(143.8)),
            ]),
        ),
    ]);
    let text = report.to_string_pretty();
    println!("{text}");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{text}\n")) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {path}");
    }

    if let Some(path) = &args.compare {
        let baseline = match std::fs::read_to_string(path) {
            Ok(t) => match Json::parse(&t) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("cannot parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let regressions = compare_reports(&results, &baseline, 0.20);
        if !regressions.is_empty() {
            eprintln!("PERFORMANCE REGRESSION vs {path}:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("no benchmark regressed >20% vs {path}");
    }
    ExitCode::SUCCESS
}
