//! Reproduce Table 2: the eight workloads.
use rda_workloads::spec;

fn main() {
    println!("Table 2 — Workloads used to test the scheduling extension");
    println!("{}", spec::table2());
}
