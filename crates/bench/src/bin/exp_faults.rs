//! Fault-injection sweep: graceful degradation under misbehaving
//! processes (PR 2 robustness experiment; no paper figure).
//!
//! Sweeps fault rate × policy over the paper's eight workloads with
//! the recovery machinery enabled (demand auditing, waitlist aging,
//! exit-time reclamation) and reports how much recovery work each cell
//! needed plus the throughput that survived. Every cell derives its
//! fault plan from its own seed stream, so the printed digest is
//! bit-identical for any `--threads` value — CI pins 1 vs 8.
//!
//! ```bash
//! cargo run --release -p rda-bench --bin exp_faults -- --threads 8
//! ```

use rda_bench::{sweep_args_from_env, TraceBundle};
use rda_core::{DemandAudit, PolicyKind};
use rda_sim::runner::{run_sweep_configured, SweepGrid};
use rda_sim::{FaultConfig, SimConfig};
use rda_simcore::Fnv1a64;
use rda_workloads::spec::all_workloads;

const RATES: [f64; 4] = [0.0, 0.05, 0.15, 0.30];

fn main() {
    let args = sweep_args_from_env();
    let opts = args.runner;
    let tracing = args.tracing();
    let mut bundle = TraceBundle::new();
    let specs = all_workloads();
    let policies = [PolicyKind::Strict, PolicyKind::compromise_default()];
    let grid = SweepGrid::cross(&specs, &policies, 1);

    println!("Fault-injection sweep — {} workloads × {} policies × {} fault rates", specs.len(), policies.len(), RATES.len());
    println!();
    println!(
        "{:<8} {:<22} {:>9} {:>9} {:>8} {:>9} {:>9} {:>10} {:>9}",
        "rate", "policy", "reclaimed", "clamped", "aged", "rej.ends", "resumed", "GFLOPS", "joules"
    );

    let mut digest = Fnv1a64::new();
    for rate in RATES {
        let sweep = run_sweep_configured(&grid, &opts, |cell| {
            let cfg = SimConfig::paper_default(cell.policy)
                .with_demand_audit(DemandAudit::Clamp)
                .with_waitlist_timeout_ms(5.0)
                .with_faults(FaultConfig::uniform(rate));
            if tracing {
                cfg.with_trace()
            } else {
                cfg
            }
        });
        for err in &sweep.errors {
            eprintln!("FAILED: {err}");
        }
        if !sweep.errors.is_empty() {
            std::process::exit(1);
        }
        bundle.add_records(&format!("rate{rate:.2}:"), &sweep.records);
        digest.write_u64(rate.to_bits()).write_u64(sweep.digest());

        for policy in policies {
            let cells: Vec<_> = sweep
                .records
                .iter()
                .filter(|r| r.policy == policy)
                .collect();
            let sum = |f: &dyn Fn(&rda_core::RdaStats) -> u64| -> u64 {
                cells.iter().map(|r| f(&r.result.rda)).sum()
            };
            let gflops: f64 = cells.iter().map(|r| r.result.measurement.gflops()).sum::<f64>()
                / cells.len() as f64;
            let joules: f64 = cells
                .iter()
                .map(|r| r.result.measurement.system_joules())
                .sum();
            println!(
                "{:<8} {:<22} {:>9} {:>9} {:>8} {:>9} {:>9} {:>10.2} {:>9.1}",
                format!("{rate:.2}"),
                policy.to_string(),
                sum(&|s| s.reclaimed),
                sum(&|s| s.clamped),
                sum(&|s| s.aged_admissions),
                sum(&|s| s.rejected_ends),
                sum(&|s| s.resumed),
                gflops,
                joules,
            );
        }
    }

    println!();
    println!("sweep digest: {:#018x}", digest.finish());
    if let Some(path) = &args.trace_out {
        bundle.write_or_die(path);
    }
}
