//! Reproduce Figure 12: working-set-size growth and log-regression
//! prediction across input scales.
use rda_bench::fig12::{ocean_series, render_series, water_series};

fn main() {
    println!("Figure 12 — WSS vs input size, log-regression prediction");
    println!("(inputs scaled down from the paper's to keep exact traces tractable)\n");
    for s in water_series().iter().chain(ocean_series().iter()) {
        println!("{}", render_series(s));
    }
    println!("(paper accuracies: Wnsq 92 %/80 %, Ocp 95 %/94 %)");
}
