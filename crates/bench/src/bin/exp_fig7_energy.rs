//! Reproduce Figure 7: system energy per workload × policy.
use rda_bench::headline_runs;

fn main() {
    let r = headline_runs();
    println!("{}", r.fig7().to_text_table());
}
