//! Reproduce Figure 7: system energy per workload × policy.
use rda_bench::{headline_runs_cli, sweep_args_from_env};

fn main() {
    let r = headline_runs_cli(&sweep_args_from_env());
    println!("{}", r.fig7().to_text_table());
}
