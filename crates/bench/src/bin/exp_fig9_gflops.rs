//! Reproduce Figure 9: GFLOPS per workload × policy.
use rda_bench::headline_runs;

fn main() {
    let r = headline_runs();
    println!("{}", r.fig9().to_text_table());
}
