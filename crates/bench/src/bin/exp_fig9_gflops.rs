//! Reproduce Figure 9: GFLOPS per workload × policy.
use rda_bench::{headline_runs_cli, sweep_args_from_env};

fn main() {
    let r = headline_runs_cli(&sweep_args_from_env());
    println!("{}", r.fig9().to_text_table());
}
