//! `--trace-out` plumbing: collect per-run [`rda_trace::TraceReport`]s
//! from a sweep and write one merged Chrome trace-event document.
//!
//! Each run becomes its own `pid` track group in the output, named
//! `"{workload}/{policy}#r{replicate}"` (prefixed, e.g. with the fault
//! rate, when the caller sweeps an extra axis). The file loads directly
//! in `ui.perfetto.dev` or `chrome://tracing`.

use rda_machine::MachineConfig;
use rda_sim::runner::RunRecord;
use rda_trace::{chrome_trace_document, LabeledReport, TraceReport};
use std::path::{Path, PathBuf};

/// A trace export that could not be written: the destination path plus
/// the underlying I/O error. Typed so callers can branch on it (or at
/// least print something actionable) instead of panicking.
#[derive(Debug)]
pub struct TraceWriteError {
    /// The path the export was destined for.
    pub path: PathBuf,
    /// What the filesystem said.
    pub source: std::io::Error,
}

impl std::fmt::Display for TraceWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to write {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for TraceWriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Owned accumulator of labeled traces from one or more sweeps.
#[derive(Debug, Clone, Default)]
pub struct TraceBundle {
    entries: Vec<(String, TraceReport)>,
}

impl TraceBundle {
    /// Empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of collected run traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Add one labeled report.
    pub fn add(&mut self, label: String, report: TraceReport) {
        self.entries.push((label, report));
    }

    /// Harvest the traces of every record that carries one, labeling
    /// them `"{prefix}{workload}/{policy}#r{replicate}"`.
    pub fn add_records(&mut self, prefix: &str, records: &[RunRecord]) {
        for r in records {
            if let Some(report) = &r.result.trace {
                let label = format!("{prefix}{}/{}#r{}", r.workload, r.policy, r.replicate);
                self.add(label, report.clone());
            }
        }
    }

    /// Build the merged Chrome trace-event document. `pid`s are
    /// assigned in collection order.
    pub fn to_chrome_json(&self) -> rda_metrics::Json {
        let runs: Vec<LabeledReport<'_>> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, (label, report))| LabeledReport {
                pid: i as u64 + 1,
                label: label.clone(),
                report,
            })
            .collect();
        chrome_trace_document(&runs, MachineConfig::xeon_e5_2420().freq_hz)
    }

    /// Write the merged document to `path` (pretty-printed). An
    /// unwritable path — missing directory, permission denied, path is
    /// a directory — comes back as a typed [`TraceWriteError`], never
    /// a panic.
    pub fn write(&self, path: &Path) -> Result<(), TraceWriteError> {
        std::fs::write(path, self.to_chrome_json().to_string_pretty()).map_err(|source| {
            TraceWriteError {
                path: path.to_path_buf(),
                source,
            }
        })
    }

    /// Write to `path`, reporting success on stdout and exiting the
    /// process non-zero with the typed error's message on I/O failure
    /// — the shared behaviour of every `exp_*` binary's `--trace-out`
    /// handling.
    pub fn write_or_die(&self, path: &Path) {
        match self.write(path) {
            Ok(()) => println!(
                "wrote {} ({} run traces, Chrome trace-event format)",
                path.display(),
                self.len()
            ),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_core::PolicyKind;
    use rda_metrics::Json;
    use rda_sim::runner::{run_sweep_configured, RunnerOptions, SweepGrid};
    use rda_sim::SimConfig;
    use rda_workloads::spec::all_workloads;

    #[test]
    fn bundle_harvests_traced_records_and_exports_valid_json() {
        let workloads = &all_workloads()[..1];
        let grid = SweepGrid::cross(workloads, &[PolicyKind::Strict], 1);
        let sweep = run_sweep_configured(&grid, &RunnerOptions::serial(), |cell| {
            SimConfig::paper_default(cell.policy).with_trace()
        });
        assert!(sweep.errors.is_empty());

        let mut bundle = TraceBundle::new();
        bundle.add_records("", &sweep.records);
        assert_eq!(bundle.len(), 1, "every traced record is harvested");

        let doc = bundle.to_chrome_json();
        let parsed = Json::parse(&doc.to_string_pretty()).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty());
        // The track group is named after the grid cell.
        let name = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .and_then(|e| e.get("args"))
            .and_then(|a| a.get("name"))
            .and_then(Json::as_str)
            .unwrap();
        assert_eq!(
            name,
            format!("{}/{}#r0", workloads[0].name, PolicyKind::Strict)
        );
    }

    #[test]
    fn unwritable_path_is_a_typed_error_not_a_panic() {
        let bundle = TraceBundle::new();
        let bad = Path::new("/nonexistent-dir-for-sure/trace.json");
        let err = bundle.write(bad).expect_err("write must fail");
        assert_eq!(err.path, bad);
        let msg = err.to_string();
        assert!(
            msg.starts_with("failed to write /nonexistent-dir-for-sure/trace.json:"),
            "unexpected message: {msg}"
        );
        // A directory as the destination is also refused, not panicked.
        let dir = std::env::temp_dir();
        let err = bundle.write(&dir).expect_err("writing to a directory must fail");
        assert_eq!(err.path, dir);
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn untraced_records_are_skipped() {
        let workloads = &all_workloads()[..1];
        let grid = SweepGrid::cross(workloads, &[PolicyKind::Strict], 1);
        let sweep = run_sweep_configured(&grid, &RunnerOptions::serial(), |cell| {
            SimConfig::paper_default(cell.policy)
        });
        let mut bundle = TraceBundle::new();
        bundle.add_records("", &sweep.records);
        assert!(bundle.is_empty());
    }
}
