//! Headline-number extraction: the paper's abstract claims, recomputed
//! from our runs.
//!
//! *"…a 48% maximum decrease in system energy consumption (average
//! 12%), and a 1.88x maximum increase in application performance
//! (average 1.16x)."* This module derives the same four numbers from a
//! [`crate::HeadlineResults`] sweep, taking for each workload the best
//! RDA policy (the paper's usage model: pick the right policy per
//! workload class).

use crate::headline::HeadlineResults;

/// The abstract's four headline numbers.
#[derive(Debug, Clone)]
pub struct Headline {
    /// Maximum relative decrease in system energy (0.48 = 48 %).
    pub max_energy_decrease: f64,
    /// Mean relative decrease in system energy across workloads.
    pub avg_energy_decrease: f64,
    /// Maximum speedup (GFLOPS ratio) over the default policy.
    pub max_speedup: f64,
    /// Geometric-mean speedup across workloads.
    pub avg_speedup: f64,
}

/// Compute headline numbers, choosing the better RDA policy per
/// workload.
pub fn headline(results: &HeadlineResults) -> Headline {
    let fig7 = results.fig7();
    let fig9 = results.fig9();
    let categories = fig7.categories();
    let mut energy_decreases = Vec::new();
    let mut speedups = Vec::new();
    for cat in &categories {
        let base_j = fig7.get("Linux Default", cat).expect("baseline energy");
        let base_g = fig9.get("Linux Default", cat).expect("baseline gflops");
        let mut best_j = f64::INFINITY;
        let mut best_g: f64 = 0.0;
        for series in ["RDA: Strict", "RDA: Compromise (x2)"] {
            if let Some(j) = fig7.get(series, cat) {
                best_j = best_j.min(j);
            }
            if let Some(g) = fig9.get(series, cat) {
                best_g = best_g.max(g);
            }
        }
        energy_decreases.push(1.0 - best_j / base_j);
        speedups.push(best_g / base_g);
    }
    Headline {
        max_energy_decrease: energy_decreases.iter().cloned().fold(f64::MIN, f64::max),
        avg_energy_decrease: energy_decreases.iter().sum::<f64>()
            / energy_decreases.len() as f64,
        max_speedup: speedups.iter().cloned().fold(f64::MIN, f64::max),
        avg_speedup: rda_metrics::geomean(&speedups).unwrap_or(0.0),
    }
}

impl Headline {
    /// Encode as JSON for the results bundle.
    pub fn to_json(&self) -> rda_metrics::Json {
        use rda_metrics::Json;
        Json::obj([
            ("max_energy_decrease", Json::Num(self.max_energy_decrease)),
            ("avg_energy_decrease", Json::Num(self.avg_energy_decrease)),
            ("max_speedup", Json::Num(self.max_speedup)),
            ("avg_speedup", Json::Num(self.avg_speedup)),
        ])
    }
}

impl std::fmt::Display for Headline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "max system-energy decrease : {:5.1} %   (paper: 48 %)",
            self.max_energy_decrease * 100.0
        )?;
        writeln!(
            f,
            "avg system-energy decrease : {:5.1} %   (paper: 12 %)",
            self.avg_energy_decrease * 100.0
        )?;
        writeln!(
            f,
            "max speedup                : {:5.2} x   (paper: 1.88 x)",
            self.max_speedup
        )?;
        write!(
            f,
            "avg speedup (geomean)      : {:5.2} x   (paper: 1.16 x)",
            self.avg_speedup
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headline_runs;

    #[test]
    fn headline_numbers_land_in_the_papers_regime() {
        let results = headline_runs();
        let h = headline(&results);
        // The substrate is a model, not the authors' testbed; require
        // the right regime, not the exact numbers.
        assert!(
            h.max_energy_decrease > 0.30 && h.max_energy_decrease < 0.80,
            "max energy decrease {}",
            h.max_energy_decrease
        );
        assert!(
            h.avg_energy_decrease > 0.05,
            "avg energy decrease {}",
            h.avg_energy_decrease
        );
        assert!(
            h.max_speedup > 1.5 && h.max_speedup < 3.0,
            "max speedup {}",
            h.max_speedup
        );
        assert!(h.avg_speedup > 1.05, "avg speedup {}", h.avg_speedup);
        let display = h.to_string();
        assert!(display.contains("paper: 48"));
    }
}
