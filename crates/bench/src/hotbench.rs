//! Hot-path benchmark kernels and a tiny deterministic measurement
//! harness, shared by the Criterion suite (`benches/hotpath.rs`) and
//! the `bench_report` binary.
//!
//! Every kernel is a pure function of fixed seeds and constants, so the
//! *work* is bit-identical across runs and machines — only wall-clock
//! varies. Each kernel returns a checksum that callers must black-box
//! (and `bench_report` folds into its output) so the optimizer cannot
//! elide the work, and so two runs can assert they simulated the same
//! thing.
//!
//! The measurement harness is deliberately simpler than Criterion's:
//! fixed warmup, fixed sample count, fixed batch size per sample —
//! no adaptive iteration search, which would make the sample layout
//! (and the allocation counts per sample) depend on machine speed.

use rda_core::{
    mb, BeginOutcome, BeginRequest, PolicyKind, PpDemand, RdaConfig, RdaExtension, SiteId,
};
use rda_machine::{MachineConfig, ReuseLevel};
use rda_metrics::Json;
use rda_sched::ProcessId;
use rda_sim::runner::RunnerOptions;
use rda_sim::{SimConfig, SystemSim};
use rda_simcore::SimTime;
use rda_workloads::spec::all_workloads;
use rda_workloads::WorkloadSpec;
use std::time::Instant;

/// One pp_begin/pp_end admission pair per "op": the fits-and-runs fast
/// path that every tracked phase boundary pays. Returns a checksum over
/// the extension's counters.
pub fn admission_ops(pairs: usize) -> u64 {
    let cfg = RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), PolicyKind::Strict);
    let mut ext = RdaExtension::new(cfg);
    let demand = PpDemand::llc(mb(2.0), ReuseLevel::High);
    let mut t = 0u64;
    for i in 0..pairs {
        t += 100;
        let out = ext
            .pp_begin(
                ProcessId((i % 4) as u32),
                SiteId((i % 3) as u32),
                demand,
                SimTime::from_cycles(t),
            )
            .expect("2 MB always fits a 15 MB LLC");
        let pp = match out {
            rda_core::BeginOutcome::Run { pp, .. } => pp,
            other => panic!("expected Run, got {other:?}"),
        };
        t += 100;
        ext.pp_end(pp, SimTime::from_cycles(t))
            .expect("period is live");
    }
    let s = ext.stats();
    s.begins ^ s.ends.rotate_left(17) ^ s.fast_begins.rotate_left(34)
}

/// Batched admission throughput: `pairs` pp_begin/pp_end lifecycles
/// driven through [`RdaExtension::pp_begin_batch`] in same-tick batches
/// of 64, so one load-table read (and one memo probe per distinct call
/// site) serves a whole batch. This is the kernel behind the
/// million-lifecycles-per-second target; by the batch–serial
/// equivalence contract its checksum is exactly what the same pairs
/// issued one at a time would produce.
pub fn admission_batch_ops(pairs: usize) -> u64 {
    const BATCH: usize = 64;
    let cfg = RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), PolicyKind::Strict);
    let mut ext = RdaExtension::new(cfg);
    // 64 × 0.2 MB = 12.8 MB: a full batch always fits the 15 MB LLC,
    // so every outcome is Run and every pair exercises the fast path.
    let demand = PpDemand::llc(mb(0.2), ReuseLevel::High);
    let mut reqs: Vec<BeginRequest> = Vec::with_capacity(BATCH);
    let mut live = Vec::with_capacity(BATCH);
    let mut t = 0u64;
    let mut done = 0usize;
    while done < pairs {
        let n = BATCH.min(pairs - done);
        t += 100;
        reqs.clear();
        for i in 0..n {
            reqs.push(BeginRequest {
                process: ProcessId((i % 8) as u32),
                site: SiteId((i % 3) as u32),
                demand,
            });
        }
        live.clear();
        for out in ext.pp_begin_batch(&reqs, SimTime::from_cycles(t)) {
            match out.expect("audited demand always fits") {
                BeginOutcome::Run { pp, .. } => live.push(pp),
                other => panic!("expected Run, got {other:?}"),
            }
        }
        t += 100;
        for &pp in &live {
            ext.pp_end(pp, SimTime::from_cycles(t))
                .expect("period is live");
        }
        done += n;
    }
    let s = ext.stats();
    s.begins ^ s.ends.rotate_left(17) ^ s.fast_begins.rotate_left(34)
}

/// Waitlist churn under pressure: the LLC is kept saturated so a
/// standing queue of paused periods exists, and every round one running
/// period completes (draining the queue head in) while a fresh one is
/// denied onto the tail. Aging is enabled and fires for part of the
/// queue, so push, pop, cancel-by-exit, expiry scan, and oldest-cache
/// maintenance are all exercised. Returns a stats checksum.
pub fn churn_ops(rounds: usize) -> u64 {
    let cfg = RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), PolicyKind::Strict)
        .with_waitlist_timeout_cycles(50_000);
    let mut ext = RdaExtension::new(cfg);
    let demand = PpDemand::llc(mb(4.0), ReuseLevel::High);
    let mut t = 0u64;
    let mut running: Vec<(rda_core::PpId, ProcessId)> = Vec::new();
    let mut proc_no = 0u32;
    for round in 0..rounds {
        t += 1_000;
        proc_no += 1;
        let proc = ProcessId(proc_no);
        // One new period per round; once ~3 are admitted (12 of 15 MB)
        // the rest pile onto the waitlist.
        match ext
            .pp_begin(proc, SiteId((round % 5) as u32), demand, SimTime::from_cycles(t))
            .expect("audited demand")
        {
            rda_core::BeginOutcome::Run { pp, .. } => running.push((pp, proc)),
            rda_core::BeginOutcome::Pause { .. } | rda_core::BeginOutcome::Bypass => {}
        }
        // Every round, the oldest running period ends, releasing
        // capacity and re-walking the queue.
        if running.len() > 2 {
            let (pp, _) = running.remove(0);
            t += 1_000;
            let out = ext.pp_end(pp, SimTime::from_cycles(t)).expect("live");
            running.extend(out.resumed);
        }
        // Periodically a queued process gives up and exits (waitlist
        // cancellation), and aging force-admits what expired.
        if round % 16 == 15 {
            let gone = ProcessId(proc_no.saturating_sub(8));
            ext.process_exit(gone, SimTime::from_cycles(t));
            running.retain(|&(_, owner)| owner != gone);
            t += 60_000;
            running.extend(ext.age_waitlist(SimTime::from_cycles(t)).resumed);
        }
    }
    let s = ext.stats();
    s.paused ^ s.resumed.rotate_left(13) ^ s.aged_admissions.rotate_left(29)
        ^ s.reclaimed.rotate_left(47)
}

/// The named workload a single-cell benchmark runs (the heaviest of the
/// paper's eight).
pub const SWEEP_CELL_WORKLOAD: &str = "Ocean_cp";

fn workload(name: &str) -> WorkloadSpec {
    all_workloads()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("workload {name} not in the paper set"))
}

/// One full simulation of the heaviest headline cell (Ocean_cp ×
/// Strict), optionally with the observability trace layer enabled.
/// Returns the run digest — bit-identical across machines.
pub fn sweep_cell(trace: bool) -> u64 {
    sweep_cell_named(SWEEP_CELL_WORKLOAD, trace)
}

fn sweep_cell_named(name: &str, trace: bool) -> u64 {
    let spec = workload(name);
    let cfg = SimConfig::paper_default(PolicyKind::Strict);
    let cfg = if trace { cfg.with_trace() } else { cfg };
    SystemSim::new(cfg, &spec).run().expect("cell runs").digest()
}

/// The entire 24-cell headline grid (8 workloads × 3 policies), run
/// single-threaded for stable timing. Returns the sweep digest.
pub fn sweep_grid() -> u64 {
    let opts = RunnerOptions {
        threads: 1,
        ..RunnerOptions::default()
    };
    crate::headline::headline_runs_with(&opts).digest
}

/// Number of cells [`sweep_grid`] simulates.
pub const SWEEP_GRID_CELLS: usize = 24;

/// Fixed CPU-bound calibration loop (integer mixing, no allocation, no
/// simulation): measures raw machine speed so a baseline recorded on
/// one machine can be compared on another. Returns the mixed value.
pub fn calibration_ops(n: usize) -> u64 {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..n as u64 {
        x ^= i;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
    }
    x
}

/// Result of measuring one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (stable key for baseline comparison).
    pub name: String,
    /// Logical operations per iteration batch.
    pub ops_per_iter: u64,
    /// Timed samples taken (after warmup).
    pub samples: usize,
    /// Median per-op latency, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile per-op latency, nanoseconds.
    pub p95_ns: f64,
    /// Throughput from the median sample, operations per second.
    pub ops_per_sec: f64,
    /// Heap allocations per iteration batch (binary only; `None` when
    /// no allocation probe was installed).
    pub allocs_per_iter: Option<f64>,
    /// Heap bytes allocated per iteration batch.
    pub bytes_per_iter: Option<f64>,
    /// The kernel checksum (of the last invocation; every invocation
    /// returns the same value for a deterministic kernel) — equal
    /// across machines.
    pub checksum: u64,
}

impl BenchResult {
    /// Serialize for the report document.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("ops_per_iter", Json::Num(self.ops_per_iter as f64)),
            ("samples", Json::Num(self.samples as f64)),
            ("p50_ns", Json::Num(self.p50_ns)),
            ("p95_ns", Json::Num(self.p95_ns)),
            ("ops_per_sec", Json::Num(self.ops_per_sec)),
            ("allocs_per_iter", opt(self.allocs_per_iter)),
            ("bytes_per_iter", opt(self.bytes_per_iter)),
            ("checksum", Json::Str(format!("{:#x}", self.checksum))),
        ])
    }
}

/// Allocation probe: returns cumulative `(allocations, bytes)` counters
/// — `bench_report` wires its counting global allocator in here.
pub type AllocProbe<'a> = &'a dyn Fn() -> (u64, u64);

/// Measure `f` (one iteration batch of `ops_per_iter` logical ops):
/// `warmup` discarded batches, then `samples` timed batches. Per-op
/// p50/p95 come from the per-batch times; allocation counts are the
/// mean over timed batches.
pub fn measure(
    name: &str,
    ops_per_iter: u64,
    warmup: usize,
    samples: usize,
    probe: Option<AllocProbe<'_>>,
    mut f: impl FnMut() -> u64,
) -> BenchResult {
    let mut checksum = 0u64;
    for _ in 0..warmup {
        checksum = std::hint::black_box(f());
    }
    let mut times_ns: Vec<f64> = Vec::with_capacity(samples);
    let mut allocs = 0u64;
    let mut bytes = 0u64;
    for _ in 0..samples {
        let before = probe.map(|p| p());
        let t0 = Instant::now();
        checksum = std::hint::black_box(f());
        let dt = t0.elapsed();
        if let (Some(p), Some((a0, b0))) = (probe, before) {
            let (a1, b1) = p();
            allocs += a1 - a0;
            bytes += b1 - b0;
        }
        times_ns.push(dt.as_secs_f64() * 1e9);
    }
    times_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let pct = |q: f64| {
        let idx = ((times_ns.len() - 1) as f64 * q).round() as usize;
        times_ns[idx]
    };
    let p50_batch = pct(0.50);
    let p95_batch = pct(0.95);
    let nf = ops_per_iter as f64;
    BenchResult {
        name: name.to_string(),
        ops_per_iter,
        samples,
        p50_ns: p50_batch / nf,
        p95_ns: p95_batch / nf,
        ops_per_sec: nf / (p50_batch / 1e9),
        allocs_per_iter: probe.map(|_| allocs as f64 / samples as f64),
        bytes_per_iter: probe.map(|_| bytes as f64 / samples as f64),
        checksum,
    }
}

/// Name of the calibration benchmark inside a report.
pub const CALIBRATION: &str = "calibration";

/// Compare `current` against a previously written report, normalizing
/// by the calibration benchmark so a uniformly slower machine does not
/// flag every kernel. Returns one message per benchmark whose
/// normalized throughput regressed by more than `tolerance` (0.20 =
/// 20 %); missing baseline entries are skipped, never failed.
pub fn compare_reports(
    current: &[BenchResult],
    baseline: &Json,
    tolerance: f64,
) -> Vec<String> {
    let base_benches: Vec<&Json> = baseline
        .get("benchmarks")
        .and_then(|b| b.as_arr())
        .map(|a| a.iter().collect())
        .unwrap_or_default();
    let base_ops = |name: &str| -> Option<f64> {
        base_benches
            .iter()
            .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(name))
            .and_then(|b| b.get("ops_per_sec"))
            .and_then(|v| v.as_f64())
    };
    let cur_ops = |name: &str| -> Option<f64> {
        current
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.ops_per_sec)
    };
    // Machine-speed scale: >1 means this machine is faster than the
    // one that recorded the baseline.
    let scale = match (cur_ops(CALIBRATION), base_ops(CALIBRATION)) {
        (Some(c), Some(b)) if b > 0.0 => c / b,
        _ => 1.0,
    };
    let mut regressions = Vec::new();
    for b in current {
        if b.name == CALIBRATION {
            continue;
        }
        let Some(base) = base_ops(&b.name) else {
            continue;
        };
        let expected = base * scale;
        if expected > 0.0 && b.ops_per_sec < expected * (1.0 - tolerance) {
            regressions.push(format!(
                "{}: {:.0} ops/s vs expected {:.0} ops/s (baseline {:.0} × machine scale {:.2}) — {:.1}% regression",
                b.name,
                b.ops_per_sec,
                expected,
                base,
                scale,
                (1.0 - b.ops_per_sec / expected) * 100.0
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_deterministic() {
        assert_eq!(admission_ops(500), admission_ops(500));
        assert_eq!(admission_batch_ops(500), admission_batch_ops(500));
        assert_eq!(churn_ops(200), churn_ops(200));
        assert_eq!(calibration_ops(1_000), calibration_ops(1_000));
    }

    #[test]
    fn batched_kernel_is_serial_equivalent() {
        // Re-drive the batch kernel's exact request stream through the
        // one-at-a-time pp_begin and demand the same stats checksum
        // (including the fast-begin count the memo cache produces).
        const BATCH: usize = 64;
        let pairs = 640;
        let cfg = RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), PolicyKind::Strict);
        let mut ext = RdaExtension::new(cfg);
        let demand = PpDemand::llc(mb(0.2), ReuseLevel::High);
        let mut live = Vec::new();
        let mut t = 0u64;
        let mut done = 0usize;
        while done < pairs {
            let n = BATCH.min(pairs - done);
            t += 100;
            live.clear();
            for i in 0..n {
                let out = ext
                    .pp_begin(
                        ProcessId((i % 8) as u32),
                        SiteId((i % 3) as u32),
                        demand,
                        SimTime::from_cycles(t),
                    )
                    .expect("fits");
                match out {
                    BeginOutcome::Run { pp, .. } => live.push(pp),
                    other => panic!("expected Run, got {other:?}"),
                }
            }
            t += 100;
            for &pp in &live {
                ext.pp_end(pp, SimTime::from_cycles(t)).expect("live");
            }
            done += n;
        }
        let s = ext.stats();
        let serial = s.begins ^ s.ends.rotate_left(17) ^ s.fast_begins.rotate_left(34);
        assert_eq!(admission_batch_ops(pairs), serial);
    }

    #[test]
    fn trace_layer_is_digest_neutral_on_a_cell() {
        // Lightest of the paper's workloads — keeps the debug-mode
        // suite fast; digest-neutrality of tracing on the full grid is
        // covered by the determinism tests.
        assert_eq!(
            sweep_cell_named("Water_nsq", false),
            sweep_cell_named("Water_nsq", true)
        );
    }

    #[test]
    fn measure_reports_sane_statistics() {
        let r = measure("spin", 100, 1, 9, None, || calibration_ops(100));
        assert_eq!(r.samples, 9);
        assert!(r.p50_ns > 0.0 && r.p95_ns >= r.p50_ns);
        assert!(r.ops_per_sec > 0.0);
        assert!(r.allocs_per_iter.is_none());
    }

    #[test]
    fn compare_normalizes_by_calibration_and_flags_real_regressions() {
        let mk = |name: &str, ops: f64| BenchResult {
            name: name.into(),
            ops_per_iter: 1,
            samples: 1,
            p50_ns: 1.0,
            p95_ns: 1.0,
            ops_per_sec: ops,
            allocs_per_iter: None,
            bytes_per_iter: None,
            checksum: 0,
        };
        let baseline = Json::obj([(
            "benchmarks",
            Json::Arr(vec![
                mk(CALIBRATION, 1000.0).to_json(),
                mk("admission", 500.0).to_json(),
                mk("churn", 100.0).to_json(),
            ]),
        )]);
        // Machine is uniformly 2× slower: no regression flagged.
        let halved = vec![
            mk(CALIBRATION, 500.0),
            mk("admission", 250.0),
            mk("churn", 50.0),
        ];
        assert!(compare_reports(&halved, &baseline, 0.20).is_empty());
        // Same machine speed, but churn really regressed 40%.
        let regressed = vec![
            mk(CALIBRATION, 1000.0),
            mk("admission", 520.0),
            mk("churn", 60.0),
        ];
        let msgs = compare_reports(&regressed, &baseline, 0.20);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].starts_with("churn:"));
        // A benchmark the baseline lacks is skipped, not failed.
        let with_new = vec![mk(CALIBRATION, 1000.0), mk("brand_new", 1.0)];
        assert!(compare_reports(&with_new, &baseline, 0.20).is_empty());
    }
}
