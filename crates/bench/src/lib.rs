//! # rda-bench
//!
//! The experiment harness: one runnable binary per table/figure of the
//! paper's evaluation section (`cargo run -p rda-bench --bin exp_…`)
//! and Criterion benchmarks (`cargo bench -p rda-bench`).
//!
//! | Target | Reproduces |
//! |---|---|
//! | `exp_table1` | Table 1 — machine configuration |
//! | `exp_table2` | Table 2 — the eight workloads |
//! | `exp_fig7_energy` | Figure 7 — system energy per workload × policy |
//! | `exp_fig8_dram` | Figure 8 — DRAM energy |
//! | `exp_fig9_gflops` | Figure 9 — GFLOPS |
//! | `exp_fig10_efficiency` | Figure 10 — GFLOPS/W |
//! | `exp_fig11_overhead` | Figure 11 — tracking-granularity overhead |
//! | `exp_fig12_wss` | Figure 12 — WSS prediction across input scales |
//! | `exp_fig13_interference` | Figure 13 — concurrency interference |
//! | `exp_faults` | fault-injection sweep — graceful degradation (PR 2) |
//! | `exp_all` | everything above, plus a JSON dump |

#![warn(missing_docs)]

pub mod cli;
pub mod fig12;
pub mod headline;
pub mod hotbench;
pub mod summary;
pub mod traceout;

pub use cli::{sweep_args_from_env, SweepArgs};
pub use headline::{headline_runs, headline_runs_cli, headline_runs_with, HeadlineResults};
pub use traceout::{TraceBundle, TraceWriteError};
