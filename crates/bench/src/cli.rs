//! Command-line options shared by every `exp_*` binary.
//!
//! All sweep binaries accept the same flags:
//!
//! * `--threads N` — worker threads (`0` = all cores, the default);
//! * `--root-seed S` — root seed of every run's derived RNG stream
//!   (decimal or `0x`-prefixed hex);
//! * `--shard I/M` — run only cells whose global index ≡ I (mod M),
//!   for splitting a sweep across processes or machines;
//! * `--trace-out PATH` — run the sweep with observability tracing on
//!   and write every cell's trace as one Chrome trace-event JSON
//!   document (open with Perfetto / `chrome://tracing`).
//!
//! Because every cell's stream depends only on `(root seed, grid
//! index)`, any combination of `--threads` and `--shard` produces
//! bit-identical per-cell results; tracing is digest-neutral, so
//! `--trace-out` cannot change them either.

use rda_sim::runner::{RunnerOptions, Shard};
use std::path::PathBuf;

/// Usage text shared by the binaries.
pub const SWEEP_USAGE: &str = "options:
  --threads N       worker threads (0 = all cores; default 0)
  --root-seed S     root seed, decimal or 0x-hex (default: built-in)
  --shard I/M       run only cells with index ≡ I (mod M)
  --trace-out PATH  record traces; write Chrome trace-event JSON to PATH
  --help            print this help";

/// Everything the shared sweep CLI can express.
#[derive(Debug, Clone, Default)]
pub struct SweepArgs {
    /// How to execute the sweep.
    pub runner: RunnerOptions,
    /// When set, enable tracing and export the sweep's traces here.
    pub trace_out: Option<PathBuf>,
}

impl SweepArgs {
    /// Whether tracing should be enabled for this invocation.
    pub fn tracing(&self) -> bool {
        self.trace_out.is_some()
    }
}

/// Parse sweep flags from an argument iterator (binary name already
/// stripped). Returns `Err` with a message on bad input; `--help` is
/// reported as `Err("help")` for the caller to print usage and exit 0.
pub fn parse_sweep_args<I>(args: I) -> Result<SweepArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut parsed = SweepArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} requires a value\n{SWEEP_USAGE}"))
        };
        match arg.as_str() {
            "--threads" => {
                let v = value("--threads")?;
                parsed.runner.threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value '{v}'"))?;
            }
            "--root-seed" => {
                let v = value("--root-seed")?;
                parsed.runner.root_seed = parse_seed(&v)?;
            }
            "--shard" => {
                let v = value("--shard")?;
                parsed.runner.shard = Some(Shard::parse(&v)?);
            }
            "--trace-out" => {
                parsed.trace_out = Some(PathBuf::from(value("--trace-out")?));
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown option '{other}'\n{SWEEP_USAGE}")),
        }
    }
    Ok(parsed)
}

/// Parse sweep flags from the process environment, printing usage and
/// exiting on `--help` or errors.
pub fn sweep_args_from_env() -> SweepArgs {
    match parse_sweep_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(msg) if msg == "help" => {
            println!("{SWEEP_USAGE}");
            std::process::exit(0);
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| format!("bad --root-seed value '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rda_sim::runner::DEFAULT_ROOT_SEED;

    fn parse(args: &[&str]) -> Result<SweepArgs, String> {
        parse_sweep_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_no_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.runner.threads, 0);
        assert_eq!(a.runner.root_seed, DEFAULT_ROOT_SEED);
        assert!(a.runner.shard.is_none());
        assert!(a.trace_out.is_none());
        assert!(!a.tracing());
    }

    #[test]
    fn all_flags_parse() {
        let a = parse(&[
            "--threads", "8", "--root-seed", "0xDEAD", "--shard", "1/4", "--trace-out",
            "/tmp/t.json",
        ])
        .unwrap();
        assert_eq!(a.runner.threads, 8);
        assert_eq!(a.runner.root_seed, 0xDEAD);
        assert_eq!(a.runner.shard, Some(Shard { index: 1, count: 4 }));
        assert_eq!(a.trace_out.as_deref(), Some(std::path::Path::new("/tmp/t.json")));
        assert!(a.tracing());
    }

    #[test]
    fn decimal_seed_parses() {
        assert_eq!(parse(&["--root-seed", "42"]).unwrap().runner.root_seed, 42);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--shard", "4/4"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert_eq!(parse(&["--help"]).unwrap_err(), "help");
    }
}
