//! Shared driver for the Figures 7–10 experiments.
//!
//! All four headline figures come from the same 8 workloads × 3
//! policies sweep; this module runs the grid through the parallel
//! sweep runner (`rda_sim::runner`) once and hands each `exp_fig*`
//! binary its slice. Results are a pure function of the root seed —
//! thread count, shard layout, and completion order cannot change
//! them.

use crate::cli::SweepArgs;
use crate::traceout::TraceBundle;
use rda_metrics::FigureData;
use rda_sim::experiment::{headline_figures, paper_policies, PolicyRun};
use rda_sim::runner::{run_sweep_configured, RunnerOptions, SweepGrid, SweepResult};
use rda_sim::SimConfig;
use rda_workloads::spec::all_workloads;

/// The completed sweep.
pub struct HeadlineResults {
    /// Every (workload × policy) observation, in grid order.
    pub runs: Vec<PolicyRun>,
    /// Figures 7, 8, 9, 10 in order.
    pub figures: [FigureData; 4],
    /// Digest of the underlying sweep (for determinism checks).
    pub digest: u64,
}

/// The headline configuration grid: 8 workloads × 3 policies, one
/// replicate per cell.
pub fn headline_grid() -> SweepGrid {
    SweepGrid::cross(&all_workloads(), &paper_policies(), 1)
}

/// Run the full sweep with explicit runner options.
pub fn headline_runs_with(opts: &RunnerOptions) -> HeadlineResults {
    headline_runs_cli(&SweepArgs {
        runner: *opts,
        trace_out: None,
    })
}

/// Run the full sweep as the shared `exp_*` CLI specifies: honours the
/// runner options, and when `--trace-out` was given, executes every
/// cell with tracing on (digest-neutral) and writes the merged Chrome
/// trace-event document before returning.
pub fn headline_runs_cli(args: &SweepArgs) -> HeadlineResults {
    let tracing = args.tracing();
    let sweep: SweepResult = run_sweep_configured(&headline_grid(), &args.runner, |cell| {
        let cfg = SimConfig::paper_default(cell.policy);
        if tracing {
            cfg.with_trace()
        } else {
            cfg
        }
    });
    if let Some(err) = sweep.errors.first() {
        panic!("headline sweep failed: {err}");
    }
    if let Some(path) = &args.trace_out {
        let mut bundle = TraceBundle::new();
        bundle.add_records("", &sweep.records);
        bundle.write_or_die(path);
    }
    let digest = sweep.digest();
    let runs = sweep.policy_runs();
    let figures = headline_figures(&runs);
    HeadlineResults {
        runs,
        figures,
        digest,
    }
}

/// Run the full sweep with default options (all cores, default root
/// seed, no shard).
pub fn headline_runs() -> HeadlineResults {
    headline_runs_with(&RunnerOptions::default())
}

impl HeadlineResults {
    /// Figure 7 (system energy).
    pub fn fig7(&self) -> &FigureData {
        &self.figures[0]
    }

    /// Figure 8 (DRAM energy).
    pub fn fig8(&self) -> &FigureData {
        &self.figures[1]
    }

    /// Figure 9 (GFLOPS).
    pub fn fig9(&self) -> &FigureData {
        &self.figures[2]
    }

    /// Figure 10 (GFLOPS/W).
    pub fn fig10(&self) -> &FigureData {
        &self.figures[3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_cells() {
        let r = headline_runs();
        assert_eq!(r.runs.len(), 8 * 3);
        for fig in &r.figures {
            assert_eq!(fig.categories().len(), 8, "{}", fig.id);
            assert_eq!(fig.series.len(), 3, "{}", fig.id);
        }
    }
}
