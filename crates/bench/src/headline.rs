//! Shared driver for the Figures 7–10 experiments.
//!
//! All four headline figures come from the same 8 workloads × 3
//! policies sweep; this module runs the sweep once (process-parallel
//! across workloads via crossbeam scoped threads — each simulation is
//! single-threaded and deterministic) and hands each `exp_fig*` binary
//! its slice.

use rda_metrics::FigureData;
use rda_sim::experiment::{headline_figures, run_workload, PolicyRun};
use rda_workloads::spec::all_workloads;

/// The completed sweep.
pub struct HeadlineResults {
    /// Every (workload × policy) observation.
    pub runs: Vec<PolicyRun>,
    /// Figures 7, 8, 9, 10 in order.
    pub figures: [FigureData; 4],
}

/// Run the full sweep (8 workloads × 3 policies). Workloads run in
/// parallel on host threads; results are ordered deterministically.
pub fn headline_runs() -> HeadlineResults {
    let specs = all_workloads();
    let mut slots: Vec<Option<Vec<PolicyRun>>> = (0..specs.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (spec, slot) in specs.iter().zip(slots.iter_mut()) {
            scope.spawn(move |_| {
                *slot = Some(run_workload(spec));
            });
        }
    })
    .expect("experiment thread panicked");
    let runs: Vec<PolicyRun> = slots.into_iter().flat_map(|s| s.unwrap()).collect();
    let figures = headline_figures(&runs);
    HeadlineResults { runs, figures }
}

impl HeadlineResults {
    /// Figure 7 (system energy).
    pub fn fig7(&self) -> &FigureData {
        &self.figures[0]
    }

    /// Figure 8 (DRAM energy).
    pub fn fig8(&self) -> &FigureData {
        &self.figures[1]
    }

    /// Figure 9 (GFLOPS).
    pub fn fig9(&self) -> &FigureData {
        &self.figures[2]
    }

    /// Figure 10 (GFLOPS/W).
    pub fn fig10(&self) -> &FigureData {
        &self.figures[3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_cells() {
        let r = headline_runs();
        assert_eq!(r.runs.len(), 8 * 3);
        for fig in &r.figures {
            assert_eq!(fig.categories().len(), 8, "{}", fig.id);
            assert_eq!(fig.series.len(), 3, "{}", fig.id);
        }
    }
}
