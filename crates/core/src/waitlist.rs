//! The resource waitlist (§3.1, Figures 5/6).
//!
//! Processes whose progress periods are denied are *"placed on a
//! resource waitlist so they may be rescheduled later when another
//! progress period completes and releases sufficient resources"*. The
//! waitlist is FIFO per resource: the longest-waiting period is
//! re-evaluated first, which bounds waiting time and keeps admission
//! order deterministic.
//!
//! Two robustness mechanisms live here beyond the paper:
//!
//! * [`Waitlist::push`] rejects a period that is already enqueued with
//!   a typed [`RdaError::DoubleWaitlist`] instead of a `debug_assert!`
//!   — in release builds the old path silently enqueued the period
//!   twice, and its demand was double-released on admission;
//! * every entry records *when* it was enqueued, so
//!   [`Waitlist::pop_expired`] can implement **aging**: entries older
//!   than a configurable timeout are force-admitted by the extension
//!   under a degraded overflow accounting bucket, making starvation
//!   impossible by construction.
//!
//! # Representation
//!
//! Each per-resource queue stores its first [`INLINE_CAP`] entries in a
//! fixed inline array (`SmallVec`-style) and spills to a `VecDeque`
//! only beyond that, so short queues — the overwhelmingly common case —
//! never touch the heap. Each queue also caches the minimum enqueue
//! time of its entries, making [`Waitlist::oldest`] (polled by the
//! simulator's aging-deadline computation every interval) O(1); the
//! cache is refreshed by an O(n) rescan only when the entry holding the
//! minimum is removed.

use crate::api::{PpId, Resource};
use crate::error::RdaError;
use rda_simcore::SimTime;
use std::collections::VecDeque;

/// One waitlisted period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEntry {
    /// The denied period.
    pub pp: PpId,
    /// Its accounted demand (for quick re-evaluation).
    pub accounted: u64,
    /// When the period was enqueued (for aging).
    pub enqueued_at: SimTime,
}

/// Entries held inline per resource before spilling to the heap.
const INLINE_CAP: usize = 16;

const DUMMY: WaitEntry = WaitEntry {
    pp: PpId(0),
    accounted: 0,
    enqueued_at: SimTime::ZERO,
};

/// FIFO storage: a fixed inline buffer that promotes itself to a
/// `VecDeque` the first time it overflows (and never demotes — a queue
/// that spilled once is likely to spill again).
// The size imbalance is the point: the large variant IS the inline
// buffer that keeps short queues off the heap, and there are exactly
// two queues per extension.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Fifo {
    Inline { len: u8, slots: [WaitEntry; INLINE_CAP] },
    Heap(VecDeque<WaitEntry>),
}

impl Default for Fifo {
    fn default() -> Self {
        Fifo::Inline {
            len: 0,
            slots: [DUMMY; INLINE_CAP],
        }
    }
}

impl Fifo {
    fn len(&self) -> usize {
        match self {
            Fifo::Inline { len, .. } => *len as usize,
            Fifo::Heap(q) => q.len(),
        }
    }

    fn iter(&self) -> FifoIter<'_> {
        match self {
            Fifo::Inline { len, slots } => FifoIter::Inline(slots[..*len as usize].iter()),
            Fifo::Heap(q) => FifoIter::Heap(q.iter()),
        }
    }

    fn front(&self) -> Option<&WaitEntry> {
        match self {
            Fifo::Inline { len: 0, .. } => None,
            Fifo::Inline { slots, .. } => Some(&slots[0]),
            Fifo::Heap(q) => q.front(),
        }
    }

    fn push_back(&mut self, entry: WaitEntry) {
        match self {
            Fifo::Inline { len, slots } => {
                if (*len as usize) < INLINE_CAP {
                    slots[*len as usize] = entry;
                    *len += 1;
                } else {
                    let mut q: VecDeque<WaitEntry> = slots.iter().copied().collect();
                    q.push_back(entry);
                    *self = Fifo::Heap(q);
                }
            }
            Fifo::Heap(q) => q.push_back(entry),
        }
    }

    /// Remove and return the entry at queue position `pos`, preserving
    /// the relative order of the rest (FIFO semantics require it).
    fn remove(&mut self, pos: usize) -> Option<WaitEntry> {
        match self {
            Fifo::Inline { len, slots } => {
                let n = *len as usize;
                if pos >= n {
                    return None;
                }
                let entry = slots[pos];
                slots.copy_within(pos + 1..n, pos);
                *len -= 1;
                Some(entry)
            }
            Fifo::Heap(q) => q.remove(pos),
        }
    }

}

/// Borrowing iterator over a queue's entries, front to back.
enum FifoIter<'a> {
    Inline(std::slice::Iter<'a, WaitEntry>),
    Heap(std::collections::vec_deque::Iter<'a, WaitEntry>),
}

impl<'a> Iterator for FifoIter<'a> {
    type Item = &'a WaitEntry;

    fn next(&mut self) -> Option<&'a WaitEntry> {
        match self {
            FifoIter::Inline(it) => it.next(),
            FifoIter::Heap(it) => it.next(),
        }
    }
}

/// One resource's queue plus its cached minimum enqueue time.
#[derive(Debug, Clone, Default)]
struct Queue {
    fifo: Fifo,
    /// `min(entry.enqueued_at)` over the queue, `None` when empty.
    /// Maintained incrementally; recomputed by scan only when the
    /// minimal entry leaves the queue.
    oldest: Option<SimTime>,
}

impl Queue {
    fn push(&mut self, entry: WaitEntry) {
        self.oldest = Some(match self.oldest {
            Some(t) => t.min(entry.enqueued_at),
            None => entry.enqueued_at,
        });
        self.fifo.push_back(entry);
    }

    fn note_removed(&mut self, removed: &WaitEntry) {
        if Some(removed.enqueued_at) == self.oldest {
            self.oldest = self.fifo.iter().map(|e| e.enqueued_at).min();
        }
    }

    fn remove(&mut self, pos: usize) -> Option<WaitEntry> {
        let entry = self.fifo.remove(pos)?;
        self.note_removed(&entry);
        Some(entry)
    }
}

/// FIFO waitlists, one per resource.
#[derive(Debug, Clone, Default)]
pub struct Waitlist {
    llc: Queue,
    membw: Queue,
}

impl Waitlist {
    /// Empty waitlist.
    pub fn new() -> Self {
        Self::default()
    }

    fn queue(&self, r: Resource) -> &Queue {
        match r {
            Resource::Llc => &self.llc,
            Resource::MemBandwidth => &self.membw,
        }
    }

    fn queue_mut(&mut self, r: Resource) -> &mut Queue {
        match r {
            Resource::Llc => &mut self.llc,
            Resource::MemBandwidth => &mut self.membw,
        }
    }

    /// Append a denied period. Rejects a period that is already
    /// enqueued — admitting the duplicate would double-release its
    /// demand later.
    pub fn push(&mut self, r: Resource, entry: WaitEntry) -> Result<(), RdaError> {
        if self.queue(r).fifo.iter().any(|e| e.pp == entry.pp) {
            return Err(RdaError::DoubleWaitlist(entry.pp));
        }
        self.queue_mut(r).push(entry);
        Ok(())
    }

    /// The longest-waiting period, without removing it.
    pub fn front(&self, r: Resource) -> Option<WaitEntry> {
        self.queue(r).fifo.front().copied()
    }

    /// Remove and return the longest-waiting period.
    pub fn pop(&mut self, r: Resource) -> Option<WaitEntry> {
        self.queue_mut(r).remove(0)
    }

    /// Remove and return the *oldest* expired period: the entry with
    /// the earliest enqueue time among those that have waited `timeout`
    /// cycles or longer by `now`. Repeated calls therefore force-admit
    /// strictly oldest-first per resource — even when a caller enqueued
    /// with non-monotonic timestamps (trace replay, direct API use) and
    /// queue position no longer matches wait time.
    ///
    /// O(1) when nothing has expired (the common case, via the cached
    /// minimum): the oldest entry expires first, so an unexpired
    /// minimum proves the whole queue is unexpired.
    pub fn pop_expired(&mut self, r: Resource, now: SimTime, timeout: u64) -> Option<WaitEntry> {
        let q = self.queue_mut(r);
        let oldest = q.oldest?;
        if now.since(oldest).cycles() < timeout {
            return None;
        }
        // The cached minimum is expired; it is by definition the oldest
        // expired entry. `min_by_key` kept the *first* of equals, so
        // match that: take the first entry holding the minimal stamp.
        let pos = q.fifo.iter().position(|e| e.enqueued_at == oldest)?;
        q.remove(pos)
    }

    /// Enqueue time of the longest-waiting period (the next to expire).
    /// O(1) via the cached per-queue minimum, which tracks true wait
    /// time rather than queue position (callers may enqueue with
    /// non-monotonic timestamps — trace replay, direct API use).
    pub fn oldest(&self, r: Resource) -> Option<SimTime> {
        self.queue(r).oldest
    }

    /// Remove a specific period (e.g. its process was killed).
    pub fn cancel(&mut self, r: Resource, pp: PpId) -> bool {
        let q = self.queue_mut(r);
        if let Some(pos) = q.fifo.iter().position(|e| e.pp == pp) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of periods waiting on a resource.
    pub fn len(&self, r: Resource) -> usize {
        self.queue(r).fifo.len()
    }

    /// True when nothing waits on any resource.
    pub fn is_empty(&self) -> bool {
        self.llc.fifo.len() == 0 && self.membw.fifo.len() == 0
    }

    /// Iterate a resource's waiters front-to-back, by reference — the
    /// per-admission paths (snapshotting, invariant checks) must not
    /// copy the queue to walk it.
    pub fn iter(&self, r: Resource) -> impl Iterator<Item = &WaitEntry> {
        self.queue(r).fifo.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u64, demand: u64) -> WaitEntry {
        e_at(id, demand, 0)
    }

    fn e_at(id: u64, demand: u64, cycles: u64) -> WaitEntry {
        WaitEntry {
            pp: PpId(id),
            accounted: demand,
            enqueued_at: SimTime::from_cycles(cycles),
        }
    }

    #[test]
    fn fifo_order_per_resource() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10)).unwrap();
        w.push(Resource::Llc, e(2, 20)).unwrap();
        w.push(Resource::MemBandwidth, e(3, 30)).unwrap();
        assert_eq!(w.pop(Resource::Llc).unwrap().pp, PpId(1));
        assert_eq!(w.pop(Resource::Llc).unwrap().pp, PpId(2));
        assert_eq!(w.pop(Resource::Llc), None);
        assert_eq!(w.pop(Resource::MemBandwidth).unwrap().pp, PpId(3));
    }

    #[test]
    fn double_push_is_a_typed_error() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10)).unwrap();
        assert_eq!(
            w.push(Resource::Llc, e(1, 10)),
            Err(RdaError::DoubleWaitlist(PpId(1)))
        );
        // The rejected duplicate must not have been enqueued.
        assert_eq!(w.len(Resource::Llc), 1);
        // The same id on the *other* resource is a distinct queue.
        w.push(Resource::MemBandwidth, e(1, 10)).unwrap();
    }

    #[test]
    fn front_does_not_remove() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10)).unwrap();
        assert_eq!(w.front(Resource::Llc).unwrap().pp, PpId(1));
        assert_eq!(w.len(Resource::Llc), 1);
    }

    #[test]
    fn cancel_mid_queue() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10)).unwrap();
        w.push(Resource::Llc, e(2, 20)).unwrap();
        w.push(Resource::Llc, e(3, 30)).unwrap();
        assert!(w.cancel(Resource::Llc, PpId(2)));
        assert!(!w.cancel(Resource::Llc, PpId(2)));
        let order: Vec<PpId> = w.iter(Resource::Llc).map(|x| x.pp).collect();
        assert_eq!(order, vec![PpId(1), PpId(3)]);
    }

    #[test]
    fn emptiness_spans_resources() {
        let mut w = Waitlist::new();
        assert!(w.is_empty());
        w.push(Resource::MemBandwidth, e(9, 1)).unwrap();
        assert!(!w.is_empty());
        w.pop(Resource::MemBandwidth);
        assert!(w.is_empty());
    }

    #[test]
    fn expiry_drains_only_the_aged_prefix() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 0)).unwrap();
        w.push(Resource::Llc, e_at(2, 10, 500)).unwrap();
        w.push(Resource::Llc, e_at(3, 10, 900)).unwrap();
        let now = SimTime::from_cycles(1000);
        // Timeout 400: entries enqueued at 0 and 500 have expired.
        assert_eq!(w.pop_expired(Resource::Llc, now, 400).unwrap().pp, PpId(1));
        assert_eq!(w.pop_expired(Resource::Llc, now, 400).unwrap().pp, PpId(2));
        assert_eq!(w.pop_expired(Resource::Llc, now, 400), None);
        assert_eq!(w.len(Resource::Llc), 1);
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(900)));
    }

    #[test]
    fn expiry_pops_oldest_first_even_when_enqueued_out_of_order() {
        // A caller with a non-monotonic clock enqueues a later-stamped
        // entry before an earlier-stamped one. Aging must still
        // force-admit strictly oldest-first (by enqueue time, i.e.
        // longest wait), not queue-position-first.
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 500)).unwrap();
        w.push(Resource::Llc, e_at(2, 10, 100)).unwrap();
        let now = SimTime::from_cycles(1_200);
        // Timeout 1000: only the entry enqueued at 100 (waited 1100)
        // has expired; the queue head (enqueued 500, waited 700) has
        // not — it must NOT block the expired one behind it.
        assert_eq!(
            w.pop_expired(Resource::Llc, now, 1000).unwrap().pp,
            PpId(2)
        );
        assert_eq!(w.pop_expired(Resource::Llc, now, 1000), None);
        // Once both have expired, the remaining (older-positioned but
        // younger-stamped) entry drains too.
        let later = SimTime::from_cycles(1_600);
        assert_eq!(
            w.pop_expired(Resource::Llc, later, 1000).unwrap().pp,
            PpId(1)
        );
    }

    #[test]
    fn oldest_reports_minimum_enqueue_time_not_queue_head() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 500)).unwrap();
        w.push(Resource::Llc, e_at(2, 10, 100)).unwrap();
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(100)));
    }

    #[test]
    fn oldest_cache_survives_removal_of_the_minimum() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 300)).unwrap();
        w.push(Resource::Llc, e_at(2, 10, 100)).unwrap();
        w.push(Resource::Llc, e_at(3, 10, 200)).unwrap();
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(100)));
        // Removing the minimal entry forces a rescan: 200 is next.
        assert!(w.cancel(Resource::Llc, PpId(2)));
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(200)));
        // Removing a non-minimal entry leaves the cache untouched.
        assert!(w.cancel(Resource::Llc, PpId(1)));
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(200)));
        w.pop(Resource::Llc);
        assert_eq!(w.oldest(Resource::Llc), None);
    }

    #[test]
    fn ties_on_the_minimum_stamp_pop_in_queue_order() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 100)).unwrap();
        w.push(Resource::Llc, e_at(2, 10, 100)).unwrap();
        w.push(Resource::Llc, e_at(3, 10, 100)).unwrap();
        let now = SimTime::from_cycles(500);
        assert_eq!(w.pop_expired(Resource::Llc, now, 100).unwrap().pp, PpId(1));
        assert_eq!(w.pop_expired(Resource::Llc, now, 100).unwrap().pp, PpId(2));
        assert_eq!(w.pop_expired(Resource::Llc, now, 100).unwrap().pp, PpId(3));
    }

    #[test]
    fn expiry_boundary_is_inclusive() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 100)).unwrap();
        // Exactly `timeout` cycles of waiting counts as expired.
        assert!(w
            .pop_expired(Resource::Llc, SimTime::from_cycles(300), 200)
            .is_some());
    }

    #[test]
    fn promotion_boundary_is_pinned_at_exactly_inline_cap() {
        let mut w = Waitlist::new();
        for i in 0..INLINE_CAP as u64 {
            w.push(Resource::Llc, e_at(i, 10, 100 + i)).unwrap();
        }
        // Exactly 16 entries still live in the inline buffer.
        assert_eq!(w.len(Resource::Llc), INLINE_CAP);
        assert!(
            matches!(w.llc.fifo, Fifo::Inline { len: 16, .. }),
            "16 entries stay inline"
        );
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(100)));
        // The 17th promotes the queue to the heap — with an
        // older-than-minimum stamp, so the cached min must follow it
        // across the promotion.
        w.push(Resource::Llc, e_at(16, 10, 50)).unwrap();
        assert!(matches!(w.llc.fifo, Fifo::Heap(_)), "17th entry promotes");
        assert_eq!(w.len(Resource::Llc), INLINE_CAP + 1);
        let order: Vec<u64> = w.iter(Resource::Llc).map(|x| x.pp.0).collect();
        assert_eq!(order, (0..17).collect::<Vec<_>>(), "promotion keeps order");
        assert_eq!(
            w.oldest(Resource::Llc),
            Some(SimTime::from_cycles(50)),
            "cached minimum survives promotion"
        );
    }

    #[test]
    fn drained_back_below_the_boundary_the_queue_stays_promoted() {
        let mut w = Waitlist::new();
        for i in 0..=INLINE_CAP as u64 {
            w.push(Resource::Llc, e_at(i, 10, 100 + i)).unwrap();
        }
        assert!(matches!(w.llc.fifo, Fifo::Heap(_)));
        // Drain well below the inline capacity: spilled queues never
        // demote (one spill predicts another), and the cached minimum
        // rescans correctly as each minimal entry leaves.
        for i in 0..10u64 {
            assert_eq!(w.pop(Resource::Llc).unwrap().pp, PpId(i));
            assert_eq!(
                w.oldest(Resource::Llc),
                Some(SimTime::from_cycles(100 + i + 1))
            );
        }
        assert_eq!(w.len(Resource::Llc), INLINE_CAP + 1 - 10);
        assert!(
            matches!(w.llc.fifo, Fifo::Heap(_)),
            "spilled queues never demote"
        );
        // Duplicate detection and FIFO order still hold after the
        // round trip across the boundary.
        assert!(w.push(Resource::Llc, e_at(12, 1, 0)).is_err());
        for i in 17..30u64 {
            w.push(Resource::Llc, e_at(i, 10, 100 + i)).unwrap();
        }
        let order: Vec<u64> = w.iter(Resource::Llc).map(|x| x.pp.0).collect();
        assert_eq!(order, (10..30).collect::<Vec<_>>());
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(110)));
    }

    #[test]
    fn queue_spills_past_the_inline_capacity_and_keeps_order() {
        let mut w = Waitlist::new();
        let n = (INLINE_CAP + 9) as u64;
        for i in 0..n {
            w.push(Resource::Llc, e_at(i, 10 + i, i)).unwrap();
        }
        assert_eq!(w.len(Resource::Llc), n as usize);
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(0)));
        // Duplicate detection still works after the spill.
        assert!(w.push(Resource::Llc, e_at(3, 1, 1)).is_err());
        // Mid-queue cancellation across the spill boundary.
        assert!(w.cancel(Resource::Llc, PpId(INLINE_CAP as u64)));
        let order: Vec<u64> = w.iter(Resource::Llc).map(|x| x.pp.0).collect();
        let expected: Vec<u64> = (0..n).filter(|&i| i != INLINE_CAP as u64).collect();
        assert_eq!(order, expected);
        // Drain fully in FIFO order.
        for &i in &expected {
            assert_eq!(w.pop(Resource::Llc).unwrap().pp, PpId(i));
        }
        assert!(w.is_empty());
    }
}
