//! The resource waitlist (§3.1, Figures 5/6).
//!
//! Processes whose progress periods are denied are *"placed on a
//! resource waitlist so they may be rescheduled later when another
//! progress period completes and releases sufficient resources"*. The
//! waitlist is FIFO per resource: the longest-waiting period is
//! re-evaluated first, which bounds waiting time and keeps admission
//! order deterministic.
//!
//! Two robustness mechanisms live here beyond the paper:
//!
//! * [`Waitlist::push`] rejects a period that is already enqueued with
//!   a typed [`RdaError::DoubleWaitlist`] instead of a `debug_assert!`
//!   — in release builds the old path silently enqueued the period
//!   twice, and its demand was double-released on admission;
//! * every entry records *when* it was enqueued, so
//!   [`Waitlist::pop_expired`] can implement **aging**: entries older
//!   than a configurable timeout are force-admitted by the extension
//!   under a degraded overflow accounting bucket, making starvation
//!   impossible by construction.

use crate::api::{PpId, Resource};
use crate::error::RdaError;
use rda_simcore::SimTime;
use std::collections::VecDeque;

/// One waitlisted period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEntry {
    /// The denied period.
    pub pp: PpId,
    /// Its accounted demand (for quick re-evaluation).
    pub accounted: u64,
    /// When the period was enqueued (for aging).
    pub enqueued_at: SimTime,
}

/// FIFO waitlists, one per resource.
#[derive(Debug, Clone, Default)]
pub struct Waitlist {
    llc: VecDeque<WaitEntry>,
    membw: VecDeque<WaitEntry>,
}

impl Waitlist {
    /// Empty waitlist.
    pub fn new() -> Self {
        Self::default()
    }

    fn queue(&self, r: Resource) -> &VecDeque<WaitEntry> {
        match r {
            Resource::Llc => &self.llc,
            Resource::MemBandwidth => &self.membw,
        }
    }

    fn queue_mut(&mut self, r: Resource) -> &mut VecDeque<WaitEntry> {
        match r {
            Resource::Llc => &mut self.llc,
            Resource::MemBandwidth => &mut self.membw,
        }
    }

    /// Append a denied period. Rejects a period that is already
    /// enqueued — admitting the duplicate would double-release its
    /// demand later.
    pub fn push(&mut self, r: Resource, entry: WaitEntry) -> Result<(), RdaError> {
        if self.queue(r).iter().any(|e| e.pp == entry.pp) {
            return Err(RdaError::DoubleWaitlist(entry.pp));
        }
        self.queue_mut(r).push_back(entry);
        Ok(())
    }

    /// The longest-waiting period, without removing it.
    pub fn front(&self, r: Resource) -> Option<WaitEntry> {
        self.queue(r).front().copied()
    }

    /// Remove and return the longest-waiting period.
    pub fn pop(&mut self, r: Resource) -> Option<WaitEntry> {
        self.queue_mut(r).pop_front()
    }

    /// Remove and return the *oldest* expired period: the entry with
    /// the earliest enqueue time among those that have waited `timeout`
    /// cycles or longer by `now`. Repeated calls therefore force-admit
    /// strictly oldest-first per resource — even when a caller enqueued
    /// with non-monotonic timestamps (trace replay, direct API use) and
    /// queue position no longer matches wait time.
    pub fn pop_expired(&mut self, r: Resource, now: SimTime, timeout: u64) -> Option<WaitEntry> {
        let pos = self
            .queue(r)
            .iter()
            .enumerate()
            .filter(|(_, e)| now.since(e.enqueued_at).cycles() >= timeout)
            .min_by_key(|(_, e)| e.enqueued_at)
            .map(|(i, _)| i)?;
        self.queue_mut(r).remove(pos)
    }

    /// Enqueue time of the longest-waiting period (the next to expire).
    /// Scans the whole queue rather than trusting queue position, for
    /// the same non-monotonic-caller reason as [`Self::pop_expired`].
    pub fn oldest(&self, r: Resource) -> Option<SimTime> {
        self.queue(r).iter().map(|e| e.enqueued_at).min()
    }

    /// Remove a specific period (e.g. its process was killed).
    pub fn cancel(&mut self, r: Resource, pp: PpId) -> bool {
        let q = self.queue_mut(r);
        if let Some(pos) = q.iter().position(|e| e.pp == pp) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of periods waiting on a resource.
    pub fn len(&self, r: Resource) -> usize {
        self.queue(r).len()
    }

    /// True when nothing waits on any resource.
    pub fn is_empty(&self) -> bool {
        self.llc.is_empty() && self.membw.is_empty()
    }

    /// Iterate a resource's waiters front-to-back.
    pub fn iter(&self, r: Resource) -> impl Iterator<Item = WaitEntry> + '_ {
        self.queue(r).iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u64, demand: u64) -> WaitEntry {
        e_at(id, demand, 0)
    }

    fn e_at(id: u64, demand: u64, cycles: u64) -> WaitEntry {
        WaitEntry {
            pp: PpId(id),
            accounted: demand,
            enqueued_at: SimTime::from_cycles(cycles),
        }
    }

    #[test]
    fn fifo_order_per_resource() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10)).unwrap();
        w.push(Resource::Llc, e(2, 20)).unwrap();
        w.push(Resource::MemBandwidth, e(3, 30)).unwrap();
        assert_eq!(w.pop(Resource::Llc).unwrap().pp, PpId(1));
        assert_eq!(w.pop(Resource::Llc).unwrap().pp, PpId(2));
        assert_eq!(w.pop(Resource::Llc), None);
        assert_eq!(w.pop(Resource::MemBandwidth).unwrap().pp, PpId(3));
    }

    #[test]
    fn double_push_is_a_typed_error() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10)).unwrap();
        assert_eq!(
            w.push(Resource::Llc, e(1, 10)),
            Err(RdaError::DoubleWaitlist(PpId(1)))
        );
        // The rejected duplicate must not have been enqueued.
        assert_eq!(w.len(Resource::Llc), 1);
        // The same id on the *other* resource is a distinct queue.
        w.push(Resource::MemBandwidth, e(1, 10)).unwrap();
    }

    #[test]
    fn front_does_not_remove() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10)).unwrap();
        assert_eq!(w.front(Resource::Llc).unwrap().pp, PpId(1));
        assert_eq!(w.len(Resource::Llc), 1);
    }

    #[test]
    fn cancel_mid_queue() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10)).unwrap();
        w.push(Resource::Llc, e(2, 20)).unwrap();
        w.push(Resource::Llc, e(3, 30)).unwrap();
        assert!(w.cancel(Resource::Llc, PpId(2)));
        assert!(!w.cancel(Resource::Llc, PpId(2)));
        let order: Vec<PpId> = w.iter(Resource::Llc).map(|x| x.pp).collect();
        assert_eq!(order, vec![PpId(1), PpId(3)]);
    }

    #[test]
    fn emptiness_spans_resources() {
        let mut w = Waitlist::new();
        assert!(w.is_empty());
        w.push(Resource::MemBandwidth, e(9, 1)).unwrap();
        assert!(!w.is_empty());
        w.pop(Resource::MemBandwidth);
        assert!(w.is_empty());
    }

    #[test]
    fn expiry_drains_only_the_aged_prefix() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 0)).unwrap();
        w.push(Resource::Llc, e_at(2, 10, 500)).unwrap();
        w.push(Resource::Llc, e_at(3, 10, 900)).unwrap();
        let now = SimTime::from_cycles(1000);
        // Timeout 400: entries enqueued at 0 and 500 have expired.
        assert_eq!(w.pop_expired(Resource::Llc, now, 400).unwrap().pp, PpId(1));
        assert_eq!(w.pop_expired(Resource::Llc, now, 400).unwrap().pp, PpId(2));
        assert_eq!(w.pop_expired(Resource::Llc, now, 400), None);
        assert_eq!(w.len(Resource::Llc), 1);
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(900)));
    }

    #[test]
    fn expiry_pops_oldest_first_even_when_enqueued_out_of_order() {
        // A caller with a non-monotonic clock enqueues a later-stamped
        // entry before an earlier-stamped one. Aging must still
        // force-admit strictly oldest-first (by enqueue time, i.e.
        // longest wait), not queue-position-first.
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 500)).unwrap();
        w.push(Resource::Llc, e_at(2, 10, 100)).unwrap();
        let now = SimTime::from_cycles(1_200);
        // Timeout 1000: only the entry enqueued at 100 (waited 1100)
        // has expired; the queue head (enqueued 500, waited 700) has
        // not — it must NOT block the expired one behind it.
        assert_eq!(
            w.pop_expired(Resource::Llc, now, 1000).unwrap().pp,
            PpId(2)
        );
        assert_eq!(w.pop_expired(Resource::Llc, now, 1000), None);
        // Once both have expired, the remaining (older-positioned but
        // younger-stamped) entry drains too.
        let later = SimTime::from_cycles(1_600);
        assert_eq!(
            w.pop_expired(Resource::Llc, later, 1000).unwrap().pp,
            PpId(1)
        );
    }

    #[test]
    fn oldest_reports_minimum_enqueue_time_not_queue_head() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 500)).unwrap();
        w.push(Resource::Llc, e_at(2, 10, 100)).unwrap();
        assert_eq!(w.oldest(Resource::Llc), Some(SimTime::from_cycles(100)));
    }

    #[test]
    fn expiry_boundary_is_inclusive() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e_at(1, 10, 100)).unwrap();
        // Exactly `timeout` cycles of waiting counts as expired.
        assert!(w
            .pop_expired(Resource::Llc, SimTime::from_cycles(300), 200)
            .is_some());
    }
}
