//! The resource waitlist (§3.1, Figures 5/6).
//!
//! Processes whose progress periods are denied are *"placed on a
//! resource waitlist so they may be rescheduled later when another
//! progress period completes and releases sufficient resources"*. The
//! waitlist is FIFO per resource: the longest-waiting period is
//! re-evaluated first, which bounds waiting time and keeps admission
//! order deterministic.

use crate::api::{PpId, Resource};
use std::collections::VecDeque;

/// One waitlisted period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEntry {
    /// The denied period.
    pub pp: PpId,
    /// Its accounted demand (for quick re-evaluation).
    pub accounted: u64,
}

/// FIFO waitlists, one per resource.
#[derive(Debug, Clone, Default)]
pub struct Waitlist {
    llc: VecDeque<WaitEntry>,
    membw: VecDeque<WaitEntry>,
}

impl Waitlist {
    /// Empty waitlist.
    pub fn new() -> Self {
        Self::default()
    }

    fn queue(&self, r: Resource) -> &VecDeque<WaitEntry> {
        match r {
            Resource::Llc => &self.llc,
            Resource::MemBandwidth => &self.membw,
        }
    }

    fn queue_mut(&mut self, r: Resource) -> &mut VecDeque<WaitEntry> {
        match r {
            Resource::Llc => &mut self.llc,
            Resource::MemBandwidth => &mut self.membw,
        }
    }

    /// Append a denied period.
    pub fn push(&mut self, r: Resource, entry: WaitEntry) {
        debug_assert!(
            !self.queue(r).iter().any(|e| e.pp == entry.pp),
            "{} double-waitlisted",
            entry.pp
        );
        self.queue_mut(r).push_back(entry);
    }

    /// The longest-waiting period, without removing it.
    pub fn front(&self, r: Resource) -> Option<WaitEntry> {
        self.queue(r).front().copied()
    }

    /// Remove and return the longest-waiting period.
    pub fn pop(&mut self, r: Resource) -> Option<WaitEntry> {
        self.queue_mut(r).pop_front()
    }

    /// Remove a specific period (e.g. its process was killed).
    pub fn cancel(&mut self, r: Resource, pp: PpId) -> bool {
        let q = self.queue_mut(r);
        if let Some(pos) = q.iter().position(|e| e.pp == pp) {
            q.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of periods waiting on a resource.
    pub fn len(&self, r: Resource) -> usize {
        self.queue(r).len()
    }

    /// True when nothing waits on any resource.
    pub fn is_empty(&self) -> bool {
        self.llc.is_empty() && self.membw.is_empty()
    }

    /// Iterate a resource's waiters front-to-back.
    pub fn iter(&self, r: Resource) -> impl Iterator<Item = WaitEntry> + '_ {
        self.queue(r).iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(id: u64, demand: u64) -> WaitEntry {
        WaitEntry {
            pp: PpId(id),
            accounted: demand,
        }
    }

    #[test]
    fn fifo_order_per_resource() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10));
        w.push(Resource::Llc, e(2, 20));
        w.push(Resource::MemBandwidth, e(3, 30));
        assert_eq!(w.pop(Resource::Llc).unwrap().pp, PpId(1));
        assert_eq!(w.pop(Resource::Llc).unwrap().pp, PpId(2));
        assert_eq!(w.pop(Resource::Llc), None);
        assert_eq!(w.pop(Resource::MemBandwidth).unwrap().pp, PpId(3));
    }

    #[test]
    fn front_does_not_remove() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10));
        assert_eq!(w.front(Resource::Llc).unwrap().pp, PpId(1));
        assert_eq!(w.len(Resource::Llc), 1);
    }

    #[test]
    fn cancel_mid_queue() {
        let mut w = Waitlist::new();
        w.push(Resource::Llc, e(1, 10));
        w.push(Resource::Llc, e(2, 20));
        w.push(Resource::Llc, e(3, 30));
        assert!(w.cancel(Resource::Llc, PpId(2)));
        assert!(!w.cancel(Resource::Llc, PpId(2)));
        let order: Vec<PpId> = w.iter(Resource::Llc).map(|x| x.pp).collect();
        assert_eq!(order, vec![PpId(1), PpId(3)]);
    }

    #[test]
    fn emptiness_spans_resources() {
        let mut w = Waitlist::new();
        assert!(w.is_empty());
        w.push(Resource::MemBandwidth, e(9, 1));
        assert!(!w.is_empty());
        w.pop(Resource::MemBandwidth);
        assert!(w.is_empty());
    }

    /// Starvation freedom: a period whose demand alone exceeds LLC
    /// capacity can never pass the predicate, so FIFO waiting would
    /// park it forever. The oversized-demand guard must admit it even
    /// while the cache is fully subscribed — and the system must still
    /// drain back to idle afterwards.
    #[test]
    fn oversized_demand_is_never_starved() {
        use crate::api::{mb, PpDemand};
        use crate::config::RdaConfig;
        use crate::extension::{BeginOutcome, RdaExtension};
        use crate::policy::PolicyKind;
        use rda_machine::{MachineConfig, ReuseLevel};
        use rda_sched::ProcessId;
        use rda_simcore::SimTime;

        let cfg = RdaConfig::for_machine(&MachineConfig::xeon_e5_2420(), PolicyKind::Strict);
        let capacity = cfg.llc_capacity;
        let mut ext = RdaExtension::new(cfg);
        let t = SimTime::from_cycles;

        // Saturate the LLC with three periods.
        let mut small = Vec::new();
        for p in 0..3 {
            let d = PpDemand::llc(capacity / 3, ReuseLevel::High);
            match ext.pp_begin(ProcessId(p), crate::api::SiteId(0), d, t(p as u64)) {
                BeginOutcome::Run { pp, .. } => small.push(pp),
                other => panic!("filler must run, got {other:?}"),
            }
        }
        // A demand bigger than the whole cache arrives while it is
        // full. Waitlisting it could never end (it will not fit even on
        // an idle cache), so it must be admitted immediately.
        let huge = PpDemand::llc(capacity + mb(5.0), ReuseLevel::High);
        let huge_pp = match ext.pp_begin(ProcessId(9), crate::api::SiteId(1), huge, t(10)) {
            BeginOutcome::Run { pp, .. } => pp,
            other => panic!("oversized demand starved: {other:?}"),
        };
        assert_eq!(ext.stats().oversized_admits, 1);
        ext.check_invariants().unwrap();

        // Everything still drains to idle.
        ext.pp_end(huge_pp, t(20));
        for pp in small {
            ext.pp_end(pp, t(30));
        }
        assert_eq!(ext.usage(Resource::Llc), 0);
        assert_eq!(ext.waitlist_len(Resource::Llc), 0);
        ext.check_invariants().unwrap();
    }
}
