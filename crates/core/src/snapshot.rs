//! A cheap, fully comparable snapshot of the extension's observable
//! state.
//!
//! The differential oracle in `rda-check` replays event traces through
//! both [`crate::extension::RdaExtension`] and an independent reference
//! model of Algorithm 1, and asserts *observable-state equivalence*
//! after every event. [`Snapshot`] defines exactly what "observable"
//! means: the two accounting buckets of every resource, the waitlist
//! contents in queue order (including enqueue times, which drive
//! aging), every live period record, the activity counters, and the id
//! allocator position. Anything not captured here — the fast-path
//! cache's internals, call-cost tunables — is implementation detail
//! whose divergence must eventually surface through these fields or
//! through a per-call result.
//!
//! Snapshots also hash ([`Snapshot::digest`], FNV-1a via
//! `rda_simcore::Fnv1a64`), which is what the bounded model checker
//! uses for state-space pruning.

use crate::api::{PpId, Resource, SiteId};
use crate::extension::RdaStats;
use rda_sched::ProcessId;
use rda_simcore::Fnv1a64;

/// One live period, as observable from outside the extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpSnap {
    /// The period id.
    pub id: PpId,
    /// Owning process.
    pub process: ProcessId,
    /// Static site.
    pub site: SiteId,
    /// Targeted resource.
    pub resource: Resource,
    /// Declared (post-audit) demand amount.
    pub declared: u64,
    /// Amount actually accounted in the monitor.
    pub accounted: u64,
    /// Running (`true`) or waitlisted (`false`).
    pub admitted: bool,
    /// Accounted in the degraded overflow bucket (aged admission).
    pub overflow: bool,
}

/// One waitlist entry, as observable from outside the extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitSnap {
    /// The waiting period.
    pub pp: PpId,
    /// Its accounted demand.
    pub accounted: u64,
    /// Enqueue time in cycles (drives aging).
    pub enqueued_cycles: u64,
}

/// The complete observable state of an [`crate::extension::RdaExtension`].
///
/// Two extensions (or an extension and the reference model) are
/// behaviourally equivalent at a point in time iff their snapshots are
/// equal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Nominal usage per resource, in [`Resource::ALL`] order.
    pub usage: [u64; 2],
    /// Overflow-bucket usage per resource, in [`Resource::ALL`] order.
    pub overflow: [u64; 2],
    /// Waitlist contents front-to-back per resource, in
    /// [`Resource::ALL`] order.
    pub waitlists: [Vec<WaitSnap>; 2],
    /// Every live period, in id order.
    pub periods: Vec<PpSnap>,
    /// Activity counters.
    pub stats: RdaStats,
    /// Number of period ids ever allocated (the next id to be handed
    /// out) — distinguishes "unknown id" from "completed id".
    pub allocated: u64,
}

impl Snapshot {
    /// Platform-stable FNV-1a digest over every field, for state-space
    /// pruning in the bounded model checker.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a64::new();
        for i in 0..2 {
            h.write_u64(self.usage[i]).write_u64(self.overflow[i]);
            h.write_usize(self.waitlists[i].len());
            for w in &self.waitlists[i] {
                h.write_u64(w.pp.0)
                    .write_u64(w.accounted)
                    .write_u64(w.enqueued_cycles);
            }
        }
        h.write_usize(self.periods.len());
        for p in &self.periods {
            h.write_u64(p.id.0)
                .write_u64(p.process.0 as u64)
                .write_u64(p.site.0 as u64)
                .write_u64(match p.resource {
                    Resource::Llc => 0,
                    Resource::MemBandwidth => 1,
                })
                .write_u64(p.declared)
                .write_u64(p.accounted)
                .write_u64(p.admitted as u64)
                .write_u64(p.overflow as u64);
        }
        let s = &self.stats;
        for v in [
            s.begins,
            s.ends,
            s.admitted,
            s.paused,
            s.resumed,
            s.fast_begins,
            s.fast_ends,
            s.max_waitlist,
            s.oversized_admits,
            s.reclaimed,
            s.clamped,
            s.aged_admissions,
            s.rejected_ends,
            s.shed,
            s.expired,
            s.retried,
            s.breaker_trips,
            // `s.desyncs` is deliberately excluded: it was added after
            // the golden digests were pinned and is zero in any healthy
            // run, so hashing it would invalidate every pinned digest
            // without adding discrimination.
        ] {
            h.write_u64(v);
        }
        h.write_u64(self.allocated);
        h.finish()
    }

    /// This snapshot with its activity counters zeroed — for asserting
    /// that a rejected call left everything *except* the rejection
    /// counters untouched.
    pub fn without_stats(&self) -> Snapshot {
        Snapshot {
            stats: RdaStats::default(),
            ..self.clone()
        }
    }

    /// True when no demand is accounted anywhere, nothing waits, and no
    /// period is live — the drained-to-idle end state every recovery
    /// property expects.
    pub fn is_idle(&self) -> bool {
        self.usage == [0, 0]
            && self.overflow == [0, 0]
            && self.waitlists.iter().all(|w| w.is_empty())
            && self.periods.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_idle_and_stable() {
        let s = Snapshot::default();
        assert!(s.is_idle());
        assert_eq!(s.digest(), Snapshot::default().digest());
    }

    #[test]
    fn digest_is_sensitive_to_every_bucket() {
        let base = Snapshot::default();
        let mut usage = base.clone();
        usage.usage[0] = 1;
        let mut overflow = base.clone();
        overflow.overflow[1] = 1;
        let mut wait = base.clone();
        wait.waitlists[0].push(WaitSnap {
            pp: PpId(0),
            accounted: 5,
            enqueued_cycles: 9,
        });
        let mut alloc = base.clone();
        alloc.allocated = 3;
        let digests = [
            base.digest(),
            usage.digest(),
            overflow.digest(),
            wait.digest(),
            alloc.digest(),
        ];
        for (i, a) in digests.iter().enumerate() {
            for (j, b) in digests.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "snapshots {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn without_stats_zeroes_only_counters() {
        let mut s = Snapshot::default();
        s.stats.begins = 7;
        s.usage[0] = 42;
        let bare = s.without_stats();
        assert_eq!(bare.stats, RdaStats::default());
        assert_eq!(bare.usage[0], 42);
    }
}
