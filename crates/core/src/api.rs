//! The user-level progress-period API types (§2 of the paper).
//!
//! Applications communicate *just-in-time resource demands* to the
//! scheduler by bracketing code regions with `pp_begin` / `pp_end`
//! calls. The call arguments are captured by [`PpDemand`]; the returned
//! unique identifier is a [`PpId`]. A [`SiteId`] names the *static* code
//! location (the loop or function) a period instance belongs to — the
//! profiler assigns these, and the decision fast path memoises per site.

use rda_machine::ReuseLevel;
use std::fmt;

/// Hardware resources the scheduler can track. The paper's prototype
/// targets the shared last-level cache; the design is "configurable to
/// allow multiple hardware resources to be targeted", so memory
/// bandwidth is included as the natural second resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// The shared last-level cache; demands are working-set bytes.
    Llc,
    /// DRAM bandwidth; demands are bytes per second.
    MemBandwidth,
}

impl Resource {
    /// Every supported resource.
    pub const ALL: [Resource; 2] = [Resource::Llc, Resource::MemBandwidth];

    /// Stable index of this resource into per-resource arrays, matching
    /// the order of [`Resource::ALL`] (and the load table's columns).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Resource::Llc => 0,
            Resource::MemBandwidth => 1,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Llc => write!(f, "LLC"),
            Resource::MemBandwidth => write!(f, "MemBW"),
        }
    }
}

/// Unique identifier of one *dynamic* progress-period instance — the
/// value `pp_begin` returns and `pp_end` takes (Figure 4, line 6/8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PpId(pub u64);

impl fmt::Display for PpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pp#{}", self.0)
    }
}

/// Identifier of a *static* progress-period site: the loop or function
/// in the application that the entry/exit instructions bracket.
/// Repeated executions of the same site produce distinct [`PpId`]s but
/// share a `SiteId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// The demand triple passed to `pp_begin` (§2.2): targeted resource,
/// working-set size, and relative data-reuse level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PpDemand {
    /// Which hardware resource the period stresses.
    pub resource: Resource,
    /// How much of it the period needs (bytes for [`Resource::Llc`]).
    pub amount: u64,
    /// How heavily the working set is reused.
    pub reuse: ReuseLevel,
}

impl PpDemand {
    /// An LLC demand, the common case (`pp_begin(RESOURCE_LLC, …)`).
    pub fn llc(ws_bytes: u64, reuse: ReuseLevel) -> Self {
        PpDemand {
            resource: Resource::Llc,
            amount: ws_bytes,
            reuse,
        }
    }
}

/// Convert megabytes to bytes, mirroring the paper's `MB(6.3)` macro.
pub fn mb(megabytes: f64) -> u64 {
    debug_assert!(megabytes >= 0.0);
    (megabytes * 1024.0 * 1024.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mb_matches_figure4_usage() {
        assert_eq!(mb(1.0), 1024 * 1024);
        assert_eq!(mb(6.3), (6.3f64 * 1024.0 * 1024.0).round() as u64);
        assert_eq!(mb(0.0), 0);
    }

    #[test]
    fn demand_constructor_targets_llc() {
        let d = PpDemand::llc(mb(2.4), ReuseLevel::High);
        assert_eq!(d.resource, Resource::Llc);
        assert_eq!(d.amount, mb(2.4));
        assert_eq!(d.reuse, ReuseLevel::High);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Resource::Llc.to_string(), "LLC");
        assert_eq!(Resource::MemBandwidth.to_string(), "MemBW");
        assert_eq!(PpId(12).to_string(), "pp#12");
        assert_eq!(SiteId(4).to_string(), "site4");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(PpId(1));
        set.insert(PpId(1));
        set.insert(PpId(2));
        assert_eq!(set.len(), 2);
        assert!(PpId(1) < PpId(2));
    }
}
