//! Decision memoisation — the fast path for fine-grained periods.
//!
//! Figure 11 of the paper shows that tracking 262 144 inner-loop
//! periods costs far less *per period* than tracking 512 middle-loop
//! periods: the measured overhead grows sub-linearly in period count.
//! That behaviour implies the prototype does not pay the full
//! syscall + predicate + waitlist cost on every boundary. This module
//! implements the mechanism explicitly:
//!
//! Each *(process, site)* pair caches the outcome of its last full
//! predicate evaluation together with a **usage threshold**: the
//! admission test for policies Strict/Compromise/Partitioned is exactly
//! `usage + accounted ≤ limit`, so a cached `threshold = limit −
//! accounted` lets a repeat entry of the same site be admitted with one
//! comparison against the resource monitor's usage word (a shared-page
//! read in a real kernel — no syscall, no locks). The cached decision
//! expires after `min_eval_interval` without a fresh full evaluation, so
//! coarse-grained periods always take the slow path and the system
//! periodically re-validates.
//!
//! The fast path is *exact*: it admits precisely when Algorithm 1
//! would. It is also conservative: it is only used when the waitlist is
//! empty (so admission cannot jump ahead of a waiting period) and only
//! ever caches `Run` verdicts (a denied period must always take the
//! slow path so it can be waitlisted and later resumed).

use crate::api::{Resource, SiteId};
use rda_sched::ProcessId;
use rda_simcore::{Fnv1a64, SimTime};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct CachedRun {
    resource: Resource,
    demand_amount: u64,
    /// Admit while `usage ≤ threshold`.
    usage_threshold: u64,
    /// Time of the last full evaluation (or refresh).
    refreshed_at: SimTime,
}

/// Per-(process, site) cache of admission decisions.
#[derive(Debug, Clone, Default)]
pub struct FastPathCache {
    entries: HashMap<(ProcessId, SiteId), CachedRun>,
}

impl FastPathCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful full evaluation: the site was admitted with
    /// the given demand, and repeats are valid while usage stays at or
    /// below `usage_threshold`.
    pub fn store_run(
        &mut self,
        process: ProcessId,
        site: SiteId,
        resource: Resource,
        demand_amount: u64,
        usage_threshold: u64,
        now: SimTime,
    ) {
        self.entries.insert(
            (process, site),
            CachedRun {
                resource,
                demand_amount,
                usage_threshold,
                refreshed_at: now,
            },
        );
    }

    /// Attempt a fast-path admission for a repeat entry of `site`.
    ///
    /// Hits when a cached `Run` exists for the same resource and demand,
    /// it was refreshed within `max_age` cycles, and the current usage
    /// still satisfies the threshold. On a hit the entry is refreshed.
    #[allow(clippy::too_many_arguments)]
    pub fn try_admit(
        &mut self,
        process: ProcessId,
        site: SiteId,
        resource: Resource,
        demand_amount: u64,
        current_usage: u64,
        now: SimTime,
        max_age_cycles: u64,
    ) -> bool {
        let Some(entry) = self.entries.get_mut(&(process, site)) else {
            return false;
        };
        let fresh = now.since(entry.refreshed_at).cycles() < max_age_cycles;
        let matches = entry.resource == resource && entry.demand_amount == demand_amount;
        let admissible = current_usage <= entry.usage_threshold;
        if fresh && matches && admissible {
            entry.refreshed_at = now;
            true
        } else {
            if !matches {
                // The site's demand changed (e.g. input-dependent
                // working set); the stale entry is useless.
                self.entries.remove(&(process, site));
            }
            false
        }
    }

    /// Read-only freshness check: was this (process, site) fully
    /// evaluated (or fast-refreshed) within `max_age` cycles? Used by
    /// `pp_end` to decide whether the completion can skip the kernel's
    /// slow path too.
    pub fn is_fresh(
        &self,
        process: ProcessId,
        site: SiteId,
        now: SimTime,
        max_age_cycles: u64,
    ) -> bool {
        self.entries
            .get(&(process, site))
            .is_some_and(|e| now.since(e.refreshed_at).cycles() < max_age_cycles)
    }

    /// Invalidate every cached decision of one process (process exit).
    pub fn invalidate_process(&mut self, process: ProcessId) {
        self.entries.retain(|&(p, _), _| p != process);
    }

    /// Order-independent digest of the cache contents (entries XORed,
    /// so the backing `HashMap`'s iteration order cannot leak in). The
    /// cache is deliberately absent from
    /// [`crate::snapshot::Snapshot`] — it is an accelerator, not
    /// scheduling state — but it *does* steer future admissions, so the
    /// differential oracle and the bounded explorer in `rda-check` use
    /// this digest to tell apart states whose observable books agree
    /// while their memoised decisions do not.
    pub fn digest(&self) -> u64 {
        let mut acc = 0u64;
        for (&(process, site), e) in &self.entries {
            let mut h = Fnv1a64::new();
            h.write_u64(process.0 as u64)
                .write_u64(site.0 as u64)
                .write_u64(match e.resource {
                    Resource::Llc => 0,
                    Resource::MemBandwidth => 1,
                })
                .write_u64(e.demand_amount)
                .write_u64(e.usage_threshold)
                .write_u64(e.refreshed_at.cycles());
            acc ^= h.finish();
        }
        acc ^ self.entries.len() as u64
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AGE: u64 = 1000;

    fn cache_with_entry() -> FastPathCache {
        let mut c = FastPathCache::new();
        c.store_run(
            ProcessId(1),
            SiteId(7),
            Resource::Llc,
            100,
            900,
            SimTime::from_cycles(0),
        );
        c
    }

    #[test]
    fn hit_within_age_and_threshold() {
        let mut c = cache_with_entry();
        assert!(c.try_admit(
            ProcessId(1),
            SiteId(7),
            Resource::Llc,
            100,
            900,
            SimTime::from_cycles(500),
            AGE
        ));
    }

    #[test]
    fn miss_when_expired() {
        let mut c = cache_with_entry();
        assert!(!c.try_admit(
            ProcessId(1),
            SiteId(7),
            Resource::Llc,
            100,
            0,
            SimTime::from_cycles(1000),
            AGE
        ));
    }

    #[test]
    fn hit_refreshes_age() {
        let mut c = cache_with_entry();
        // Chain of hits each 600 cycles apart stays alive indefinitely.
        for k in 1..10u64 {
            assert!(
                c.try_admit(
                    ProcessId(1),
                    SiteId(7),
                    Resource::Llc,
                    100,
                    0,
                    SimTime::from_cycles(k * 600),
                    AGE
                ),
                "hit {k} failed"
            );
        }
    }

    #[test]
    fn miss_when_usage_exceeds_threshold() {
        let mut c = cache_with_entry();
        assert!(!c.try_admit(
            ProcessId(1),
            SiteId(7),
            Resource::Llc,
            100,
            901,
            SimTime::from_cycles(1),
            AGE
        ));
    }

    #[test]
    fn demand_change_invalidates_entry() {
        let mut c = cache_with_entry();
        assert!(!c.try_admit(
            ProcessId(1),
            SiteId(7),
            Resource::Llc,
            200, // different demand
            0,
            SimTime::from_cycles(1),
            AGE
        ));
        assert!(c.is_empty(), "stale entry should be dropped");
    }

    #[test]
    fn other_process_or_site_misses() {
        let mut c = cache_with_entry();
        assert!(!c.try_admit(
            ProcessId(2),
            SiteId(7),
            Resource::Llc,
            100,
            0,
            SimTime::from_cycles(1),
            AGE
        ));
        assert!(!c.try_admit(
            ProcessId(1),
            SiteId(8),
            Resource::Llc,
            100,
            0,
            SimTime::from_cycles(1),
            AGE
        ));
    }

    #[test]
    fn invalidate_process_clears_its_entries() {
        let mut c = cache_with_entry();
        c.store_run(
            ProcessId(2),
            SiteId(1),
            Resource::Llc,
            50,
            950,
            SimTime::from_cycles(0),
        );
        c.invalidate_process(ProcessId(1));
        assert_eq!(c.len(), 1);
        assert!(!c.try_admit(
            ProcessId(1),
            SiteId(7),
            Resource::Llc,
            100,
            0,
            SimTime::from_cycles(1),
            AGE
        ));
    }
}
