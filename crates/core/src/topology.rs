//! Multi-resource machine topology: resource kinds, demand vectors,
//! and per-node capacity tables.
//!
//! The paper's Algorithm 1 gates admission on one scalar load table.
//! This module supplies the vocabulary that generalizes it to a
//! *machine topology* (see DESIGN.md §9):
//!
//! * [`ResourceKind`] — the three constrained resources of a NUMA node:
//!   LLC footprint, memory bandwidth, DRAM capacity;
//! * [`ResourceSpace`] — the trait abstracting "an indexable, fixed
//!   set of resources", implemented both by the legacy scalar
//!   [`crate::api::Resource`] pair and by [`ResourceKind`];
//! * [`Demand`] — a demand *vector*: one amount per resource kind, the
//!   multi-resource successor of the scalar [`crate::api::PpDemand`];
//! * [`NodeId`] / [`TopoSpec`] — per-node capacity tables built from an
//!   `rda-machine` [`rda_machine::Topology`] description.
//!
//! The scheduling mechanism over these types lives in [`crate::topo`].

use std::fmt;

/// Number of resource kinds a node tracks.
pub const KIND_COUNT: usize = 3;

/// The constrained resources of one NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// Node-local last-level cache footprint, bytes.
    Llc,
    /// Node-local memory bandwidth, bytes/second.
    MemBw,
    /// Node-local DRAM capacity, bytes.
    DramCap,
}

impl ResourceKind {
    /// Every kind, in stable index order.
    pub const ALL: [ResourceKind; KIND_COUNT] =
        [ResourceKind::Llc, ResourceKind::MemBw, ResourceKind::DramCap];
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(ResourceSpace::label(*self))
    }
}

/// A fixed, indexable space of resources.
///
/// Everything the bookkeeping machinery needs from "a resource": how
/// many there are, a dense index, and a stable label. The legacy scalar
/// extension implements it for [`crate::api::Resource`] (two entries);
/// the topology engine for [`ResourceKind`] (three per node). Code
/// generic over `ResourceSpace` (snapshot digests, invariant sweeps)
/// works for both.
pub trait ResourceSpace: Copy + Eq {
    /// Number of resources in the space.
    const COUNT: usize;

    /// Dense index in `0..COUNT`.
    fn index(self) -> usize;

    /// Inverse of [`ResourceSpace::index`].
    ///
    /// # Panics
    /// If `i >= COUNT`.
    fn from_index(i: usize) -> Self;

    /// Stable lowercase label (used by trace formats).
    fn label(self) -> &'static str;
}

impl ResourceSpace for ResourceKind {
    const COUNT: usize = KIND_COUNT;

    fn index(self) -> usize {
        match self {
            ResourceKind::Llc => 0,
            ResourceKind::MemBw => 1,
            ResourceKind::DramCap => 2,
        }
    }

    fn from_index(i: usize) -> Self {
        ResourceKind::ALL[i]
    }

    fn label(self) -> &'static str {
        match self {
            ResourceKind::Llc => "llc",
            ResourceKind::MemBw => "membw",
            ResourceKind::DramCap => "dram",
        }
    }
}

impl ResourceSpace for crate::api::Resource {
    const COUNT: usize = 2;

    fn index(self) -> usize {
        match self {
            crate::api::Resource::Llc => 0,
            crate::api::Resource::MemBandwidth => 1,
        }
    }

    fn from_index(i: usize) -> Self {
        crate::api::Resource::ALL[i]
    }

    fn label(self) -> &'static str {
        match self {
            crate::api::Resource::Llc => "llc",
            crate::api::Resource::MemBandwidth => "membw",
        }
    }
}

/// A demand vector: how much of each [`ResourceKind`] a progress
/// period needs. The all-zero vector is legal (an untracked-equivalent
/// period that always fits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Demand {
    /// Amounts in [`ResourceKind::ALL`] order.
    pub amounts: [u64; KIND_COUNT],
}

impl Demand {
    /// The zero vector.
    pub const ZERO: Demand = Demand {
        amounts: [0; KIND_COUNT],
    };

    /// A vector from explicit per-kind amounts.
    pub fn new(llc: u64, membw: u64, dram: u64) -> Self {
        Demand {
            amounts: [llc, membw, dram],
        }
    }

    /// A pure-LLC demand (the paper's common case).
    pub fn llc(bytes: u64) -> Self {
        Demand::new(bytes, 0, 0)
    }

    /// The amount demanded of one kind.
    pub fn get(&self, k: ResourceKind) -> u64 {
        self.amounts[k.index()]
    }

    /// This vector with one component replaced.
    pub fn with(mut self, k: ResourceKind, amount: u64) -> Self {
        self.amounts[k.index()] = amount;
        self
    }

    /// True when no component demands anything.
    pub fn is_zero(&self) -> bool {
        self.amounts.iter().all(|&a| a == 0)
    }

    /// The kinds with a nonzero component, in index order.
    pub fn touched(&self) -> impl Iterator<Item = ResourceKind> + '_ {
        ResourceKind::ALL
            .into_iter()
            .filter(move |k| self.get(*k) > 0)
    }
}

impl fmt::Display for Demand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[llc={} membw={} dram={}]",
            self.amounts[0], self.amounts[1], self.amounts[2]
        )
    }
}

/// Identifier of one NUMA node in a topology (dense, node id = index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Typed configuration error of a [`TopoSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecError {
    /// A node declares zero capacity for a constrained resource. The
    /// placement score and the admission predicate both divide by (or
    /// skip on) the capacity, so a zero-capacity node would silently
    /// bypass gating for that kind instead of constraining it.
    ZeroCapacity {
        /// The offending node.
        node: NodeId,
        /// The kind with zero declared capacity.
        kind: ResourceKind,
    },
    /// A topology with no nodes at all.
    NoNodes,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::ZeroCapacity { node, kind } => {
                write!(f, "{node} declares zero capacity for constrained resource {kind}")
            }
            SpecError::NoNodes => write!(f, "a topology needs at least one node"),
        }
    }
}

impl std::error::Error for SpecError {}

/// The capacity table of a topology: per node, one capacity per
/// [`ResourceKind`]. This is the scheduler-facing form of the
/// descriptive [`rda_machine::Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSpec {
    /// Per-node capacities in [`ResourceKind::ALL`] order.
    pub caps: Vec<[u64; KIND_COUNT]>,
}

impl TopoSpec {
    /// Build a validated spec: every node must declare nonzero
    /// capacity for every constrained resource kind (see
    /// [`SpecError::ZeroCapacity`]).
    pub fn checked(caps: Vec<[u64; KIND_COUNT]>) -> Result<Self, SpecError> {
        let spec = TopoSpec { caps };
        spec.validate()?;
        Ok(spec)
    }

    /// Validate the capacity table against [`SpecError`]'s rules.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.caps.is_empty() {
            return Err(SpecError::NoNodes);
        }
        for (n, caps) in self.caps.iter().enumerate() {
            for k in ResourceKind::ALL {
                if caps[k.index()] == 0 {
                    return Err(SpecError::ZeroCapacity {
                        node: NodeId(n as u32),
                        kind: k,
                    });
                }
            }
        }
        Ok(())
    }
    /// Build from a machine topology description.
    pub fn from_machine(t: &rda_machine::Topology) -> Self {
        TopoSpec {
            caps: t
                .nodes
                .iter()
                .map(|n| [n.llc_bytes, n.membw_bytes, n.dram_bytes])
                .collect(),
        }
    }

    /// A single node with the given capacities.
    pub fn single(llc: u64, membw: u64, dram: u64) -> Self {
        TopoSpec {
            caps: vec![[llc, membw, dram]],
        }
    }

    /// `n` identical nodes.
    pub fn uniform(n: usize, llc: u64, membw: u64, dram: u64) -> Self {
        assert!(n >= 1, "a topology needs at least one node");
        TopoSpec {
            caps: vec![[llc, membw, dram]; n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.caps.len()
    }

    /// Capacity of one kind on one node.
    pub fn capacity(&self, node: NodeId, k: ResourceKind) -> u64 {
        self.caps[node.0 as usize][k.index()]
    }

    /// The largest capacity any node offers for a kind — what the
    /// demand auditor clamps against (a demand no node could ever hold
    /// nominally is impossible machine-wide).
    pub fn max_capacity(&self, k: ResourceKind) -> u64 {
        self.caps.iter().map(|c| c[k.index()]).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Resource;

    #[test]
    fn kind_indexing_roundtrips() {
        for k in ResourceKind::ALL {
            assert_eq!(ResourceKind::from_index(k.index()), k);
        }
        assert_eq!(ResourceKind::Llc.to_string(), "llc");
        assert_eq!(ResourceKind::DramCap.to_string(), "dram");
    }

    #[test]
    fn legacy_resource_implements_the_space() {
        assert_eq!(<Resource as ResourceSpace>::COUNT, 2);
        for r in Resource::ALL {
            assert_eq!(Resource::from_index(ResourceSpace::index(r)), r);
        }
        assert_eq!(ResourceSpace::label(Resource::MemBandwidth), "membw");
    }

    #[test]
    fn zero_capacity_constrained_resource_is_rejected() {
        let err = TopoSpec::checked(vec![[100, 0, 1000]]).unwrap_err();
        assert_eq!(
            err,
            SpecError::ZeroCapacity {
                node: NodeId(0),
                kind: ResourceKind::MemBw,
            }
        );
        assert_eq!(TopoSpec::checked(vec![]).unwrap_err(), SpecError::NoNodes);
        let ok = TopoSpec::checked(vec![[100, 50, 1000]]).unwrap();
        assert_eq!(ok.node_count(), 1);
        assert!(TopoSpec::uniform(2, 100, 50, 1000).validate().is_ok());
        // The error names the node and kind for operators.
        let msg = SpecError::ZeroCapacity {
            node: NodeId(3),
            kind: ResourceKind::Llc,
        }
        .to_string();
        assert!(msg.contains("node3") && msg.contains("llc"));
    }

    #[test]
    fn demand_vector_accessors() {
        let d = Demand::llc(10).with(ResourceKind::MemBw, 7);
        assert_eq!(d.get(ResourceKind::Llc), 10);
        assert_eq!(d.get(ResourceKind::MemBw), 7);
        assert_eq!(d.get(ResourceKind::DramCap), 0);
        assert!(!d.is_zero());
        assert!(Demand::ZERO.is_zero());
        let touched: Vec<ResourceKind> = d.touched().collect();
        assert_eq!(touched, vec![ResourceKind::Llc, ResourceKind::MemBw]);
        assert_eq!(d.to_string(), "[llc=10 membw=7 dram=0]");
    }

    #[test]
    fn spec_from_machine_topology() {
        let m = rda_machine::MachineConfig::xeon_e5_2420();
        let spec = TopoSpec::from_machine(&rda_machine::Topology::dual_socket(&m));
        assert_eq!(spec.node_count(), 2);
        assert_eq!(spec.capacity(NodeId(0), ResourceKind::Llc), m.llc_bytes);
        assert_eq!(spec.max_capacity(ResourceKind::Llc), m.llc_bytes);
        assert_eq!(
            spec.capacity(NodeId(1), ResourceKind::DramCap),
            m.dram_bytes / 2
        );
    }

    #[test]
    fn max_capacity_over_heterogeneous_nodes() {
        let spec = TopoSpec {
            caps: vec![[10, 1, 5], [4, 9, 5]],
        };
        assert_eq!(spec.max_capacity(ResourceKind::Llc), 10);
        assert_eq!(spec.max_capacity(ResourceKind::MemBw), 9);
        assert_eq!(spec.max_capacity(ResourceKind::DramCap), 5);
    }
}
