//! Layers: named process groups with per-layer policy and optional
//! capacity guarantees (scx_layered-style multi-tenancy).
//!
//! On a multi-tenant box, "one policy for the whole machine" is the
//! wrong granularity: a latency-critical tenant wants Strict isolation,
//! a batch tenant is happy with Compromise oversubscription, and
//! unmodified applications ride the default scheduler. A [`LayerSpec`]
//! names such a group, carries its own [`PolicyKind`], and may pin a
//! per-node capacity **guarantee**: a slice of every node's resources
//! that other layers' admissions can never consume (the guaranteed
//! layer's own demand draws it down first).
//!
//! Guarantee semantics, per node `n`, kind `k`, admitting layer `L`:
//!
//! ```text
//! reserved_by_others(n, k, L) = Σ_{L' ≠ L} max(0, guarantee_{L'}[k] − usage_{L'}(n, k))
//! limit(n, k, L)              = policy_L.usage_limit(cap[n][k]) − reserved_by_others
//! admit iff usage_total(n, k) + accounted_k ≤ limit(n, k, L)   (for every demanded k)
//! ```
//!
//! With a single guarantee-free layer the reservation term vanishes and
//! the predicate degenerates to the paper's Algorithm 1 exactly — the
//! compatibility argument of DESIGN.md §9.

use crate::policy::PolicyKind;
use crate::topology::Demand;
use std::fmt;

/// Identifier of a layer (dense; layer id = index in the [`LayerSet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LayerId(pub u32);

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layer{}", self.0)
    }
}

/// One layer: a named process group with its own policy and an
/// optional per-node capacity guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Human-readable name (reports, traces).
    pub name: String,
    /// The admission policy this layer's periods are gated by.
    pub policy: PolicyKind,
    /// Per-node reserved capacity other layers cannot consume (`None`
    /// reserves nothing — a best-effort layer).
    pub guarantee: Option<Demand>,
}

impl LayerSpec {
    /// A guarantee-free layer.
    pub fn new(name: impl Into<String>, policy: PolicyKind) -> Self {
        LayerSpec {
            name: name.into(),
            policy,
            guarantee: None,
        }
    }

    /// Attach a per-node capacity guarantee.
    pub fn with_guarantee(mut self, g: Demand) -> Self {
        self.guarantee = Some(g);
        self
    }
}

/// The layers of one box plus the process → layer assignment.
///
/// Assignment is an explicit sparse map (process id → layer id);
/// unmapped processes land in layer 0, which therefore plays the role
/// of the machine-wide default. The map is stored sorted so iteration
/// and digests are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSet {
    /// The layers; layer id = index. Never empty.
    pub layers: Vec<LayerSpec>,
    /// Sorted `(process, layer)` assignment pairs.
    assign: Vec<(u32, u32)>,
}

impl LayerSet {
    /// A single guarantee-free layer under `policy` — the trivial set
    /// every compatibility mode uses.
    pub fn single(policy: PolicyKind) -> Self {
        LayerSet {
            layers: vec![LayerSpec::new("default", policy)],
            assign: Vec::new(),
        }
    }

    /// A set from explicit layers (panics if empty — layer 0 must
    /// exist to catch unmapped processes).
    pub fn new(layers: Vec<LayerSpec>) -> Self {
        assert!(!layers.is_empty(), "a LayerSet needs at least one layer");
        LayerSet {
            layers,
            assign: Vec::new(),
        }
    }

    /// Map a process to a layer (replacing any earlier mapping).
    ///
    /// # Panics
    /// If `layer` is out of range.
    pub fn assign(&mut self, process: u32, layer: LayerId) {
        assert!(
            (layer.0 as usize) < self.layers.len(),
            "assignment to unknown {layer}"
        );
        match self.assign.binary_search_by_key(&process, |&(p, _)| p) {
            Ok(i) => self.assign[i].1 = layer.0,
            Err(i) => self.assign.insert(i, (process, layer.0)),
        }
    }

    /// Builder form of [`LayerSet::assign`].
    pub fn with_assignment(mut self, process: u32, layer: LayerId) -> Self {
        self.assign(process, layer);
        self
    }

    /// The layer a process belongs to (layer 0 when unmapped).
    pub fn layer_of(&self, process: u32) -> LayerId {
        match self.assign.binary_search_by_key(&process, |&(p, _)| p) {
            Ok(i) => LayerId(self.assign[i].1),
            Err(_) => LayerId(0),
        }
    }

    /// The spec of a layer.
    pub fn spec(&self, layer: LayerId) -> &LayerSpec {
        &self.layers[layer.0 as usize]
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Always false ([`LayerSet::new`] rejects empty sets); present for
    /// the len/is_empty idiom.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The sorted `(process, layer)` assignment pairs.
    pub fn assignments(&self) -> &[(u32, u32)] {
        &self.assign
    }

    /// True when this set is the trivial compatibility shape: exactly
    /// one layer, no guarantee, no explicit assignments.
    pub fn is_trivial(&self) -> bool {
        self.layers.len() == 1 && self.layers[0].guarantee.is_none() && self.assign.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ResourceKind;

    #[test]
    fn single_set_is_trivial_and_maps_everyone_to_zero() {
        let s = LayerSet::single(PolicyKind::Strict);
        assert!(s.is_trivial());
        assert_eq!(s.layer_of(0), LayerId(0));
        assert_eq!(s.layer_of(999), LayerId(0));
        assert_eq!(s.spec(LayerId(0)).policy, PolicyKind::Strict);
    }

    #[test]
    fn assignment_maps_and_replaces() {
        let mut s = LayerSet::new(vec![
            LayerSpec::new("batch", PolicyKind::compromise_default()),
            LayerSpec::new("latency", PolicyKind::Strict)
                .with_guarantee(Demand::llc(1024)),
        ]);
        s.assign(7, LayerId(1));
        s.assign(3, LayerId(1));
        assert!(!s.is_trivial());
        assert_eq!(s.layer_of(7), LayerId(1));
        assert_eq!(s.layer_of(3), LayerId(1));
        assert_eq!(s.layer_of(4), LayerId(0));
        // Replacement, not duplication.
        s.assign(7, LayerId(0));
        assert_eq!(s.layer_of(7), LayerId(0));
        assert_eq!(s.assignments(), &[(3, 1), (7, 0)]);
        assert_eq!(
            s.spec(LayerId(1)).guarantee.unwrap().get(ResourceKind::Llc),
            1024
        );
    }

    #[test]
    #[should_panic(expected = "unknown layer")]
    fn assignment_to_unknown_layer_panics() {
        let mut s = LayerSet::single(PolicyKind::Strict);
        s.assign(0, LayerId(5));
    }

    #[test]
    fn guarantee_marks_set_nontrivial() {
        let s = LayerSet::new(vec![
            LayerSpec::new("only", PolicyKind::Strict).with_guarantee(Demand::llc(1)),
        ]);
        assert!(!s.is_trivial());
    }
}
