//! Reconfigurable scheduling policies (§3.3).
//!
//! The predicate's verdict is delegated to a policy that interprets the
//! *outcome* value of Algorithm 1 (`remaining - demand`, which is
//! negative when admitting the period would exceed nominal capacity):
//!
//! * **RDA: Strict** — never oversubscribe: admit only when
//!   `outcome ≥ 0`. Maximum resource efficiency, possibly reduced
//!   concurrency.
//! * **RDA: Compromise** — admit while total usage stays within
//!   `x ×` capacity (the paper configures the oversubscription factor
//!   `x = 2`). Balances efficiency against concurrency.
//! * **DefaultOnly** — never gate anything; this *is* the underlying
//!   OS scheduler, used as the baseline in every experiment.
//! * **Partitioned** — future-work prototype (§6): demands above a
//!   quota are admitted but clamped, modelling a cache partition that
//!   bounds the damage an oversized period can do.

use std::fmt;

/// The available policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Pass everything straight to the default scheduler (baseline).
    DefaultOnly,
    /// Deny any demand that would exceed nominal capacity.
    Strict,
    /// Allow usage up to `factor ×` capacity.
    Compromise {
        /// The oversubscription factor `x` (the paper uses 2.0).
        factor: f64,
    },
    /// Future work (§6): admit, but account at most `quota_frac` of
    /// capacity for any single period, as a hardware partition would.
    Partitioned {
        /// Largest capacity fraction a single period may occupy.
        quota_frac: f64,
    },
}

impl PolicyKind {
    /// The paper's compromise configuration (`x = 2`).
    pub fn compromise_default() -> Self {
        PolicyKind::Compromise { factor: 2.0 }
    }

    /// The usage ceiling this policy enforces, in bytes, for a resource
    /// of `capacity`.
    pub fn usage_limit(&self, capacity: u64) -> u64 {
        match *self {
            PolicyKind::DefaultOnly => u64::MAX,
            PolicyKind::Strict => capacity,
            PolicyKind::Compromise { factor } => {
                debug_assert!(factor >= 1.0, "oversubscription factor below 1");
                (capacity as f64 * factor) as u64
            }
            PolicyKind::Partitioned { .. } => capacity,
        }
    }

    /// Apply the policy to Algorithm 1's `outcome = remaining - demand`
    /// (may be negative). `capacity` is the resource's nominal size.
    pub fn apply(&self, outcome: i128, capacity: u64) -> bool {
        match *self {
            PolicyKind::DefaultOnly => true,
            PolicyKind::Strict => outcome >= 0,
            PolicyKind::Compromise { factor } => {
                // usage + demand <= factor * capacity
                //  ⇔ outcome >= capacity - factor*capacity
                let slack = (capacity as f64 * (factor - 1.0)) as i128;
                outcome >= -slack
            }
            // Partitioned admits everything; clamping happens in the
            // accounting (see `effective_demand`).
            PolicyKind::Partitioned { .. } => outcome >= 0,
        }
    }

    /// The demand that should be *accounted* for a period requesting
    /// `demand` bytes: the Partitioned policy clamps to its quota, the
    /// others account in full.
    pub fn effective_demand(&self, demand: u64, capacity: u64) -> u64 {
        match *self {
            PolicyKind::Partitioned { quota_frac } => {
                demand.min((capacity as f64 * quota_frac) as u64)
            }
            _ => demand,
        }
    }

    /// True if the policy gates scheduling at all.
    pub fn is_gating(&self) -> bool {
        !matches!(self, PolicyKind::DefaultOnly)
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::DefaultOnly => write!(f, "Linux Default"),
            PolicyKind::Strict => write!(f, "RDA: Strict"),
            PolicyKind::Compromise { factor } => write!(f, "RDA: Compromise (x{factor})"),
            PolicyKind::Partitioned { quota_frac } => {
                write!(f, "RDA: Partitioned ({:.0}% quota)", quota_frac * 100.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 1000;

    #[test]
    fn strict_admits_only_within_capacity() {
        let p = PolicyKind::Strict;
        assert!(p.apply(0, CAP));
        assert!(p.apply(500, CAP));
        assert!(!p.apply(-1, CAP));
    }

    #[test]
    fn compromise_allows_bounded_oversubscription() {
        let p = PolicyKind::compromise_default();
        // With x = 2, up to one extra capacity of deficit is allowed.
        assert!(p.apply(0, CAP));
        assert!(p.apply(-1000, CAP));
        assert!(!p.apply(-1001, CAP));
    }

    #[test]
    fn compromise_factor_one_equals_strict() {
        let c = PolicyKind::Compromise { factor: 1.0 };
        let s = PolicyKind::Strict;
        for outcome in [-2000i128, -1, 0, 1, 500] {
            assert_eq!(c.apply(outcome, CAP), s.apply(outcome, CAP), "outcome {outcome}");
        }
    }

    #[test]
    fn default_only_admits_everything() {
        let p = PolicyKind::DefaultOnly;
        assert!(p.apply(i128::MIN / 2, CAP));
        assert!(!p.is_gating());
        assert_eq!(p.usage_limit(CAP), u64::MAX);
    }

    #[test]
    fn usage_limits() {
        assert_eq!(PolicyKind::Strict.usage_limit(CAP), CAP);
        assert_eq!(PolicyKind::compromise_default().usage_limit(CAP), 2 * CAP);
    }

    #[test]
    fn partitioned_clamps_accounting() {
        let p = PolicyKind::Partitioned { quota_frac: 0.25 };
        assert_eq!(p.effective_demand(100, CAP), 100);
        assert_eq!(p.effective_demand(900, CAP), 250);
        // Other policies account in full.
        assert_eq!(PolicyKind::Strict.effective_demand(900, CAP), 900);
    }

    #[test]
    fn display_names_match_the_paper() {
        assert_eq!(PolicyKind::Strict.to_string(), "RDA: Strict");
        assert_eq!(
            PolicyKind::compromise_default().to_string(),
            "RDA: Compromise (x2)"
        );
        assert_eq!(PolicyKind::DefaultOnly.to_string(), "Linux Default");
    }
}
